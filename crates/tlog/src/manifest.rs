//! The spill-tree `MANIFEST`: a per-shard summary that lets a reader
//! decide *without opening any shard log* which shards could possibly
//! answer a query.
//!
//! A sharded spill tree (`shard-<k>/`, see [`crate::sharded`]) holds one
//! single-writer [`TrajectoryLog`] per worker. A query for one track, a
//! time window, or a bounding box usually concerns a small subset of
//! shards, but discovering that subset by opening every shard costs a
//! full header scan per shard. The `MANIFEST` file at the tree root
//! caches exactly the pruning inputs — per shard: the live track set
//! with each track's record/point counts, time span and bounding box —
//! so `QueryEngine` opens only the shards that can matter.
//!
//! The manifest is a *cache*, never a source of truth:
//!
//! * it is rebuilt from lock-free header scans ([`Manifest::scan`])
//!   whenever it is missing, unparseable, CRC-invalid, or stale;
//! * staleness is detected by comparing each shard's recorded segment
//!   count and byte total against the live directory
//!   ([`Manifest::is_fresh`]);
//! * `bqs log verify` cross-checks a present manifest against a fresh
//!   scan and fails the tree on any disagreement.
//!
//! The on-disk format is a line-based text file with a trailing CRC-32,
//! specified in `docs/format.md` §"The MANIFEST file".

use crate::crc::crc32;
use crate::error::TlogError;
use crate::log::{LogConfig, TrackSummary, TrajectoryLog};
use crate::query::TimeRange;
use crate::sharded::shard_dirs;
use bqs_core::fleet::TrackId;
use bqs_geo::{Point2, Rect};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// File name of the manifest at a spill-tree root.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Magic first line (with format version) of a manifest file.
const MANIFEST_HEADER: &str = "bqs-manifest v1";

/// One shard's summary inside a [`Manifest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestShard {
    /// The shard index (`shard-<k>`).
    pub shard: usize,
    /// Segment files in the shard directory when scanned.
    pub segments: usize,
    /// Total bytes of those segment files (file sizes, torn tails
    /// included) — the staleness fingerprint together with `segments`.
    pub bytes: u64,
    /// Live tracks in the shard, ascending, each with counts, time span
    /// and bounding box.
    pub tracks: Vec<TrackSummary>,
}

impl ManifestShard {
    /// Live records across the shard's tracks.
    pub fn records(&self) -> usize {
        self.tracks.iter().map(|t| t.records).sum()
    }

    /// Live points across the shard's tracks.
    pub fn points(&self) -> u64 {
        self.tracks.iter().map(|t| t.points).sum()
    }

    /// Whether the shard could hold any point matching the query: a
    /// track filter, a time range, and an optional area. `false` means
    /// the shard can be skipped without being opened — pruning is safe
    /// because the manifest covers every live record's summary, and a
    /// fresh manifest covers every live record.
    pub fn may_contain(
        &self,
        track: Option<TrackId>,
        range: TimeRange,
        area: Option<&Rect>,
    ) -> bool {
        self.tracks
            .iter()
            .filter(|t| track.is_none_or(|wanted| t.track == wanted))
            .any(|t| {
                range.overlaps(t.t_min, t.t_max)
                    && match (area, &t.bbox) {
                        (Some(area), Some(bbox)) => area.intersects(bbox),
                        _ => true,
                    }
            })
    }
}

/// The parsed (or freshly scanned) manifest of one spill tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// One entry per shard, ascending by shard index.
    pub shards: Vec<ManifestShard>,
}

/// Segment count and byte total of one shard directory, from file
/// metadata alone (no log open) — the staleness fingerprint.
pub(crate) fn shard_fingerprint(dir: &Path) -> Result<(usize, u64), TlogError> {
    let mut segments = 0usize;
    let mut bytes = 0u64;
    let entries = std::fs::read_dir(dir)
        .map_err(|e| TlogError::io(format!("read dir {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| TlogError::io("read dir entry", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("seg-") && name.ends_with(".tlg") {
            segments += 1;
            bytes += entry
                .metadata()
                .map_err(|e| TlogError::io(format!("stat {name}"), e))?
                .len();
        }
    }
    Ok((segments, bytes))
}

impl Manifest {
    /// Builds a manifest by scanning every shard log under `root`
    /// read-only (no locks are taken; a live writer is not disturbed).
    /// Fails when `root` holds no `shard-<k>` directories.
    pub fn scan(root: impl AsRef<Path>) -> Result<Manifest, TlogError> {
        let root = root.as_ref();
        let dirs = shard_dirs(root)?;
        if dirs.is_empty() {
            return Err(TlogError::io(
                format!("{} holds no shard-<k> directories", root.display()),
                std::io::Error::new(std::io::ErrorKind::NotFound, "not a sharded spill tree"),
            ));
        }
        let mut shards = Vec::with_capacity(dirs.len());
        for (shard, dir) in dirs {
            let (segments, bytes) = shard_fingerprint(&dir)?;
            let (log, _) = TrajectoryLog::open_read_only(&dir, LogConfig::default())?;
            shards.push(ManifestShard {
                shard,
                segments,
                bytes,
                tracks: log.track_summaries(),
            });
        }
        Ok(Manifest { shards })
    }

    /// `true` when every shard's recorded fingerprint (segment count and
    /// byte total) still matches the directory — i.e. nothing was
    /// appended, compacted or deleted since the manifest was written.
    pub fn is_fresh(&self, root: impl AsRef<Path>) -> Result<bool, TlogError> {
        let root = root.as_ref();
        let dirs = shard_dirs(root)?;
        if dirs.len() != self.shards.len() {
            return Ok(false);
        }
        for ((shard, dir), entry) in dirs.iter().zip(&self.shards) {
            if *shard != entry.shard {
                return Ok(false);
            }
            if shard_fingerprint(dir)? != (entry.segments, entry.bytes) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The live time span of `track` across all shards (a track lives in
    /// one shard of a routed tree, but the lookup does not assume it).
    pub fn track_time_span(&self, track: TrackId) -> Option<(f64, f64)> {
        let mut span: Option<(f64, f64)> = None;
        for shard in &self.shards {
            for t in shard.tracks.iter().filter(|t| t.track == track) {
                span = Some(match span {
                    Some((lo, hi)) => (lo.min(t.t_min), hi.max(t.t_max)),
                    None => (t.t_min, t.t_max),
                });
            }
        }
        span
    }

    /// Serialises the manifest to its text form (header, one `shard`
    /// line per shard, one `track` line per live track, trailing CRC).
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str(MANIFEST_HEADER);
        body.push('\n');
        for shard in &self.shards {
            let _ = writeln!(
                body,
                "shard {} segments={} bytes={} records={} points={}",
                shard.shard,
                shard.segments,
                shard.bytes,
                shard.records(),
                shard.points(),
            );
            for t in &shard.tracks {
                let bbox = t.bbox.unwrap_or(Rect::from_point(Point2::new(0.0, 0.0)));
                let _ = writeln!(
                    body,
                    "track {} {} records={} points={} t={} {} bbox={} {} {} {}",
                    shard.shard,
                    t.track,
                    t.records,
                    t.points,
                    t.t_min,
                    t.t_max,
                    bbox.min.x,
                    bbox.min.y,
                    bbox.max.x,
                    bbox.max.y,
                );
            }
        }
        let _ = writeln!(body, "crc {:08x}", crc32(body.as_bytes()));
        body
    }

    /// Writes the manifest atomically (`MANIFEST.tmp` + rename) at the
    /// tree root.
    pub fn write(&self, root: impl AsRef<Path>) -> Result<PathBuf, TlogError> {
        let root = root.as_ref();
        let path = root.join(MANIFEST_FILE);
        let tmp = root.join(format!("{MANIFEST_FILE}.tmp"));
        std::fs::write(&tmp, self.to_text())
            .map_err(|e| TlogError::io(format!("write {}", tmp.display()), e))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| TlogError::io(format!("rename {}", tmp.display()), e))?;
        Ok(path)
    }

    /// Parses a manifest from its text form. Fails on a bad header, a
    /// malformed line, or a CRC mismatch — a reader must then fall back
    /// to [`Manifest::scan`], never trust a damaged manifest.
    pub fn parse(text: &str, path: &Path) -> Result<Manifest, TlogError> {
        let corrupt = |reason: String| TlogError::Corrupt {
            path: path.to_path_buf(),
            offset: 0,
            reason,
        };
        let field = |token: Option<&str>, key: &str| -> Result<String, TlogError> {
            token
                .and_then(|t| t.strip_prefix(key))
                .and_then(|t| t.strip_prefix('='))
                .map(str::to_string)
                .ok_or_else(|| corrupt(format!("expected {key}=<value>")))
        };

        // The CRC line covers everything before it, byte for byte.
        let crc_start = text
            .rfind("crc ")
            .ok_or_else(|| corrupt("missing crc line".to_string()))?;
        let declared = text[crc_start..]
            .trim_end()
            .strip_prefix("crc ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| corrupt("malformed crc line".to_string()))?;
        if crc32(&text.as_bytes()[..crc_start]) != declared {
            return Err(corrupt("manifest CRC mismatch".to_string()));
        }

        let mut lines = text[..crc_start].lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(corrupt(format!("expected header \"{MANIFEST_HEADER}\"")));
        }
        let mut shards: Vec<ManifestShard> = Vec::new();
        for line in lines {
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("shard") => {
                    let shard = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| corrupt("bad shard index".to_string()))?;
                    let segments = field(tokens.next(), "segments")?
                        .parse()
                        .map_err(|e| corrupt(format!("bad segments: {e}")))?;
                    let bytes = field(tokens.next(), "bytes")?
                        .parse()
                        .map_err(|e| corrupt(format!("bad bytes: {e}")))?;
                    shards.push(ManifestShard {
                        shard,
                        segments,
                        bytes,
                        tracks: Vec::new(),
                    });
                }
                Some("track") => {
                    let shard: usize = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| corrupt("bad track shard".to_string()))?;
                    let entry = shards
                        .last_mut()
                        .filter(|s| s.shard == shard)
                        .ok_or_else(|| corrupt("track line outside its shard".to_string()))?;
                    let track = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| corrupt("bad track id".to_string()))?;
                    let records = field(tokens.next(), "records")?
                        .parse()
                        .map_err(|e| corrupt(format!("bad records: {e}")))?;
                    let points = field(tokens.next(), "points")?
                        .parse()
                        .map_err(|e| corrupt(format!("bad points: {e}")))?;
                    let mut f64s =
                        |prefix: Option<&str>, n: usize| -> Result<Vec<f64>, TlogError> {
                            let mut out = Vec::with_capacity(n);
                            for i in 0..n {
                                let token = tokens
                                    .next()
                                    .ok_or_else(|| corrupt("truncated track line".to_string()))?;
                                let token = match (i, prefix) {
                                    (0, Some(p)) => token
                                        .strip_prefix(p)
                                        .and_then(|t| t.strip_prefix('='))
                                        .ok_or_else(|| corrupt(format!("expected {p}=")))?,
                                    _ => token,
                                };
                                out.push(
                                    token
                                        .parse()
                                        .map_err(|e| corrupt(format!("bad float: {e}")))?,
                                );
                            }
                            Ok(out)
                        };
                    let span = f64s(Some("t"), 2)?;
                    let bbox = f64s(Some("bbox"), 4)?;
                    entry.tracks.push(TrackSummary {
                        track,
                        records,
                        points,
                        t_min: span[0],
                        t_max: span[1],
                        bbox: Some(Rect::from_corners(
                            Point2::new(bbox[0], bbox[1]),
                            Point2::new(bbox[2], bbox[3]),
                        )),
                    });
                }
                Some(other) => return Err(corrupt(format!("unknown manifest line: {other}"))),
                None => {}
            }
        }
        Ok(Manifest { shards })
    }

    /// Loads the manifest at `root`, if one exists. A manifest that
    /// fails to parse or CRC-check is an error; absence is `Ok(None)`.
    pub fn load(root: impl AsRef<Path>) -> Result<Option<Manifest>, TlogError> {
        let path = root.as_ref().join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(TlogError::io(format!("read {}", path.display()), e)),
        };
        Manifest::parse(&text, &path).map(Some)
    }

    /// The read path's entry point: the manifest at `root` if present,
    /// parseable and fresh; otherwise a fresh scan (which is *not*
    /// written back — only writers persist manifests, so a pure reader
    /// never mutates the tree).
    pub fn load_or_scan(root: impl AsRef<Path>) -> Result<Manifest, TlogError> {
        let root = root.as_ref();
        if let Ok(Some(manifest)) = Manifest::load(root) {
            if manifest.is_fresh(root)? {
                return Ok(manifest);
            }
        }
        Manifest::scan(root)
    }

    /// Rebuilds the manifest from a fresh scan and writes it at the
    /// root — what a writer calls after finishing a spill run.
    pub fn rebuild(root: impl AsRef<Path>) -> Result<Manifest, TlogError> {
        let manifest = Manifest::scan(&root)?;
        manifest.write(&root)?;
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::open_shard_logs;
    use bqs_geo::TimedPoint;

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bqs-tlog-tests")
            .join(format!("manifest-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn points(track: u64, n: usize, t0: f64) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                TimedPoint::new(
                    i as f64 * 5.0 + track as f64 * 1_000.0,
                    track as f64 * 10.0,
                    t0 + i as f64 * 30.0,
                )
            })
            .collect()
    }

    fn build_tree(root: &Path, shards: usize) {
        let mut logs = open_shard_logs(root, shards, LogConfig::default()).unwrap();
        for (k, (log, _)) in logs.iter_mut().enumerate() {
            log.append(k as u64, &points(k as u64, 40, 0.0)).unwrap();
            log.append(k as u64 + 100, &points(k as u64 + 100, 10, 5_000.0))
                .unwrap();
        }
    }

    #[test]
    fn scan_write_load_round_trip() {
        let root = temp_root("round-trip");
        build_tree(&root, 3);
        let scanned = Manifest::scan(&root).unwrap();
        assert_eq!(scanned.shards.len(), 3);
        assert_eq!(scanned.shards[1].tracks.len(), 2);
        assert_eq!(scanned.shards[1].points(), 50);
        scanned.write(&root).unwrap();
        let loaded = Manifest::load(&root).unwrap().unwrap();
        assert_eq!(loaded, scanned);
        assert!(loaded.is_fresh(&root).unwrap());
        assert_eq!(Manifest::load_or_scan(&root).unwrap(), scanned);
    }

    #[test]
    fn appends_after_write_make_the_manifest_stale() {
        let root = temp_root("stale");
        build_tree(&root, 2);
        let manifest = Manifest::rebuild(&root).unwrap();
        {
            let (mut log, _) =
                TrajectoryLog::open(root.join("shard-0"), LogConfig::default()).unwrap();
            log.append(500, &points(500, 5, 90_000.0)).unwrap();
        }
        assert!(!manifest.is_fresh(&root).unwrap());
        // load_or_scan falls back to a fresh scan that sees the append.
        let fresh = Manifest::load_or_scan(&root).unwrap();
        assert!(fresh.shards[0].tracks.iter().any(|t| t.track == 500));
    }

    #[test]
    fn a_corrupt_manifest_is_rejected_not_trusted() {
        let root = temp_root("corrupt");
        build_tree(&root, 2);
        Manifest::rebuild(&root).unwrap();
        let path = root.join(MANIFEST_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replacen("records=1", "records=9", 1);
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            Manifest::load(&root).unwrap_err(),
            TlogError::Corrupt { .. }
        ));
        // The read path silently falls back to scanning.
        let fresh = Manifest::load_or_scan(&root).unwrap();
        assert_eq!(fresh, Manifest::scan(&root).unwrap());
    }

    #[test]
    fn may_contain_prunes_by_track_time_and_space() {
        let root = temp_root("prune");
        build_tree(&root, 2);
        let manifest = Manifest::scan(&root).unwrap();
        let shard0 = &manifest.shards[0];
        // Track filter: shard 0 holds tracks 0 and 100, not 1.
        assert!(shard0.may_contain(Some(0), TimeRange::all(), None));
        assert!(!shard0.may_contain(Some(1), TimeRange::all(), None));
        // Time: tracks span [0, 1170] and [5000, 5270].
        assert!(!shard0.may_contain(None, TimeRange::new(1_200.0, 4_000.0), None));
        assert!(shard0.may_contain(None, TimeRange::new(100.0, 200.0), None));
        // Space: track 0 sits near x ∈ [0, 195]; 10 km away is empty.
        let far = Rect::from_corners(Point2::new(9_000.0, -1.0), Point2::new(9_500.0, 1.0));
        assert!(!shard0.may_contain(None, TimeRange::all(), Some(&far)));
        let near = Rect::from_corners(Point2::new(-1.0, -1.0), Point2::new(50.0, 1.0));
        assert!(shard0.may_contain(None, TimeRange::all(), Some(&near)));
        // Combined: right place, wrong time.
        assert!(!shard0.may_contain(Some(0), TimeRange::new(2_000.0, 3_000.0), Some(&near)));

        assert_eq!(manifest.track_time_span(0), Some((0.0, 1_170.0)));
        assert_eq!(manifest.track_time_span(42), None);
    }

    #[test]
    fn non_finite_spans_survive_the_text_round_trip() {
        let manifest = Manifest {
            shards: vec![ManifestShard {
                shard: 0,
                segments: 1,
                bytes: 8,
                tracks: vec![TrackSummary {
                    track: 7,
                    records: 1,
                    points: 3,
                    t_min: -0.0,
                    t_max: 1e300,
                    bbox: Some(Rect::from_corners(
                        Point2::new(f64::NEG_INFINITY, -1.5),
                        Point2::new(f64::INFINITY, 2.25),
                    )),
                }],
            }],
        };
        let text = manifest.to_text();
        let parsed = Manifest::parse(&text, Path::new("MANIFEST")).unwrap();
        assert_eq!(parsed, manifest);
    }
}
