//! The sharded spill tree: one [`TrajectoryLog`] per parallel worker.
//!
//! A [`TrajectoryLog`] is single-writer (one advisory lock per
//! directory), so a multi-threaded fleet cannot funnel every shard
//! through one log without re-serialising exactly the work the threads
//! were meant to spread. The parallel runtime instead gives worker `k`
//! its own log under `<root>/shard-<k>/` — shared-nothing on disk, just
//! like in memory:
//!
//! ```text
//! <root>/
//!   shard-0/ seg-000001.tlg …   ← worker 0's private TrajectoryLog
//!   shard-1/ seg-000001.tlg …   ← worker 1's private TrajectoryLog
//!   …
//! ```
//!
//! Because `ParallelFleet` routes a track to exactly one worker, a track
//! appears in exactly one shard directory; queries for a single track
//! open that shard alone, and tree-wide operations (verification,
//! listing) fold over the shards. The layout is specified in
//! `docs/format.md` §"Sharded spill trees".

use crate::error::TlogError;
use crate::log::{verify_dir, LogConfig, RecoveryReport, TrajectoryLog, VerifyReport};
use std::path::{Path, PathBuf};

/// Directory-name prefix of one shard's log inside a spill tree.
pub const SHARD_DIR_PREFIX: &str = "shard-";

/// The directory of shard `k` under `root` (`<root>/shard-<k>`).
pub fn shard_dir(root: impl AsRef<Path>, shard: usize) -> PathBuf {
    root.as_ref().join(format!("{SHARD_DIR_PREFIX}{shard}"))
}

/// What a prospective spill root currently holds on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillLayout {
    /// The directory does not exist yet.
    Missing,
    /// The directory exists and is empty.
    Empty,
    /// The directory is a flat [`TrajectoryLog`] (it holds `seg-*.tlg`
    /// segment files directly).
    FlatLog,
    /// The directory is a sharded spill tree; the payload is the sorted
    /// shard indices found (contiguous `0..N` for a healthy tree).
    ShardTree(Vec<usize>),
    /// The directory holds entries that belong to neither layout.
    Other,
}

/// Classifies `root` as a spill target. Never creates anything.
pub fn spill_layout(root: impl AsRef<Path>) -> Result<SpillLayout, TlogError> {
    let root = root.as_ref();
    if !root.exists() {
        return Ok(SpillLayout::Missing);
    }
    let entries = std::fs::read_dir(root)
        .map_err(|e| TlogError::io(format!("read dir {}", root.display()), e))?;
    let mut any = false;
    for entry in entries {
        let entry = entry.map_err(|e| TlogError::io("read dir entry", e))?;
        any = true;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with("seg-") && name.ends_with(".tlg") {
                return Ok(SpillLayout::FlatLog);
            }
        }
    }
    if !any {
        return Ok(SpillLayout::Empty);
    }
    let shards: Vec<usize> = shard_dirs(root)?.into_iter().map(|(k, _)| k).collect();
    if shards.is_empty() {
        Ok(SpillLayout::Other)
    } else {
        Ok(SpillLayout::ShardTree(shards))
    }
}

/// Refuses up front to spill a `workers`-shaped layout into a root that
/// already holds an *incompatible* one, instead of writing the mixed or
/// gapped trees [`verify_sharded`] rejects after the fact:
///
/// * a flat log cannot take a `shard-<k>/` tree (`workers > 1`) — the
///   tree tooling would never visit the flat segments, and vice versa;
/// * a tree cannot take a flat log (`workers == 1`) — a rogue top-level
///   segment file is invisible to every tree operation;
/// * a tree built with a *different* worker count cannot be extended —
///   track routing is `worker_of(track, N)`, so a second run at `M ≠ N`
///   would scatter tracks across shards inconsistently (and fewer
///   workers would leave orphaned shards that fail contiguity checks).
///
/// A missing or empty root, or a tree with exactly `0..workers` shards,
/// passes; a single worker (`workers <= 1`) is assumed to write a
/// *flat* log (the `bqs fleet --spill` convention), so an existing flat
/// log passes too. Library callers that write a `shard-<k>/` tree even
/// for one shard (i.e. [`open_shard_logs`]) are guarded by
/// [`check_tree_root`] instead, where a flat log never passes.
pub fn check_spill_root(root: impl AsRef<Path>, workers: usize) -> Result<(), TlogError> {
    if workers > 1 {
        return check_tree_root(root, workers);
    }
    let root = root.as_ref();
    match spill_layout(root)? {
        SpillLayout::ShardTree(shards) => Err(TlogError::IncompatibleLayout {
            dir: root.to_path_buf(),
            reason: format!(
                "already holds a sharded spill tree ({} shards), but a single-worker run \
                 writes a flat log; use a fresh directory or rerun with matching --workers",
                shards.len()
            ),
        }),
        _ => Ok(()),
    }
}

/// Refuses a root whose layout cannot take a `shards`-way tree: a flat
/// log (any shard count — the tree tooling would never visit its
/// top-level segments), or a tree whose shard set is not exactly
/// `0..shards` (a different worker count would mis-route tracks and
/// leave gapped/orphaned shards).
pub fn check_tree_root(root: impl AsRef<Path>, shards: usize) -> Result<(), TlogError> {
    let root = root.as_ref();
    let incompatible = |reason: String| {
        Err(TlogError::IncompatibleLayout {
            dir: root.to_path_buf(),
            reason,
        })
    };
    match spill_layout(root)? {
        SpillLayout::Missing | SpillLayout::Empty | SpillLayout::Other => Ok(()),
        SpillLayout::FlatLog => incompatible(format!(
            "already holds a flat trajectory log (seg-*.tlg), but {shards} worker(s) \
             would write a {SHARD_DIR_PREFIX}<k>/ tree; use a fresh directory"
        )),
        SpillLayout::ShardTree(found) => {
            let expected: Vec<usize> = (0..shards).collect();
            if found == expected {
                Ok(())
            } else {
                incompatible(format!(
                    "already holds a sharded spill tree with shards {found:?}, but \
                     {shards} worker(s) need exactly {SHARD_DIR_PREFIX}0..{SHARD_DIR_PREFIX}{}; \
                     a different --workers would mis-route tracks — use a fresh directory",
                    shards - 1
                ))
            }
        }
    }
}

/// Opens (creating if needed) one log per shard, `0..workers`, under
/// `root`. Returns the logs in shard order along with each shard's
/// recovery report. Fails with [`TlogError::IncompatibleLayout`] when
/// `root` already holds a flat log (even for one worker — this function
/// always writes a tree) or a tree built with a different worker count
/// (see [`check_tree_root`]).
pub fn open_shard_logs(
    root: impl AsRef<Path>,
    workers: usize,
    config: LogConfig,
) -> Result<Vec<(TrajectoryLog, RecoveryReport)>, TlogError> {
    check_tree_root(&root, workers)?;
    (0..workers)
        .map(|k| TrajectoryLog::open(shard_dir(&root, k), config))
        .collect()
}

/// Prepares a spill destination for a *fresh* run and opens its logs:
/// the layout guard ([`check_spill_root`]) runs first so an
/// incompatible existing layout gets its specific diagnosis, then any
/// other non-empty directory is refused (spill runs start their stream
/// clocks at arbitrary points; writing over an earlier run's data
/// would fail the log's time-order check with a cryptic error deep in
/// the codec), and finally one log per worker is opened — a flat log
/// at the root for one worker, `shard-<k>/` logs above.
///
/// This is the single entry point behind every spill writer
/// (`bqs fleet --spill`, `bqs serve`), so the guard rules and their
/// messages cannot drift between them.
pub fn prepare_spill_logs(
    root: impl AsRef<Path>,
    workers: usize,
    config: LogConfig,
) -> Result<Vec<TrajectoryLog>, TlogError> {
    let root = root.as_ref();
    let workers = workers.max(1);
    check_spill_root(root, workers)?;
    if root.exists()
        && root
            .read_dir()
            .map_err(|e| TlogError::io(format!("read dir {}", root.display()), e))?
            .next()
            .is_some()
    {
        return Err(TlogError::IncompatibleLayout {
            dir: root.to_path_buf(),
            reason: "is not empty; use a fresh directory per spill run".to_string(),
        });
    }
    if workers == 1 {
        let (log, _) = TrajectoryLog::open(root, config)?;
        Ok(vec![log])
    } else {
        Ok(open_shard_logs(root, workers, config)?
            .into_iter()
            .map(|(log, _)| log)
            .collect())
    }
}

/// Lists the shard directories present under `root`, sorted by shard
/// index. An empty result means `root` is not a sharded tree (it may
/// still be a flat single log). Entries that merely *look* like shards
/// but are files, or whose suffix is not a number, are ignored.
pub fn shard_dirs(root: impl AsRef<Path>) -> Result<Vec<(usize, PathBuf)>, TlogError> {
    let root = root.as_ref();
    let mut out = Vec::new();
    let entries = std::fs::read_dir(root)
        .map_err(|e| TlogError::io(format!("read dir {}", root.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| TlogError::io("read dir entry", e))?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(index) = name
            .to_str()
            .and_then(|n| n.strip_prefix(SHARD_DIR_PREFIX))
            .and_then(|n| n.parse::<usize>().ok())
        else {
            continue;
        };
        out.push((index, entry.path()));
    }
    out.sort_unstable_by_key(|(index, _)| *index);
    Ok(out)
}

/// Whether (and how) a tree's `MANIFEST` was checked by
/// [`verify_sharded`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ManifestStatus {
    /// No `MANIFEST` file at the root — legal, readers just rescan.
    #[default]
    Absent,
    /// A manifest was present, parsed, CRC-checked, and matched a fresh
    /// scan of every shard exactly.
    Verified,
}

/// What verifying a whole sharded tree found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedVerifyReport {
    /// One strict verification result per shard, in shard order.
    pub shards: Vec<(usize, VerifyReport)>,
    /// The shard reports folded into one.
    pub total: VerifyReport,
    /// Outcome of the `MANIFEST` cross-check (a mismatching or corrupt
    /// manifest fails verification instead of appearing here).
    pub manifest: ManifestStatus,
}

/// Strictly verifies every shard log under `root` (see
/// [`verify_dir`]): any fault in any shard is an error, and so is a
/// malformed tree — shard indices must be exactly `0..N` (a gap means a
/// shard directory is *missing*, a duplicate like `shard-1`/`shard-01`
/// would double-count records), since a fleet always writes a
/// contiguous tree. Fails with a typed I/O error when `root` contains
/// no `shard-<k>` directories — use [`verify_dir`] directly for a flat
/// log.
pub fn verify_sharded(root: impl AsRef<Path>) -> Result<ShardedVerifyReport, TlogError> {
    let root = root.as_ref();
    let dirs = shard_dirs(root)?;
    if dirs.is_empty() {
        return Err(TlogError::io(
            format!(
                "{} holds no {SHARD_DIR_PREFIX}<k> directories",
                root.display()
            ),
            std::io::Error::new(std::io::ErrorKind::NotFound, "not a sharded spill tree"),
        ));
    }
    // `shard_dirs` sorts by index, so contiguity reduces to a positional
    // check; it catches both gaps (a deleted shard must not verify OK)
    // and duplicate spellings of one index.
    for (position, (index, dir)) in dirs.iter().enumerate() {
        if *index != position {
            return Err(TlogError::io(
                format!(
                    "{} is not a contiguous shard tree: found {} where \
                     {SHARD_DIR_PREFIX}{position} was expected ({} shard dirs total)",
                    root.display(),
                    dir.display(),
                    dirs.len(),
                ),
                std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "missing or duplicate shard directory",
                ),
            ));
        }
    }
    let mut report = ShardedVerifyReport::default();
    for (index, dir) in dirs {
        let shard = verify_dir(&dir)?;
        report.total.segments += shard.segments;
        report.total.records += shard.records;
        report.total.backfill_records += shard.backfill_records;
        report.total.tombstones += shard.tombstones;
        report.total.points += shard.points;
        report.total.file_bytes += shard.file_bytes;
        report.total.payload_bytes += shard.payload_bytes;
        report.shards.push((index, shard));
    }
    // A present MANIFEST must agree with reality: a stale or lying
    // manifest would let the query layer prune shards that *do* hold
    // matching data, which is silent data loss on the read path.
    if let Some(manifest) = crate::manifest::Manifest::load(root)? {
        let fresh = crate::manifest::Manifest::scan(root)?;
        if manifest != fresh {
            return Err(TlogError::Corrupt {
                path: root.join(crate::manifest::MANIFEST_FILE),
                offset: 0,
                reason: "MANIFEST disagrees with the shard logs; rebuild it \
                         (it is stale or was edited)"
                    .to_string(),
            });
        }
        report.manifest = ManifestStatus::Verified;
    }
    Ok(report)
}

/// `true` when `root` exists and contains at least one `shard-<k>`
/// directory — the dispatch test `bqs log verify` uses to pick between
/// a flat log and a sharded tree.
pub fn is_sharded_tree(root: impl AsRef<Path>) -> bool {
    matches!(shard_dirs(root), Ok(dirs) if !dirs.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_geo::TimedPoint;

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bqs-tlog-tests")
            .join(format!("sharded-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn points(track: u64, n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| TimedPoint::new(i as f64 * 5.0 + track as f64, 0.0, i as f64 * 30.0))
            .collect()
    }

    #[test]
    fn shard_logs_open_write_and_verify_as_a_tree() {
        let root = temp_root("roundtrip");
        {
            let mut logs = open_shard_logs(&root, 3, LogConfig::default()).unwrap();
            for (k, (log, recovery)) in logs.iter_mut().enumerate() {
                assert_eq!(recovery.records, 0);
                log.append(k as u64, &points(k as u64, 50)).unwrap();
            }
        }
        assert!(is_sharded_tree(&root));
        let report = verify_sharded(&root).unwrap();
        assert_eq!(report.shards.len(), 3);
        assert_eq!(report.total.records, 3);
        assert_eq!(report.total.points, 150);
        assert_eq!(
            report.shards.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Each shard is individually reopenable and holds only its track.
        for k in 0..3u64 {
            let (log, _) =
                TrajectoryLog::open(shard_dir(&root, k as usize), LogConfig::default()).unwrap();
            assert_eq!(log.tracks(), vec![k]);
        }
    }

    #[test]
    fn flat_log_is_not_a_sharded_tree() {
        let root = temp_root("flat");
        let (mut log, _) = TrajectoryLog::open(&root, LogConfig::default()).unwrap();
        log.append(1, &points(1, 10)).unwrap();
        assert!(!is_sharded_tree(&root));
        assert!(verify_sharded(&root).is_err());
        assert!(verify_dir(&root).is_ok());
    }

    #[test]
    fn non_shard_entries_are_ignored() {
        let root = temp_root("mixed");
        std::fs::create_dir_all(root.join("shard-1")).unwrap();
        std::fs::create_dir_all(root.join("shard-x")).unwrap();
        std::fs::create_dir_all(root.join("other")).unwrap();
        std::fs::write(root.join("shard-2"), b"a file, not a dir").unwrap();
        let dirs = shard_dirs(&root).unwrap();
        assert_eq!(dirs.len(), 1);
        assert_eq!(dirs[0].0, 1);
    }

    #[test]
    fn missing_root_is_a_clean_error() {
        let root = temp_root("missing");
        assert!(shard_dirs(&root).is_err());
        assert!(!is_sharded_tree(&root));
    }

    #[test]
    fn a_deleted_shard_fails_tree_verification() {
        let root = temp_root("gap");
        {
            let mut logs = open_shard_logs(&root, 3, LogConfig::default()).unwrap();
            for (k, (log, _)) in logs.iter_mut().enumerate() {
                log.append(k as u64, &points(k as u64, 20)).unwrap();
            }
        }
        assert!(verify_sharded(&root).is_ok());
        // Losing a whole shard directory must not verify as OK.
        std::fs::remove_dir_all(shard_dir(&root, 1)).unwrap();
        let err = verify_sharded(&root).unwrap_err();
        assert!(err.to_string().contains("shard-1"), "{err}");
    }

    #[test]
    fn spill_layout_classifies_roots() {
        let root = temp_root("layout");
        assert_eq!(spill_layout(&root).unwrap(), SpillLayout::Missing);
        std::fs::create_dir_all(&root).unwrap();
        assert_eq!(spill_layout(&root).unwrap(), SpillLayout::Empty);
        std::fs::write(root.join("notes.txt"), b"unrelated").unwrap();
        assert_eq!(spill_layout(&root).unwrap(), SpillLayout::Other);

        let flat = temp_root("layout-flat");
        let (mut log, _) = TrajectoryLog::open(&flat, LogConfig::default()).unwrap();
        log.append(1, &points(1, 5)).unwrap();
        drop(log);
        assert_eq!(spill_layout(&flat).unwrap(), SpillLayout::FlatLog);

        let tree = temp_root("layout-tree");
        drop(open_shard_logs(&tree, 2, LogConfig::default()).unwrap());
        assert_eq!(
            spill_layout(&tree).unwrap(),
            SpillLayout::ShardTree(vec![0, 1])
        );
    }

    #[test]
    fn spilling_a_tree_over_a_flat_log_is_refused_up_front() {
        let root = temp_root("guard-flat");
        {
            let (mut log, _) = TrajectoryLog::open(&root, LogConfig::default()).unwrap();
            log.append(1, &points(1, 10)).unwrap();
        }
        // A multi-worker tree over a flat log would produce exactly the
        // mixed layout verify_sharded rejects — fail before writing.
        let err = open_shard_logs(&root, 4, LogConfig::default()).unwrap_err();
        assert!(matches!(err, TlogError::IncompatibleLayout { .. }), "{err}");
        assert!(err.to_string().contains("flat trajectory log"), "{err}");
        assert!(!root.join("shard-0").exists(), "nothing must be created");
        // A single writer may still open the flat log *as a flat log*
        // (the CLI convention check_spill_root encodes)…
        assert!(check_spill_root(&root, 1).is_ok());
        // …but open_shard_logs always writes a tree, so even one shard
        // must not be dropped next to the flat segments.
        let err = open_shard_logs(&root, 1, LogConfig::default()).unwrap_err();
        assert!(matches!(err, TlogError::IncompatibleLayout { .. }), "{err}");
        assert!(!root.join("shard-0").exists());
    }

    #[test]
    fn spilling_with_a_different_worker_count_is_refused_up_front() {
        let root = temp_root("guard-workers");
        drop(open_shard_logs(&root, 3, LogConfig::default()).unwrap());
        // Same worker count: fine (resume).
        assert!(check_spill_root(&root, 3).is_ok());
        // More workers would leave a part-new part-old routing; fewer
        // would orphan shards; a flat run would drop a rogue segment
        // next to the tree. All refused with typed errors.
        for workers in [1usize, 2, 4, 8] {
            let err = check_spill_root(&root, workers).unwrap_err();
            assert!(
                matches!(err, TlogError::IncompatibleLayout { .. }),
                "workers={workers}: {err}"
            );
        }
        assert!(open_shard_logs(&root, 4, LogConfig::default()).is_err());
        assert!(!root.join("shard-3").exists());
    }

    #[test]
    fn verify_checks_a_present_manifest_against_the_shards() {
        let root = temp_root("verify-manifest");
        {
            let mut logs = open_shard_logs(&root, 2, LogConfig::default()).unwrap();
            for (k, (log, _)) in logs.iter_mut().enumerate() {
                log.append(k as u64, &points(k as u64, 20)).unwrap();
            }
        }
        // No manifest: verification passes and says so.
        assert_eq!(
            verify_sharded(&root).unwrap().manifest,
            ManifestStatus::Absent
        );
        crate::manifest::Manifest::rebuild(&root).unwrap();
        assert_eq!(
            verify_sharded(&root).unwrap().manifest,
            ManifestStatus::Verified
        );
        // A stale manifest (append after rebuild) fails verification.
        {
            let (mut log, _) =
                TrajectoryLog::open(shard_dir(&root, 0), LogConfig::default()).unwrap();
            log.append(9, &points(9, 5)).unwrap();
        }
        let err = verify_sharded(&root).unwrap_err();
        assert!(err.to_string().contains("MANIFEST"), "{err}");
        // Rebuilding repairs it.
        crate::manifest::Manifest::rebuild(&root).unwrap();
        assert!(verify_sharded(&root).is_ok());
    }

    #[test]
    fn duplicate_shard_spellings_fail_tree_verification() {
        let root = temp_root("dup");
        {
            let _logs = open_shard_logs(&root, 2, LogConfig::default()).unwrap();
        }
        // `shard-01` parses to index 1 too: records would be counted
        // twice if the tree verified.
        std::fs::create_dir_all(root.join("shard-01")).unwrap();
        assert!(verify_sharded(&root).is_err());
    }

    #[test]
    fn prepare_spill_logs_opens_fresh_layouts_and_refuses_everything_else() {
        // One worker → a flat log at the root.
        let flat = temp_root("prep-flat");
        let logs = prepare_spill_logs(&flat, 1, LogConfig::default()).unwrap();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].dir(), flat.as_path());
        drop(logs);

        // Several workers → a shard tree.
        let tree = temp_root("prep-tree");
        let logs = prepare_spill_logs(&tree, 3, LogConfig::default()).unwrap();
        assert_eq!(logs.len(), 3);
        drop(logs);

        // Layout mismatches get the specific diagnosis…
        let err = prepare_spill_logs(&flat, 3, LogConfig::default()).unwrap_err();
        assert!(err.to_string().contains("flat trajectory log"), "{err}");
        let err = prepare_spill_logs(&tree, 1, LogConfig::default()).unwrap_err();
        assert!(err.to_string().contains("sharded spill tree"), "{err}");
        // …a matching-but-used layout the generic freshness refusal…
        let err = prepare_spill_logs(&tree, 3, LogConfig::default()).unwrap_err();
        assert!(err.to_string().contains("fresh directory"), "{err}");
        // …and so does any other non-empty directory.
        let junk = temp_root("prep-junk");
        std::fs::create_dir_all(&junk).unwrap();
        std::fs::write(junk.join("file.txt"), b"x").unwrap();
        let err = prepare_spill_logs(&junk, 2, LogConfig::default()).unwrap_err();
        assert!(err.to_string().contains("fresh directory"), "{err}");
    }
}
