//! The sharded spill tree: one [`TrajectoryLog`] per parallel worker.
//!
//! A [`TrajectoryLog`] is single-writer (one advisory lock per
//! directory), so a multi-threaded fleet cannot funnel every shard
//! through one log without re-serialising exactly the work the threads
//! were meant to spread. The parallel runtime instead gives worker `k`
//! its own log under `<root>/shard-<k>/` — shared-nothing on disk, just
//! like in memory:
//!
//! ```text
//! <root>/
//!   shard-0/ seg-000001.tlg …   ← worker 0's private TrajectoryLog
//!   shard-1/ seg-000001.tlg …   ← worker 1's private TrajectoryLog
//!   …
//! ```
//!
//! Because `ParallelFleet` routes a track to exactly one worker, a track
//! appears in exactly one shard directory; queries for a single track
//! open that shard alone, and tree-wide operations (verification,
//! listing) fold over the shards. The layout is specified in
//! `docs/format.md` §"Sharded spill trees".

use crate::error::TlogError;
use crate::log::{verify_dir, LogConfig, RecoveryReport, TrajectoryLog, VerifyReport};
use std::path::{Path, PathBuf};

/// Directory-name prefix of one shard's log inside a spill tree.
pub const SHARD_DIR_PREFIX: &str = "shard-";

/// The directory of shard `k` under `root` (`<root>/shard-<k>`).
pub fn shard_dir(root: impl AsRef<Path>, shard: usize) -> PathBuf {
    root.as_ref().join(format!("{SHARD_DIR_PREFIX}{shard}"))
}

/// Opens (creating if needed) one log per shard, `0..workers`, under
/// `root`. Returns the logs in shard order along with each shard's
/// recovery report.
pub fn open_shard_logs(
    root: impl AsRef<Path>,
    workers: usize,
    config: LogConfig,
) -> Result<Vec<(TrajectoryLog, RecoveryReport)>, TlogError> {
    (0..workers)
        .map(|k| TrajectoryLog::open(shard_dir(&root, k), config))
        .collect()
}

/// Lists the shard directories present under `root`, sorted by shard
/// index. An empty result means `root` is not a sharded tree (it may
/// still be a flat single log). Entries that merely *look* like shards
/// but are files, or whose suffix is not a number, are ignored.
pub fn shard_dirs(root: impl AsRef<Path>) -> Result<Vec<(usize, PathBuf)>, TlogError> {
    let root = root.as_ref();
    let mut out = Vec::new();
    let entries = std::fs::read_dir(root)
        .map_err(|e| TlogError::io(format!("read dir {}", root.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| TlogError::io("read dir entry", e))?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(index) = name
            .to_str()
            .and_then(|n| n.strip_prefix(SHARD_DIR_PREFIX))
            .and_then(|n| n.parse::<usize>().ok())
        else {
            continue;
        };
        out.push((index, entry.path()));
    }
    out.sort_unstable_by_key(|(index, _)| *index);
    Ok(out)
}

/// What verifying a whole sharded tree found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedVerifyReport {
    /// One strict verification result per shard, in shard order.
    pub shards: Vec<(usize, VerifyReport)>,
    /// The shard reports folded into one.
    pub total: VerifyReport,
}

/// Strictly verifies every shard log under `root` (see
/// [`verify_dir`]): any fault in any shard is an error, and so is a
/// malformed tree — shard indices must be exactly `0..N` (a gap means a
/// shard directory is *missing*, a duplicate like `shard-1`/`shard-01`
/// would double-count records), since a fleet always writes a
/// contiguous tree. Fails with a typed I/O error when `root` contains
/// no `shard-<k>` directories — use [`verify_dir`] directly for a flat
/// log.
pub fn verify_sharded(root: impl AsRef<Path>) -> Result<ShardedVerifyReport, TlogError> {
    let root = root.as_ref();
    let dirs = shard_dirs(root)?;
    if dirs.is_empty() {
        return Err(TlogError::io(
            format!(
                "{} holds no {SHARD_DIR_PREFIX}<k> directories",
                root.display()
            ),
            std::io::Error::new(std::io::ErrorKind::NotFound, "not a sharded spill tree"),
        ));
    }
    // `shard_dirs` sorts by index, so contiguity reduces to a positional
    // check; it catches both gaps (a deleted shard must not verify OK)
    // and duplicate spellings of one index.
    for (position, (index, dir)) in dirs.iter().enumerate() {
        if *index != position {
            return Err(TlogError::io(
                format!(
                    "{} is not a contiguous shard tree: found {} where \
                     {SHARD_DIR_PREFIX}{position} was expected ({} shard dirs total)",
                    root.display(),
                    dir.display(),
                    dirs.len(),
                ),
                std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "missing or duplicate shard directory",
                ),
            ));
        }
    }
    let mut report = ShardedVerifyReport::default();
    for (index, dir) in dirs {
        let shard = verify_dir(&dir)?;
        report.total.segments += shard.segments;
        report.total.records += shard.records;
        report.total.tombstones += shard.tombstones;
        report.total.points += shard.points;
        report.total.file_bytes += shard.file_bytes;
        report.total.payload_bytes += shard.payload_bytes;
        report.shards.push((index, shard));
    }
    Ok(report)
}

/// `true` when `root` exists and contains at least one `shard-<k>`
/// directory — the dispatch test `bqs log verify` uses to pick between
/// a flat log and a sharded tree.
pub fn is_sharded_tree(root: impl AsRef<Path>) -> bool {
    matches!(shard_dirs(root), Ok(dirs) if !dirs.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_geo::TimedPoint;

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bqs-tlog-tests")
            .join(format!("sharded-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn points(track: u64, n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| TimedPoint::new(i as f64 * 5.0 + track as f64, 0.0, i as f64 * 30.0))
            .collect()
    }

    #[test]
    fn shard_logs_open_write_and_verify_as_a_tree() {
        let root = temp_root("roundtrip");
        {
            let mut logs = open_shard_logs(&root, 3, LogConfig::default()).unwrap();
            for (k, (log, recovery)) in logs.iter_mut().enumerate() {
                assert_eq!(recovery.records, 0);
                log.append(k as u64, &points(k as u64, 50)).unwrap();
            }
        }
        assert!(is_sharded_tree(&root));
        let report = verify_sharded(&root).unwrap();
        assert_eq!(report.shards.len(), 3);
        assert_eq!(report.total.records, 3);
        assert_eq!(report.total.points, 150);
        assert_eq!(
            report.shards.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Each shard is individually reopenable and holds only its track.
        for k in 0..3u64 {
            let (log, _) =
                TrajectoryLog::open(shard_dir(&root, k as usize), LogConfig::default()).unwrap();
            assert_eq!(log.tracks(), vec![k]);
        }
    }

    #[test]
    fn flat_log_is_not_a_sharded_tree() {
        let root = temp_root("flat");
        let (mut log, _) = TrajectoryLog::open(&root, LogConfig::default()).unwrap();
        log.append(1, &points(1, 10)).unwrap();
        assert!(!is_sharded_tree(&root));
        assert!(verify_sharded(&root).is_err());
        assert!(verify_dir(&root).is_ok());
    }

    #[test]
    fn non_shard_entries_are_ignored() {
        let root = temp_root("mixed");
        std::fs::create_dir_all(root.join("shard-1")).unwrap();
        std::fs::create_dir_all(root.join("shard-x")).unwrap();
        std::fs::create_dir_all(root.join("other")).unwrap();
        std::fs::write(root.join("shard-2"), b"a file, not a dir").unwrap();
        let dirs = shard_dirs(&root).unwrap();
        assert_eq!(dirs.len(), 1);
        assert_eq!(dirs[0].0, 1);
    }

    #[test]
    fn missing_root_is_a_clean_error() {
        let root = temp_root("missing");
        assert!(shard_dirs(&root).is_err());
        assert!(!is_sharded_tree(&root));
    }

    #[test]
    fn a_deleted_shard_fails_tree_verification() {
        let root = temp_root("gap");
        {
            let mut logs = open_shard_logs(&root, 3, LogConfig::default()).unwrap();
            for (k, (log, _)) in logs.iter_mut().enumerate() {
                log.append(k as u64, &points(k as u64, 20)).unwrap();
            }
        }
        assert!(verify_sharded(&root).is_ok());
        // Losing a whole shard directory must not verify as OK.
        std::fs::remove_dir_all(shard_dir(&root, 1)).unwrap();
        let err = verify_sharded(&root).unwrap_err();
        assert!(err.to_string().contains("shard-1"), "{err}");
    }

    #[test]
    fn duplicate_shard_spellings_fail_tree_verification() {
        let root = temp_root("dup");
        {
            let _logs = open_shard_logs(&root, 2, LogConfig::default()).unwrap();
        }
        // `shard-01` parses to index 1 too: records would be counted
        // twice if the tree verified.
        std::fs::create_dir_all(root.join("shard-01")).unwrap();
        assert!(verify_sharded(&root).is_err());
    }
}
