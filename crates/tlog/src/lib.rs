//! # bqs-tlog — the durable trajectory log
//!
//! The paper's point is that BQS/FBQS make trajectories cheap enough to
//! *store and ship*; this crate is where the compressed output lands. It
//! turns the in-memory emission of `bqs-core` (sinks, the fleet engine)
//! into a durable, queryable asset:
//!
//! * [`codec`] — a compact binary codec for [`TimedPoint`](bqs_geo::TimedPoint)
//!   streams: varint zig-zag delta-of-delta encoding over an
//!   order-preserving `f64`↔`u64` bit map, bit-lossless for arbitrary
//!   doubles yet a small fraction of the naive 24 B/point on real GPS
//!   streams. The decoder replays straight into any
//!   [`Sink`](bqs_core::stream::Sink).
//! * [`segment`] — CRC-framed record layout inside segment files, and
//!   the tail-tolerant scanner behind crash recovery.
//! * [`log`] — [`TrajectoryLog`]: an append-only segmented log with
//!   rotation, a per-track sparse time index rebuilt from record
//!   headers, tombstone deletes, compaction, and torn-tail repair on
//!   reopen.
//! * [`query`] — time-range and bounding-box queries that prune via the
//!   index before decoding, plus point-in-time reconstruction through
//!   [`bqs_core::reconstruct`].
//! * [`spill`] — [`SpillSink`]: the
//!   [`FleetSink`](bqs_core::fleet::FleetSink) that spills sessions to
//!   the log when the engine closes them (flush-on-close,
//!   spill-on-evict). Works borrowed (`SpillSink<&mut TrajectoryLog>`)
//!   or owned (`SpillSink<TrajectoryLog>`) — the owned form is what a
//!   parallel worker shard carries onto its thread.
//! * [`sharded`] — the `shard-<k>/` spill-tree layout behind
//!   [`ParallelFleet`](bqs_core::fleet::ParallelFleet): one private
//!   log per worker shard, tree-wide verification ([`verify_sharded`])
//!   and the writer-side layout guard ([`check_spill_root`]).
//! * [`manifest`] — the tree's `MANIFEST`: per-shard track sets, time
//!   spans and bounding boxes, cached so readers can prune shards
//!   without opening them (rebuilt whenever stale, cross-checked by
//!   `bqs log verify`).
//! * [`engine`] — [`QueryEngine`]: the unified hot/cold read path.
//!   Fans queries out across shard logs in parallel (read-only,
//!   lock-free opens that are safe beside a live writer), prunes via
//!   the manifest, and merges the result with a live fleet's
//!   [`FleetSnapshot`](bqs_core::fleet::FleetSnapshot) — durable data
//!   wins on overlap.
//!
//! The on-disk format is specified in `docs/format.md`; `bqs query`
//! and `bqs log append|query|compact|verify` expose the subsystem on
//! the command line.
//!
//! ## Quick example
//!
//! ```
//! use bqs_tlog::{LogConfig, TimeRange, TrajectoryLog};
//! use bqs_geo::TimedPoint;
//!
//! let dir = std::env::temp_dir().join(format!("tlog-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let (mut log, recovery) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
//! assert_eq!(recovery.truncated_segments, 0);
//!
//! let points: Vec<TimedPoint> = (0..100)
//!     .map(|i| TimedPoint::new(i as f64 * 12.0, 0.0, i as f64 * 60.0))
//!     .collect();
//! log.append(7, &points).unwrap();
//!
//! let hits = log.query_time_range(Some(7), TimeRange::new(600.0, 1200.0)).unwrap();
//! assert_eq!(hits.slices[0].points.len(), 11);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![deny(missing_docs)]

pub mod codec;
pub mod crc;
pub mod engine;
pub mod error;
pub mod log;
pub mod manifest;
pub mod query;
pub mod segment;
pub mod sharded;
pub mod spill;

pub use codec::{CodecError, CODEC_VERSION, NAIVE_POINT_BYTES};
pub use engine::{QueryEngine, ShardQuery, UnifiedOutput};
pub use error::TlogError;
pub use log::{
    verify_dir, AppendReceipt, CompactReport, LogConfig, LogFootprint, RecoveryReport,
    TrackSummary, TrajectoryLog, VerifyReport,
};
pub use manifest::{Manifest, ManifestShard, MANIFEST_FILE};
pub use query::{QueryOutput, QueryStats, TimeRange, TrackSlice};
pub use segment::{RecordKind, RecordSummary, FORMAT_VERSION, MAGIC};
pub use sharded::{
    check_spill_root, check_tree_root, is_sharded_tree, open_shard_logs, prepare_spill_logs,
    shard_dir, shard_dirs, spill_layout, verify_sharded, ManifestStatus, ShardedVerifyReport,
    SpillLayout, SHARD_DIR_PREFIX,
};
pub use spill::{SpillFailure, SpillMetrics, SpillReport, SpillSink};
