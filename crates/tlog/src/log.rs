//! The append-only segmented trajectory log.
//!
//! A log is a directory of segment files (`seg-000001.tlg`, …). Appends
//! go to the highest-numbered segment and roll over to a fresh one when
//! the configured size is exceeded; nothing is ever overwritten in place,
//! so the only write hazard is a torn tail — which [`TrajectoryLog::open`]
//! repairs by truncating the last incomplete frame (CRC-verified, so a
//! half-written record can never be mistaken for data).
//!
//! Every record carries its own summary (track, count, time span,
//! bounding box); opening a log rebuilds the in-memory per-track sparse
//! time index from a header scan without decoding any payload. Tracks are
//! deleted logically with tombstone records; [`TrajectoryLog::compact`]
//! rewrites the live records into fresh segments and physically drops
//! dead data, copying frames verbatim so CRCs never need recomputing.

use crate::codec::CodecError;
use crate::crc::crc32;
use crate::error::TlogError;
use crate::segment::{self, RecordKind, RecordSummary, ScanOutcome, SEGMENT_HEADER_LEN};
use bqs_core::fleet::TrackId;
use bqs_geo::TimedPoint;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Log tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogConfig {
    /// Segment rollover threshold in bytes. A single record larger than
    /// this still fits (a segment always accepts at least one record).
    pub segment_max_bytes: u64,
    /// `fdatasync` after every append. Off by default: the tail is
    /// CRC-framed, so a lost suffix is detected and truncated on reopen.
    pub fsync: bool,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            // Small enough that compaction and index scans stay nimble,
            // large enough that a fleet's flush batches amortise headers.
            segment_max_bytes: 4 << 20,
            fsync: false,
        }
    }
}

/// What [`TrajectoryLog::open`] found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files scanned.
    pub segments: usize,
    /// Valid records across all segments.
    pub records: usize,
    /// Segments whose tail had to be truncated.
    pub truncated_segments: usize,
    /// Bytes dropped by tail truncation.
    pub truncated_bytes: u64,
}

/// Where an append landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Sequence number of the segment written to.
    pub segment: u64,
    /// Frame offset within the segment file.
    pub offset: u64,
    /// Frame size in bytes (prologue + body).
    pub bytes: u64,
    /// Points encoded.
    pub points: u64,
}

/// Outcome of a compaction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Segment files before/after.
    pub segments_before: usize,
    /// Segment files after.
    pub segments_after: usize,
    /// Total file bytes before.
    pub bytes_before: u64,
    /// Total file bytes after.
    pub bytes_after: u64,
    /// Records (data + tombstones) physically dropped.
    pub records_dropped: usize,
}

/// Aggregate size/occupancy counters for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogFootprint {
    /// Segment files.
    pub segments: usize,
    /// Records across all segments (live and dead, incl. tombstones).
    pub records: usize,
    /// Live data records (reachable through the index).
    pub live_records: usize,
    /// Points in live records.
    pub live_points: u64,
    /// Total file bytes.
    pub bytes: u64,
}

/// Header-scan summary of one track's live records — counts, time span
/// and bounding box, never decoded payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackSummary {
    /// The track.
    pub track: TrackId,
    /// Live records holding the track.
    pub records: usize,
    /// Points across those records.
    pub points: u64,
    /// Earliest timestamp.
    pub t_min: f64,
    /// Latest timestamp.
    pub t_max: f64,
    /// Union of the records' bounding boxes; `None` only for a track
    /// with no records (which the index never stores).
    pub bbox: Option<bqs_geo::Rect>,
}

#[derive(Debug)]
struct SegmentInfo {
    seq: u64,
    path: PathBuf,
    len: u64,
    records: Vec<RecordSummary>,
}

/// The durable, queryable trajectory log. See the module docs.
#[derive(Debug)]
pub struct TrajectoryLog {
    dir: PathBuf,
    config: LogConfig,
    segments: Vec<SegmentInfo>,
    /// Append handle on the tail segment; `None` for a log opened with
    /// [`TrajectoryLog::open_read_only`] (write operations then fail
    /// with [`TlogError::ReadOnly`]).
    writer: Option<File>,
    /// Held for the log's lifetime: an OS advisory lock on `LOCK` in the
    /// directory, released automatically even if the process dies. One
    /// process owns a log at a time — a second writable `open` fails
    /// fast instead of interleaving appends or compacting files out
    /// from under a writer. Read-only opens take no lock.
    _lock: Option<File>,
    /// Per-track sparse time index: live records in append order, as
    /// `(segment index, record index)` into `segments`.
    index: BTreeMap<TrackId, Vec<(usize, usize)>>,
}

fn segment_file_name(seq: u64) -> String {
    format!("seg-{seq:06}.tlg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".tlg")?;
    rest.parse().ok()
}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> TlogError {
    let context = context.into();
    move |e| TlogError::io(context, e)
}

fn create_segment(dir: &Path, seq: u64) -> Result<(PathBuf, File), TlogError> {
    let path = dir.join(segment_file_name(seq));
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)
        .map_err(io_err(format!("create {}", path.display())))?;
    file.write_all(&segment::segment_header())
        .map_err(io_err(format!("write header {}", path.display())))?;
    Ok((path, file))
}

impl TrajectoryLog {
    /// Opens (or creates) the log at `dir`, repairing any torn tail and
    /// rebuilding the index from the record headers.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: LogConfig,
    ) -> Result<(TrajectoryLog, RecoveryReport), TlogError> {
        TrajectoryLog::open_inner(dir.into(), config, false)
    }

    /// Opens an *existing* log at `dir` for reading only: no advisory
    /// lock is taken, nothing on disk is created or repaired, and every
    /// write operation fails with [`TlogError::ReadOnly`].
    ///
    /// This is the concurrent read path: segments are append-only, so a
    /// lock-free scan taken while a writer is live sees a consistent
    /// prefix of the log — at worst the writer's in-flight tail frame,
    /// which the CRC scan ignores exactly like crash recovery would
    /// (the ignored bytes are counted in the [`RecoveryReport`], but
    /// the file is left untouched). `bqs-tlog`'s `QueryEngine` opens
    /// every log this way.
    pub fn open_read_only(
        dir: impl Into<PathBuf>,
        config: LogConfig,
    ) -> Result<(TrajectoryLog, RecoveryReport), TlogError> {
        TrajectoryLog::open_inner(dir.into(), config, true)
    }

    fn open_inner(
        dir: PathBuf,
        config: LogConfig,
        read_only: bool,
    ) -> Result<(TrajectoryLog, RecoveryReport), TlogError> {
        let lock = if read_only {
            None
        } else {
            fs::create_dir_all(&dir).map_err(io_err(format!("create dir {}", dir.display())))?;
            let lock_path = dir.join("LOCK");
            let lock = OpenOptions::new()
                .create(true)
                .truncate(false)
                .write(true)
                .open(&lock_path)
                .map_err(io_err(format!("open {}", lock_path.display())))?;
            lock.try_lock().map_err(|e| TlogError::Locked {
                dir: dir.clone(),
                reason: e.to_string(),
            })?;
            Some(lock)
        };

        let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(io_err(format!("read dir {}", dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(io_err("read dir entry"))?;
            if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
                seqs.push((seq, entry.path()));
            }
        }
        seqs.sort_unstable_by_key(|(seq, _)| *seq);

        let mut report = RecoveryReport::default();
        let mut segments = Vec::with_capacity(seqs.len());
        for (seq, path) in seqs {
            let bytes = fs::read(&path).map_err(io_err(format!("read {}", path.display())))?;
            let ScanOutcome {
                records,
                valid_len,
                fault,
            } = segment::scan_segment(&bytes);
            if let Some((offset, fault)) = fault {
                // A header that never finished writing means the segment
                // holds nothing; re-initialise it. A *wrong* header on a
                // non-empty file is not a torn tail — refuse to guess.
                if offset == 0 && bytes.len() >= SEGMENT_HEADER_LEN as usize {
                    return Err(TlogError::Corrupt {
                        path,
                        offset,
                        reason: fault.to_string(),
                    });
                }
                if !read_only {
                    let file = OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(io_err(format!("open for repair {}", path.display())))?;
                    file.set_len(valid_len)
                        .map_err(io_err(format!("truncate {}", path.display())))?;
                    if valid_len == 0 {
                        let mut file = file;
                        file.write_all(&segment::segment_header())
                            .map_err(io_err(format!("rewrite header {}", path.display())))?;
                    }
                }
                // Read-only: the torn tail is *ignored*, not repaired;
                // the report still counts it so callers can see it.
                report.truncated_segments += 1;
                report.truncated_bytes += bytes.len() as u64 - valid_len;
            }
            report.records += records.len();
            segments.push(SegmentInfo {
                seq,
                path,
                len: valid_len.max(SEGMENT_HEADER_LEN),
                records,
            });
        }

        if segments.is_empty() && !read_only {
            let (path, _) = create_segment(&dir, 1)?;
            segments.push(SegmentInfo {
                seq: 1,
                path,
                len: SEGMENT_HEADER_LEN,
                records: Vec::new(),
            });
        }
        report.segments = segments.len();

        let writer = if read_only {
            None
        } else {
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: at least one segment
            let last = segments.last().expect("at least one segment");
            Some(
                OpenOptions::new()
                    .append(true)
                    .open(&last.path)
                    .map_err(io_err(format!("open for append {}", last.path.display())))?,
            )
        };

        let mut log = TrajectoryLog {
            dir,
            config,
            segments,
            writer,
            _lock: lock,
            index: BTreeMap::new(),
        };
        log.rebuild_index();
        Ok((log, report))
    }

    /// `true` when the log was opened with
    /// [`TrajectoryLog::open_read_only`].
    pub fn read_only(&self) -> bool {
        self.writer.is_none()
    }

    fn rebuild_index(&mut self) {
        self.index.clear();
        for (si, seg) in self.segments.iter().enumerate() {
            for (ri, rec) in seg.records.iter().enumerate() {
                match rec.kind {
                    RecordKind::Points | RecordKind::Backfill => {
                        self.index.entry(rec.track).or_default().push((si, ri));
                    }
                    RecordKind::Tombstone => {
                        self.index.remove(&rec.track);
                    }
                }
            }
        }
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration in use.
    pub fn config(&self) -> &LogConfig {
        &self.config
    }

    /// Live tracks, ascending.
    pub fn tracks(&self) -> Vec<TrackId> {
        self.index.keys().copied().collect()
    }

    /// Per-track summaries (record/point counts, time span, bounding
    /// box) folded from the index's record headers — no payload is
    /// decoded. Ascending by track; the raw material of a spill tree's
    /// `MANIFEST`.
    pub fn track_summaries(&self) -> Vec<TrackSummary> {
        self.index
            .iter()
            .map(|(&track, refs)| {
                let mut summary = TrackSummary {
                    track,
                    records: refs.len(),
                    points: 0,
                    t_min: f64::INFINITY,
                    t_max: f64::NEG_INFINITY,
                    bbox: None,
                };
                for &(si, ri) in refs {
                    let rec = &self.segments[si].records[ri];
                    summary.points += rec.count;
                    summary.t_min = summary.t_min.min(rec.t_min);
                    summary.t_max = summary.t_max.max(rec.t_max);
                    summary.bbox = Some(match summary.bbox {
                        Some(b) => b.union(&rec.bbox),
                        None => rec.bbox,
                    });
                }
                summary
            })
            .collect()
    }

    /// The live time span `[t_min, t_max]` of one track, from record
    /// headers alone; `None` for unknown or deleted tracks.
    pub fn track_time_span(&self, track: TrackId) -> Option<(f64, f64)> {
        let refs = self.track_records(track);
        // A min/max fold rather than a first/last shortcut: backfill
        // records break the cross-record time ordering.
        refs.iter()
            .map(|&(si, ri)| {
                let rec = &self.segments[si].records[ri];
                (rec.t_min, rec.t_max)
            })
            .reduce(|(lo, hi), (t_min, t_max)| (lo.min(t_min), hi.max(t_max)))
    }

    /// Whether any of `track`'s live records came through the backfill
    /// path — when true, reads must merge instead of concatenating.
    pub(crate) fn track_has_backfill(&self, track: TrackId) -> bool {
        self.track_records(track)
            .iter()
            .any(|&(si, ri)| self.segments[si].records[ri].kind == RecordKind::Backfill)
    }

    /// Live records of one track, in append order.
    pub(crate) fn track_records(&self, track: TrackId) -> &[(usize, usize)] {
        self.index.get(&track).map_or(&[], Vec::as_slice)
    }

    pub(crate) fn record_summary(&self, si: usize, ri: usize) -> &RecordSummary {
        &self.segments[si].records[ri]
    }

    /// Size and occupancy counters.
    pub fn footprint(&self) -> LogFootprint {
        let mut fp = LogFootprint {
            segments: self.segments.len(),
            bytes: self.segments.iter().map(|s| s.len).sum(),
            records: self.segments.iter().map(|s| s.records.len()).sum(),
            ..LogFootprint::default()
        };
        for refs in self.index.values() {
            fp.live_records += refs.len();
            fp.live_points += refs
                .iter()
                .map(|&(si, ri)| self.segments[si].records[ri].count)
                .sum::<u64>();
        }
        fp
    }

    /// Appends one time-ordered batch of `track`'s points. Batches of the
    /// same track must not move backwards in time relative to what the
    /// log already holds — the index and reconstruction rely on it.
    pub fn append(
        &mut self,
        track: TrackId,
        points: &[TimedPoint],
    ) -> Result<AppendReceipt, TlogError> {
        if points.is_empty() {
            return Err(TlogError::EmptyAppend);
        }
        // The watermark is the last *in-order* record's end: backfill
        // records are exempt from cross-record ordering and must not
        // drag the live stream's gate around.
        let prev_max = self
            .track_records(track)
            .iter()
            .rev()
            .map(|&(si, ri)| &self.segments[si].records[ri])
            .find(|rec| rec.kind != RecordKind::Backfill)
            .map(|rec| rec.t_max);
        if let Some(prev_max) = prev_max {
            if points[0].t < prev_max {
                return Err(TlogError::Codec(CodecError::NonMonotonicTimestamps {
                    index: 0,
                    prev: prev_max,
                    next: points[0].t,
                }));
            }
        }
        let (frame, summary) = segment::build_points_frame(track, points)?;
        let (si, ri, offset) = self.write_frame(&frame, summary)?;
        self.index.entry(track).or_default().push((si, ri));
        Ok(AppendReceipt {
            segment: self.segments[si].seq,
            offset,
            bytes: frame.len() as u64,
            points: points.len() as u64,
        })
    }

    /// Appends one batch of `track`'s points through the backfill path:
    /// the batch must be time-ordered *within itself* (the codec rejects
    /// disorder) but may lie arbitrarily far behind — or overlap — what
    /// the log already holds. Reads merge backfill points into the live
    /// stream, the in-order copy winning exact-timestamp ties.
    pub fn append_backfill(
        &mut self,
        track: TrackId,
        points: &[TimedPoint],
    ) -> Result<AppendReceipt, TlogError> {
        if points.is_empty() {
            return Err(TlogError::EmptyAppend);
        }
        let (frame, summary) = segment::build_backfill_frame(track, points)?;
        let (si, ri, offset) = self.write_frame(&frame, summary)?;
        self.index.entry(track).or_default().push((si, ri));
        Ok(AppendReceipt {
            segment: self.segments[si].seq,
            offset,
            bytes: frame.len() as u64,
            points: points.len() as u64,
        })
    }

    /// Logically deletes a track by appending a tombstone. Returns `true`
    /// when the track had live data. Space is reclaimed by
    /// [`TrajectoryLog::compact`].
    pub fn delete_track(&mut self, track: TrackId) -> Result<bool, TlogError> {
        if !self.index.contains_key(&track) {
            return Ok(false);
        }
        let (frame, summary) = segment::build_tombstone_frame(track);
        self.write_frame(&frame, summary)?;
        self.index.remove(&track);
        Ok(true)
    }

    /// Writes a prepared frame to the tail segment, rotating first when
    /// the rollover threshold would be crossed. Returns the record's
    /// `(segment index, record index, offset)`.
    fn write_frame(
        &mut self,
        frame: &[u8],
        mut summary: RecordSummary,
    ) -> Result<(usize, usize, u64), TlogError> {
        // An oversized body would be written fine but classified as a
        // torn tail by the reopen scanner (its length prefix fails the
        // sanity bound) — reject it up front instead of acknowledging a
        // record that recovery would destroy.
        let body_len = frame.len() as u64 - segment::FRAME_PROLOGUE_LEN;
        if body_len > u64::from(segment::MAX_BODY_LEN) {
            return Err(TlogError::RecordTooLarge {
                bytes: body_len,
                max: u64::from(segment::MAX_BODY_LEN),
            });
        }
        if self.writer.is_none() {
            return Err(TlogError::ReadOnly {
                dir: self.dir.clone(),
            });
        }
        let needs_rotation = {
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: at least one segment
            let last = self.segments.last().expect("at least one segment");
            !last.records.is_empty()
                && last.len + frame.len() as u64 > self.config.segment_max_bytes
        };
        if needs_rotation {
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: non-empty
            let next_seq = self.segments.last().expect("non-empty").seq + 1;
            let (path, file) = create_segment(&self.dir, next_seq)?;
            self.writer = Some(file);
            self.segments.push(SegmentInfo {
                seq: next_seq,
                path,
                len: SEGMENT_HEADER_LEN,
                records: Vec::new(),
            });
        }
        let si = self.segments.len() - 1;
        let last = &mut self.segments[si];
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: checked writable above
        let writer = self.writer.as_mut().expect("checked writable above");
        let write_result = writer
            .write_all(frame)
            .map_err(io_err(format!("append to {}", last.path.display())))
            .and_then(|()| {
                if self.config.fsync {
                    writer
                        .sync_data()
                        .map_err(io_err(format!("sync {}", last.path.display())))
                } else {
                    Ok(())
                }
            });
        if let Err(e) = write_result {
            // Roll the file back to the last known-good length so torn
            // bytes cannot interleave with a later retry's frame; if even
            // the rollback fails, reopen-time recovery still truncates
            // the (CRC-invalid) tail.
            let _ = writer.set_len(last.len);
            return Err(e);
        }
        let offset = last.len;
        summary.offset = offset;
        last.len += frame.len() as u64;
        last.records.push(summary);
        Ok((si, last.records.len() - 1, offset))
    }

    /// A reader that keeps at most one segment file open and reuses the
    /// handle across consecutive reads — queries, track reads and
    /// compaction touch many records per segment, and per-record
    /// `open`/`seek` syscalls would dominate otherwise.
    pub(crate) fn reader(&self) -> RecordReader<'_> {
        RecordReader {
            log: self,
            current: None,
        }
    }

    /// All live points of `track` in time order: the in-order records
    /// concatenated, with any backfill records merged in (the in-order
    /// copy winning exact-timestamp ties). Empty for unknown or deleted
    /// tracks.
    pub fn read_track(&self, track: TrackId) -> Result<Vec<TimedPoint>, TlogError> {
        let refs = self.track_records(track).to_vec();
        let mut live = Vec::with_capacity(
            refs.iter()
                .map(|&(si, ri)| self.record_summary(si, ri).count as usize)
                .sum(),
        );
        let mut backfill = Vec::new();
        let mut reader = self.reader();
        for (si, ri) in refs {
            let dst = if self.record_summary(si, ri).kind == RecordKind::Backfill {
                &mut backfill
            } else {
                &mut live
            };
            dst.extend(reader.read_points(si, ri)?);
        }
        Ok(merge_live_backfill(live, backfill))
    }

    /// Rewrites live records into fresh segments, physically dropping
    /// deleted tracks' data and all tombstones. Frames are copied
    /// verbatim (CRCs preserved). Not crash-atomic: a crash between the
    /// final renames and the old-file deletions can leave both copies on
    /// disk (see `docs/format.md`); all other windows are safe.
    pub fn compact(&mut self) -> Result<CompactReport, TlogError> {
        if self.writer.is_none() {
            return Err(TlogError::ReadOnly {
                dir: self.dir.clone(),
            });
        }
        let before = self.footprint();
        let live: std::collections::BTreeSet<(usize, usize)> = self
            .index
            .values()
            .flat_map(|refs| refs.iter().copied())
            .collect();

        // Stream live frames in (segment, record) order into staged
        // `.tmp` files, holding at most one segment image in memory.
        let stage = |dir: &Path, seq: u64, bytes: &[u8]| -> Result<(PathBuf, PathBuf), TlogError> {
            let final_path = dir.join(segment_file_name(seq));
            let tmp_path = dir.join(format!("{}.tmp", segment_file_name(seq)));
            let mut f = File::create(&tmp_path)
                .map_err(io_err(format!("create {}", tmp_path.display())))?;
            f.write_all(bytes)
                .map_err(io_err(format!("write {}", tmp_path.display())))?;
            f.sync_data()
                .map_err(io_err(format!("sync {}", tmp_path.display())))?;
            Ok((tmp_path, final_path))
        };
        let mut staged: Vec<(PathBuf, PathBuf)> = Vec::new();
        let mut current: Vec<u8> = segment::segment_header().to_vec();
        let mut current_records = 0usize;
        let mut seq = self.segments.last().map_or(1, |s| s.seq + 1);
        let mut reader = self.reader();
        for &(si, ri) in &live {
            let frame = reader.read_frame(si, ri)?;
            if current_records > 0
                && current.len() as u64 + frame.len() as u64 > self.config.segment_max_bytes
            {
                staged.push(stage(&self.dir, seq, &current)?);
                current.truncate(SEGMENT_HEADER_LEN as usize);
                seq += 1;
                current_records = 0;
            }
            current.extend_from_slice(&frame);
            current_records += 1;
        }
        if current_records > 0 {
            staged.push(stage(&self.dir, seq, &current)?);
        }
        drop(reader);

        // Publish the new generation, then drop the old one.
        for (tmp, final_path) in &staged {
            fs::rename(tmp, final_path).map_err(io_err(format!("rename {}", tmp.display())))?;
        }
        for seg in &self.segments {
            fs::remove_file(&seg.path).map_err(io_err(format!("remove {}", seg.path.display())))?;
        }

        // Reload from disk: revalidates the new generation end to end.
        let dir = self.dir.clone();
        let config = self.config;
        // Release our advisory lock first: the reopen takes its own (a
        // second fd on the same LOCK file would conflict).
        if let Some(lock) = &self._lock {
            let _ = lock.unlock();
        }
        let (fresh, _) = TrajectoryLog::open(dir, config)?;
        *self = fresh;

        let after = self.footprint();
        Ok(CompactReport {
            segments_before: before.segments,
            segments_after: after.segments,
            bytes_before: before.bytes,
            bytes_after: after.bytes,
            records_dropped: before.records - after.records,
        })
    }
}

/// Merges a track's backfill points into its in-order live stream.
///
/// `live` is time-ordered (the in-order records' concatenation);
/// `backfill` is each record sorted but their concatenation possibly
/// not, so it is stable-sorted first. On an exact timestamp collision
/// the live copy wins and the backfill point is dropped — the
/// "durable-wins" rule viewed from inside one log: data that passed the
/// ordered ingest gate outranks a late retransmission of the same fix.
pub(crate) fn merge_live_backfill(
    live: Vec<TimedPoint>,
    mut backfill: Vec<TimedPoint>,
) -> Vec<TimedPoint> {
    if backfill.is_empty() {
        return live;
    }
    backfill.sort_by(|a, b| a.t.total_cmp(&b.t));
    let mut out = Vec::with_capacity(live.len() + backfill.len());
    let mut li = 0;
    let mut bi = 0;
    while li < live.len() && bi < backfill.len() {
        let lt = live[li].t;
        let bt = backfill[bi].t;
        if bt < lt {
            out.push(backfill[bi]);
            bi += 1;
        } else if bt == lt {
            // Duplicate timestamp: the in-order copy wins.
            bi += 1;
        } else {
            out.push(live[li]);
            li += 1;
        }
    }
    out.extend_from_slice(&live[li..]);
    out.extend_from_slice(&backfill[bi..]);
    out
}

/// Reads records through a cached per-segment file handle: consecutive
/// reads from the same segment reuse one open file instead of paying an
/// `open`/`seek` pair per record.
pub(crate) struct RecordReader<'a> {
    log: &'a TrajectoryLog,
    current: Option<(usize, File)>,
}

impl RecordReader<'_> {
    fn file_for(&mut self, si: usize) -> Result<&mut File, TlogError> {
        if self.current.as_ref().map(|(s, _)| *s) != Some(si) {
            let path = &self.log.segments[si].path;
            let file = File::open(path).map_err(io_err(format!("open {}", path.display())))?;
            self.current = Some((si, file));
        }
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: just set
        Ok(&mut self.current.as_mut().expect("just set").1)
    }

    /// Reads one record's raw frame (prologue + body) verbatim.
    pub(crate) fn read_frame(&mut self, si: usize, ri: usize) -> Result<Vec<u8>, TlogError> {
        let rec = *self.log.record_summary(si, ri);
        let context = format!("read {}", self.log.segments[si].path.display());
        let file = self.file_for(si)?;
        file.seek(SeekFrom::Start(rec.offset))
            .map_err(io_err(context.clone()))?;
        let mut frame = vec![0u8; rec.frame_len as usize];
        file.read_exact(&mut frame).map_err(io_err(context))?;
        Ok(frame)
    }

    /// Reads and CRC-checks one record's body.
    pub(crate) fn read_body(&mut self, si: usize, ri: usize) -> Result<Vec<u8>, TlogError> {
        let mut frame = self.read_frame(si, ri)?;
        // bqs-analyze: allow(no-unwrap-in-lib) — the slice is exactly 4 bytes by the index arithmetic
        let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        let body = frame.split_off(8);
        if crc32(&body) != crc {
            let rec = self.log.record_summary(si, ri);
            return Err(TlogError::Corrupt {
                path: self.log.segments[si].path.clone(),
                offset: rec.offset,
                reason: "CRC mismatch on read-back".to_string(),
            });
        }
        Ok(body)
    }

    /// Decodes one live record into points.
    pub(crate) fn read_points(
        &mut self,
        si: usize,
        ri: usize,
    ) -> Result<Vec<TimedPoint>, TlogError> {
        let body = self.read_body(si, ri)?;
        let (_track, points) = segment::decode_points_body(&body)?;
        Ok(points)
    }
}

/// What a strict full-scan verification found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Segment files checked.
    pub segments: usize,
    /// Data records decoded and validated (backfill included).
    pub records: usize,
    /// Of those, records written through the backfill path.
    pub backfill_records: usize,
    /// Tombstones seen.
    pub tombstones: usize,
    /// Points decoded across all data records.
    pub points: u64,
    /// Total file bytes.
    pub file_bytes: u64,
    /// Codec payload bytes (excluding frame and summary overhead).
    pub payload_bytes: u64,
}

impl VerifyReport {
    /// Whole-file bytes per stored point (framing included).
    pub fn file_bytes_per_point(&self) -> f64 {
        self.file_bytes as f64 / (self.points.max(1)) as f64
    }
}

/// Strictly verifies every segment in `dir` without repairing anything:
/// CRC-checks and fully decodes every record, re-validating counts,
/// timestamp monotonicity and the indexed summaries. Any fault — torn
/// tail included — is an error here, where `open` would repair it.
pub fn verify_dir(dir: impl AsRef<Path>) -> Result<VerifyReport, TlogError> {
    let dir = dir.as_ref();
    let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(io_err(format!("read dir {}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(io_err("read dir entry"))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            seqs.push((seq, entry.path()));
        }
    }
    seqs.sort_unstable_by_key(|(seq, _)| *seq);

    let mut report = VerifyReport::default();
    for (_, path) in seqs {
        let bytes = fs::read(&path).map_err(io_err(format!("read {}", path.display())))?;
        let scan = segment::scan_segment(&bytes);
        if let Some((offset, fault)) = scan.fault {
            return Err(TlogError::Corrupt {
                path,
                offset,
                reason: fault.to_string(),
            });
        }
        report.segments += 1;
        report.file_bytes += bytes.len() as u64;
        for rec in &scan.records {
            let body = &bytes[(rec.offset + segment::FRAME_PROLOGUE_LEN) as usize
                ..(rec.offset + rec.frame_len) as usize];
            match rec.kind {
                RecordKind::Tombstone => report.tombstones += 1,
                RecordKind::Points | RecordKind::Backfill => {
                    let (_, points) =
                        segment::decode_points_body(body).map_err(|e| TlogError::Corrupt {
                            path: path.clone(),
                            offset: rec.offset,
                            reason: e.to_string(),
                        })?;
                    let corrupt = |reason: &str| TlogError::Corrupt {
                        path: path.clone(),
                        offset: rec.offset,
                        reason: reason.to_string(),
                    };
                    let (Some(first), Some(last)) = (points.first(), points.last()) else {
                        return Err(corrupt("empty data record"));
                    };
                    if first.t != rec.t_min || last.t != rec.t_max {
                        return Err(corrupt("summary time span disagrees with payload"));
                    }
                    if points.windows(2).any(|w| w[1].t < w[0].t) {
                        return Err(corrupt("timestamps not monotone"));
                    }
                    if points
                        .iter()
                        .any(|p| p.pos.is_finite() && !rec.bbox.contains(p.pos))
                    {
                        return Err(corrupt("bounding box does not cover payload"));
                    }
                    report.records += 1;
                    if rec.kind == RecordKind::Backfill {
                        report.backfill_records += 1;
                    }
                    report.points += points.len() as u64;
                    // Payload = body minus kind, varints and the summary.
                    if let Ok(segment::RecordBody::Points { payload, .. }) =
                        segment::parse_body(body)
                    {
                        report.payload_bytes += payload.len() as u64;
                    }
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeRange;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bqs-tlog-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn walk(track: u64, n: usize, t0: f64) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(
                    a * 4.0 + track as f64 * 100.0,
                    (a * 0.2).sin() * 30.0,
                    t0 + a * 5.0,
                )
            })
            .collect()
    }

    #[test]
    fn append_read_reopen_round_trip() {
        let dir = temp_dir("round-trip");
        let (mut log, rep) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(rep.records, 0);
        let a = walk(1, 100, 0.0);
        let b = walk(2, 50, 10.0);
        log.append(1, &a).unwrap();
        log.append(2, &b).unwrap();
        assert_eq!(log.tracks(), vec![1, 2]);
        assert_eq!(log.read_track(1).unwrap(), a);
        assert_eq!(log.read_track(2).unwrap(), b);

        drop(log);
        let (log, rep) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(rep.records, 2);
        assert_eq!(rep.truncated_segments, 0);
        assert_eq!(log.read_track(1).unwrap(), a);
        assert_eq!(log.read_track(2).unwrap(), b);
    }

    #[test]
    fn multi_batch_tracks_concatenate_in_order() {
        let dir = temp_dir("multi-batch");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let first = walk(5, 40, 0.0);
        let second = walk(5, 40, 1_000.0);
        log.append(5, &first).unwrap();
        log.append(5, &second).unwrap();
        let all = log.read_track(5).unwrap();
        assert_eq!(all.len(), 80);
        assert_eq!(&all[..40], &first[..]);
        assert_eq!(&all[40..], &second[..]);
    }

    #[test]
    fn backwards_batches_are_rejected() {
        let dir = temp_dir("backwards");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        log.append(1, &walk(1, 10, 500.0)).unwrap();
        let err = log.append(1, &walk(1, 10, 0.0)).unwrap_err();
        assert!(matches!(
            err,
            TlogError::Codec(CodecError::NonMonotonicTimestamps { .. })
        ));
        assert!(matches!(
            log.append(1, &[]).unwrap_err(),
            TlogError::EmptyAppend
        ));
    }

    #[test]
    fn segments_rotate_at_the_size_threshold() {
        let dir = temp_dir("rotate");
        let config = LogConfig {
            segment_max_bytes: 2_000,
            ..LogConfig::default()
        };
        let (mut log, _) = TrajectoryLog::open(&dir, config).unwrap();
        let mut t0 = 0.0;
        for _ in 0..20 {
            log.append(7, &walk(7, 50, t0)).unwrap();
            t0 += 10_000.0;
        }
        let fp = log.footprint();
        assert!(fp.segments > 1, "expected rotation, got {fp:?}");
        assert_eq!(fp.live_points, 20 * 50);
        // Everything still reads back in order across segments.
        let all = log.read_track(7).unwrap();
        assert_eq!(all.len(), 1_000);
        assert!(all.windows(2).all(|w| w[1].t >= w[0].t));
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen_preserving_full_records() {
        let dir = temp_dir("torn");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let a = walk(1, 60, 0.0);
        let b = walk(2, 60, 0.0);
        log.append(1, &a).unwrap();
        let receipt = log.append(2, &b).unwrap();
        let path = log.segments.last().unwrap().path.clone();
        drop(log);

        // Tear the final record in half.
        let bytes = fs::read(&path).unwrap();
        let cut = receipt.offset + receipt.bytes / 2;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        assert!(fs::metadata(&path).unwrap().len() < bytes.len() as u64);

        let (log, rep) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(rep.truncated_segments, 1);
        assert!(rep.truncated_bytes > 0);
        assert_eq!(log.read_track(1).unwrap(), a);
        assert!(log.read_track(2).unwrap().is_empty());
        // The repaired log verifies clean.
        verify_dir(&dir).unwrap();
    }

    #[test]
    fn delete_and_compact_reclaim_space() {
        let dir = temp_dir("compact");
        let config = LogConfig {
            segment_max_bytes: 4_000,
            ..LogConfig::default()
        };
        let (mut log, _) = TrajectoryLog::open(&dir, config).unwrap();
        let keep = walk(1, 200, 0.0);
        log.append(1, &keep).unwrap();
        let mut t0 = 0.0;
        for _ in 0..10 {
            log.append(2, &walk(2, 200, t0)).unwrap();
            t0 += 10_000.0;
        }
        assert!(log.delete_track(2).unwrap());
        assert!(!log.delete_track(99).unwrap());

        let before = log.footprint();
        let report = log.compact().unwrap();
        assert!(report.bytes_after < report.bytes_before, "{report:?}");
        assert!(report.records_dropped >= 10, "{report:?}");
        let after = log.footprint();
        assert!(after.bytes < before.bytes);
        assert_eq!(log.tracks(), vec![1]);
        assert_eq!(log.read_track(1).unwrap(), keep);
        assert!(log.read_track(2).unwrap().is_empty());
        verify_dir(&dir).unwrap();

        // The compacted log is still appendable.
        log.append(3, &walk(3, 20, 0.0)).unwrap();
        assert_eq!(log.tracks(), vec![1, 3]);
    }

    #[test]
    fn verify_reports_corruption_strictly() {
        let dir = temp_dir("verify-corrupt");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        log.append(1, &walk(1, 80, 0.0)).unwrap();
        let path = log.segments.last().unwrap().path.clone();
        drop(log);

        let ok = verify_dir(&dir).unwrap();
        assert_eq!(ok.records, 1);
        assert_eq!(ok.points, 80);
        assert!(ok.file_bytes_per_point() > 0.0);

        // Flip a payload byte: verify must fail even though open would
        // only truncate.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 5;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = verify_dir(&dir).unwrap_err();
        assert!(matches!(err, TlogError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn read_only_open_reads_alongside_a_live_writer_without_touching_disk() {
        let dir = temp_dir("read-only");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let a = walk(1, 60, 0.0);
        log.append(1, &a).unwrap();

        // The writer's lock does not block a read-only open.
        let (ro, rep) = TrajectoryLog::open_read_only(&dir, LogConfig::default()).unwrap();
        assert!(ro.read_only());
        assert_eq!(rep.records, 1);
        assert_eq!(ro.read_track(1).unwrap(), a);
        assert_eq!(ro.track_time_span(1), Some((0.0, 295.0)));

        // Every write path is refused with a typed error.
        let mut ro = ro;
        assert!(matches!(
            ro.append(2, &a).unwrap_err(),
            TlogError::ReadOnly { .. }
        ));
        assert!(matches!(
            ro.delete_track(1).unwrap_err(),
            TlogError::ReadOnly { .. }
        ));
        assert!(matches!(
            ro.compact().unwrap_err(),
            TlogError::ReadOnly { .. }
        ));

        // The writer is still healthy and sees its own appends.
        let b = walk(1, 10, 10_000.0);
        log.append(1, &b).unwrap();
        assert_eq!(log.read_track(1).unwrap().len(), 70);
    }

    #[test]
    fn read_only_open_ignores_a_torn_tail_without_repairing_it() {
        let dir = temp_dir("read-only-torn");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let a = walk(1, 60, 0.0);
        log.append(1, &a).unwrap();
        let receipt = log.append(2, &walk(2, 60, 0.0)).unwrap();
        let path = log.segments.last().unwrap().path.clone();
        drop(log);

        let cut = receipt.offset + receipt.bytes / 2;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let (ro, rep) = TrajectoryLog::open_read_only(&dir, LogConfig::default()).unwrap();
        assert_eq!(rep.truncated_segments, 1);
        assert!(rep.truncated_bytes > 0);
        assert_eq!(ro.read_track(1).unwrap(), a);
        assert!(ro.read_track(2).unwrap().is_empty());
        // The file was *not* truncated: the torn bytes are still there
        // for the writer's own recovery to handle.
        assert_eq!(fs::metadata(&path).unwrap().len(), cut);
    }

    #[test]
    fn track_summaries_fold_record_headers() {
        let dir = temp_dir("summaries");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        log.append(1, &walk(1, 30, 0.0)).unwrap();
        log.append(1, &walk(1, 30, 1_000.0)).unwrap();
        log.append(2, &walk(2, 10, 50.0)).unwrap();
        let summaries = log.track_summaries();
        assert_eq!(summaries.len(), 2);
        let s1 = &summaries[0];
        assert_eq!((s1.track, s1.records, s1.points), (1, 2, 60));
        assert_eq!((s1.t_min, s1.t_max), (0.0, 1_145.0));
        let bbox = s1.bbox.unwrap();
        assert!(bbox.min.x <= 100.0 && bbox.max.x >= 216.0);
        assert_eq!(summaries[1].track, 2);
    }

    #[test]
    fn second_open_is_refused_while_locked() {
        let dir = temp_dir("locked");
        let (log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let err = TrajectoryLog::open(&dir, LogConfig::default()).unwrap_err();
        assert!(matches!(err, TlogError::Locked { .. }), "{err}");
        // Dropping the first owner releases the lock.
        drop(log);
        TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
    }

    #[test]
    fn backfill_appends_merge_into_reads_with_live_winning_ties() {
        let dir = temp_dir("backfill-merge");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let live = walk(1, 20, 1_000.0); // t ∈ [1000, 1095]
        log.append(1, &live).unwrap();

        // Backfill a batch older than everything, plus one exact
        // duplicate timestamp that must lose to the live copy.
        let old = walk(1, 5, 0.0); // t ∈ [0, 20]
        log.append_backfill(1, &old).unwrap();
        let dup = [TimedPoint::new(-1.0, -1.0, 1_000.0)];
        log.append_backfill(1, &dup).unwrap();

        // The live watermark is the last *in-order* record's end (1095),
        // not the backfill record's t_max: live appends continue fine…
        let more = walk(1, 5, 2_000.0); // t ∈ [2000, 2020]
        log.append(1, &more).unwrap();
        // …and a live batch behind the live watermark is still refused.
        assert!(matches!(
            log.append(1, &walk(1, 3, 1_500.0)).unwrap_err(),
            TlogError::Codec(CodecError::NonMonotonicTimestamps { .. })
        ));
        // Backfill batches must themselves be sorted.
        let unsorted = [
            TimedPoint::new(0.0, 0.0, 10.0),
            TimedPoint::new(0.0, 0.0, 5.0),
        ];
        assert!(log.append_backfill(1, &unsorted).is_err());
        assert!(matches!(
            log.append_backfill(1, &[]).unwrap_err(),
            TlogError::EmptyAppend
        ));

        let mut want = old.clone();
        want.extend_from_slice(&live);
        want.extend_from_slice(&more);
        let all = log.read_track(1).unwrap();
        assert_eq!(all, want, "duplicate dropped, rest merged in order");
        assert!(all.windows(2).all(|w| w[1].t >= w[0].t));
        assert_eq!(log.track_time_span(1), Some((0.0, 2_020.0)));

        // Queries take the merged path and filter exactly.
        let out = log
            .query_time_range(Some(1), TimeRange::new(0.0, 1_010.0))
            .unwrap();
        assert_eq!(out.slices.len(), 1);
        let expect: Vec<TimedPoint> = want.iter().copied().filter(|p| p.t <= 1_010.0).collect();
        assert_eq!(out.slices[0].points, expect);
        assert_eq!(
            out.stats.decoded_records, out.stats.candidate_records,
            "backfilled tracks bypass record pruning"
        );

        // Strict verification understands (and counts) backfill records.
        drop(log);
        let report = verify_dir(&dir).unwrap();
        assert_eq!(report.backfill_records, 2);
        assert_eq!(report.records, 4);

        // Reopen rebuilds the same merged view; compaction preserves
        // backfill records verbatim.
        let (mut log, rep) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(rep.records, 4);
        assert_eq!(log.read_track(1).unwrap(), want);
        log.compact().unwrap();
        assert_eq!(log.read_track(1).unwrap(), want);
        let report = verify_dir(&dir).unwrap();
        assert_eq!(report.backfill_records, 2);
    }

    #[test]
    fn fsync_mode_appends_fine() {
        let dir = temp_dir("fsync");
        let config = LogConfig {
            fsync: true,
            ..LogConfig::default()
        };
        let (mut log, _) = TrajectoryLog::open(&dir, config).unwrap();
        log.append(1, &walk(1, 10, 0.0)).unwrap();
        assert_eq!(log.read_track(1).unwrap().len(), 10);
    }
}
