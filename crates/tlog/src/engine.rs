//! The unified hot/cold query engine: one read path over everything the
//! system knows about a fleet's trajectories, at any moment, for any
//! worker count.
//!
//! A fleet's data lives in up to three places at once:
//!
//! 1. **cold, sharded** — records in the `shard-<k>/` spill tree (or a
//!    flat log) that evicted/finished sessions already made durable;
//! 2. **hot, emitted** — kept points of *open* sessions, buffered in the
//!    spill sink until the session closes;
//! 3. **hot, in-flight** — the tail a live compressor would emit if the
//!    session closed now.
//!
//! [`QueryEngine`] answers time-range and bounding-box queries over all
//! three. Cold shards are opened **read-only** (no locks — safe next to
//! a live writer, see [`TrajectoryLog::open_read_only`]) and queried in
//! parallel threads, one per shard; the hot side arrives as a
//! [`FleetSnapshot`] taken from the live fleet
//! ([`bqs_core::fleet::ParallelFleet::snapshot`]).
//!
//! **Pruning.** A tree's [`Manifest`] (per shard: live track set, time
//! spans, bounding boxes) lets the engine skip — never even open —
//! shards that cannot contain the query. Pruning is observable
//! ([`UnifiedOutput::shards_pruned`], per-shard [`ShardQuery`]) and
//! sound: a pruned and an unpruned run return identical slices, which
//! `tests/query_unified.rs` enforces.
//!
//! **Merge rule.** Durable data wins on overlap: per track, hot points
//! are admitted only *after* the track's durable time span
//! (`t > durable t_max`), so a point that was both spilled and still
//! sitting in a stale snapshot is counted once, from disk. Take the
//! snapshot *before* constructing the engine (or before each query, on
//! a long-lived engine) and anything spilled in between is simply seen
//! cold instead of hot.
//!
//! **Liveness.** An engine may outlive many writer appends: every query
//! starts by re-checking each shard's on-disk fingerprint (segment
//! count + bytes) and drops stale cached logs and manifests, so a
//! long-lived engine never prunes away — or double-counts against its
//! snapshot — data spilled after it was opened.
//!
//! The consistency guarantee, proved end to end by the hot/cold
//! equivalence property test: *snapshot + cold query ≡ the query you
//! would get by closing every session, spilling, and querying the
//! resulting tree* — for arbitrary interleavings and any worker count.

use crate::error::TlogError;
use crate::log::{LogConfig, TrajectoryLog};
use crate::manifest::Manifest;
use crate::query::{QueryOutput, QueryStats, TimeRange, TrackSlice};
use crate::sharded::{is_sharded_tree, shard_dirs};
use bqs_core::fleet::{FleetSnapshot, TrackId};
use bqs_geo::{Rect, TimedPoint};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// What one cold shard contributed to a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardQuery {
    /// The shard index; `None` for a flat (unsharded) log.
    pub shard: Option<usize>,
    /// `true` when the manifest proved the shard irrelevant and it was
    /// never opened or scanned.
    pub skipped: bool,
    /// The shard's work counters (all zero when skipped).
    pub stats: QueryStats,
}

/// A unified query's matches plus where the work (and the savings) went.
#[derive(Debug, Clone, PartialEq)]
pub struct UnifiedOutput {
    /// Matching tracks (ascending id), hot and cold merged per track in
    /// time order.
    pub slices: Vec<TrackSlice>,
    /// Cold-side work counters folded across queried shards.
    pub stats: QueryStats,
    /// Per-shard breakdown, ascending by shard.
    pub shards: Vec<ShardQuery>,
    /// Shards skipped via the manifest without being opened.
    pub shards_pruned: usize,
    /// Matching points contributed by the live snapshot.
    pub hot_points: usize,
    /// Tracks with at least one hot matching point.
    pub hot_tracks: usize,
}

impl UnifiedOutput {
    /// Total matching points across all tracks, hot and cold.
    pub fn total_points(&self) -> usize {
        self.slices.iter().map(|s| s.points.len()).sum()
    }
}

/// One cold source: a shard (or flat) log, opened read-only on first
/// use, cached while its on-disk fingerprint is unchanged.
#[derive(Debug)]
struct ShardSlot {
    shard: Option<usize>,
    dir: PathBuf,
    log: Option<TrajectoryLog>,
    /// Segment count + byte total the cached `log` (and, for trees, the
    /// manifest entry) corresponds to; `None` until first observed.
    fingerprint: Option<(usize, u64)>,
}

impl ShardSlot {
    /// Opens the slot's log read-only if it is not open yet, then runs
    /// the query against it.
    fn query(
        &mut self,
        config: LogConfig,
        track: Option<TrackId>,
        range: TimeRange,
        area: Option<Rect>,
    ) -> Result<QueryOutput, TlogError> {
        if self.log.is_none() {
            let (log, _) = TrajectoryLog::open_read_only(&self.dir, config)?;
            self.log = Some(log);
        }
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: just opened
        let log = self.log.as_ref().expect("just opened");
        match area {
            Some(area) => log.query_bbox(track, area, Some(range)),
            None => log.query_time_range(track, range),
        }
    }
}

/// The unified hot/cold query engine. See the module docs for the
/// design; construct with [`QueryEngine::open`] and attach a live view
/// with [`QueryEngine::with_snapshot`].
#[derive(Debug)]
pub struct QueryEngine {
    shards: Vec<ShardSlot>,
    manifest: Option<Manifest>,
    hot: Option<FleetSnapshot>,
    config: LogConfig,
    pruning: bool,
}

impl QueryEngine {
    /// Opens the logs at `path`, auto-detecting the layout: a directory
    /// with `shard-<k>/` subdirectories is treated as a spill tree
    /// ([`QueryEngine::open_tree`]), anything else as one flat log
    /// ([`QueryEngine::open_flat`]).
    pub fn open(path: impl AsRef<Path>) -> Result<QueryEngine, TlogError> {
        let path = path.as_ref();
        if is_sharded_tree(path) {
            QueryEngine::open_tree(path)
        } else {
            QueryEngine::open_flat(path)
        }
    }

    /// An engine over a single flat log. The log is opened read-only
    /// immediately (there is nothing to prune, so laziness buys
    /// nothing) — the caller learns about a missing directory, or a
    /// directory that holds no log at all, here rather than as an
    /// eerily empty first query.
    pub fn open_flat(dir: impl Into<PathBuf>) -> Result<QueryEngine, TlogError> {
        let config = LogConfig::default();
        let dir = dir.into();
        let (log, _) = TrajectoryLog::open_read_only(&dir, config)?;
        if log.footprint().segments == 0 {
            // A real flat log always has at least one segment (the
            // writer bootstraps one on creation); an existing directory
            // without any is a wrong path, not an empty dataset.
            return Err(TlogError::io(
                format!(
                    "{} holds no trajectory log (no seg-*.tlg files and no shard-<k> \
                     directories)",
                    dir.display()
                ),
                std::io::Error::new(std::io::ErrorKind::NotFound, "not a trajectory log"),
            ));
        }
        let fingerprint = crate::manifest::shard_fingerprint(&dir)?;
        Ok(QueryEngine {
            shards: vec![ShardSlot {
                shard: None,
                dir,
                log: Some(log),
                fingerprint: Some(fingerprint),
            }],
            manifest: None,
            hot: None,
            config,
            pruning: true,
        })
    }

    /// An engine over a `shard-<k>/` spill tree. The tree's `MANIFEST`
    /// is loaded (or the shards are header-scanned when it is missing,
    /// unparseable or stale — see [`Manifest::load_or_scan`]); shard
    /// logs themselves are opened lazily, only when a query survives
    /// manifest pruning.
    pub fn open_tree(root: impl AsRef<Path>) -> Result<QueryEngine, TlogError> {
        let root = root.as_ref();
        let dirs = shard_dirs(root)?;
        if dirs.is_empty() {
            return Err(TlogError::io(
                format!("{} holds no shard-<k> directories", root.display()),
                std::io::Error::new(std::io::ErrorKind::NotFound, "not a sharded spill tree"),
            ));
        }
        let manifest = Manifest::load_or_scan(root)?;
        let config = LogConfig::default();
        Ok(QueryEngine {
            shards: dirs
                .into_iter()
                .map(|(shard, dir)| ShardSlot {
                    shard: Some(shard),
                    // The manifest is fresh right now, so its recorded
                    // fingerprints describe the current directories.
                    fingerprint: manifest
                        .shards
                        .iter()
                        .find(|s| s.shard == shard)
                        .map(|s| (s.segments, s.bytes)),
                    dir,
                    log: None,
                })
                .collect(),
            manifest: Some(manifest),
            hot: None,
            config,
            pruning: true,
        })
    }

    /// Re-checks every shard's on-disk fingerprint (segment count +
    /// byte total) and drops whatever the check invalidates: a changed
    /// shard's cached log is reopened on next use, and a tree's
    /// manifest is rescanned. This is what lets one engine serve many
    /// queries *beside a live writer* without pruning away (or
    /// double-counting against the hot snapshot) data spilled after the
    /// engine was opened; it runs automatically at the start of every
    /// query.
    fn revalidate(&mut self) -> Result<(), TlogError> {
        let mut changed = false;
        for slot in &mut self.shards {
            let fingerprint = crate::manifest::shard_fingerprint(&slot.dir)?;
            if slot.fingerprint != Some(fingerprint) {
                slot.fingerprint = Some(fingerprint);
                slot.log = None;
                changed = true;
            }
        }
        if changed && self.manifest.is_some() {
            let root = self.shards[0]
                .dir
                .parent()
                // bqs-analyze: allow(no-unwrap-in-lib) — invariant: shard dirs live under the tree root
                .expect("shard dirs live under the tree root")
                .to_path_buf();
            self.manifest = Some(Manifest::scan(root)?);
        }
        Ok(())
    }

    /// Attaches a live fleet snapshot: subsequent queries merge its
    /// tracks with the durable data (durable wins on overlap). Take the
    /// snapshot *before* opening the engine for a gap-free view.
    pub fn with_snapshot(mut self, snapshot: FleetSnapshot) -> QueryEngine {
        self.hot = Some(snapshot);
        self
    }

    /// Replaces (or clears) the attached live snapshot in place.
    pub fn set_snapshot(&mut self, snapshot: Option<FleetSnapshot>) {
        self.hot = snapshot;
    }

    /// Disables or re-enables manifest pruning — every shard is then
    /// opened and queried. Results are identical either way (the
    /// soundness property the tests pin down); only the work differs.
    pub fn set_pruning(&mut self, enabled: bool) {
        self.pruning = enabled;
    }

    /// Cold shards (1 for a flat log).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tree manifest in use, when the engine was opened over a tree.
    pub fn manifest(&self) -> Option<&Manifest> {
        self.manifest.as_ref()
    }

    /// Points of `track` (or of every track when `None`) whose
    /// timestamp lies in `range`, merged hot + cold.
    pub fn query_time_range(
        &mut self,
        track: Option<TrackId>,
        range: TimeRange,
    ) -> Result<UnifiedOutput, TlogError> {
        self.query(track, range, None)
    }

    /// Points of `track` (or of every track when `None`) inside `area`
    /// (and inside `range`, when given), merged hot + cold.
    pub fn query_bbox(
        &mut self,
        track: Option<TrackId>,
        area: Rect,
        range: Option<TimeRange>,
    ) -> Result<UnifiedOutput, TlogError> {
        self.query(track, range.unwrap_or_else(TimeRange::all), Some(area))
    }

    /// The latest durable timestamp of `track` across all cold sources
    /// — the watermark below which hot points are duplicates.
    fn durable_t_max(&self, track: TrackId) -> Option<f64> {
        if let Some(manifest) = &self.manifest {
            return manifest.track_time_span(track).map(|(_, hi)| hi);
        }
        self.shards
            .iter()
            .filter_map(|s| s.log.as_ref())
            .filter_map(|log| log.track_time_span(track).map(|(_, hi)| hi))
            .reduce(f64::max)
    }

    fn query(
        &mut self,
        track: Option<TrackId>,
        range: TimeRange,
        area: Option<Rect>,
    ) -> Result<UnifiedOutput, TlogError> {
        // Writers may have appended, compacted or spilled since the
        // last query: invalidate whatever changed on disk first.
        self.revalidate()?;
        // Plan: decide per shard, from the manifest alone, whether it
        // can possibly contribute. Flat logs and manifest-less engines
        // are never pruned.
        let skip: Vec<bool> = self
            .shards
            .iter()
            .map(|slot| match (&self.manifest, slot.shard, self.pruning) {
                (Some(manifest), Some(shard), true) => manifest
                    .shards
                    .iter()
                    .find(|s| s.shard == shard)
                    .is_none_or(|s| !s.may_contain(track, range, area.as_ref())),
                _ => false,
            })
            .collect();

        // Fan out: every surviving shard is opened (read-only, if not
        // cached yet) and queried on its own thread.
        let config = self.config;
        let mut results: Vec<(usize, Result<QueryOutput, TlogError>)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, slot) in self.shards.iter_mut().enumerate() {
                if skip[i] {
                    continue;
                }
                handles.push((
                    i,
                    scope.spawn(move || slot.query(config, track, range, area)),
                ));
            }
            for (i, handle) in handles {
                // bqs-analyze: allow(no-unwrap-in-lib) — propagate a worker panic instead of masking it
                results.push((i, handle.join().expect("shard query thread panicked")));
            }
        });

        // Fold the cold side.
        let mut shard_reports: Vec<ShardQuery> = self
            .shards
            .iter()
            .zip(&skip)
            .map(|(slot, &skipped)| ShardQuery {
                shard: slot.shard,
                skipped,
                stats: QueryStats::default(),
            })
            .collect();
        let mut stats = QueryStats::default();
        let mut per_track: BTreeMap<TrackId, Vec<Vec<TimedPoint>>> = BTreeMap::new();
        for (i, result) in results {
            let output = result?;
            shard_reports[i].stats = output.stats;
            stats.candidate_records += output.stats.candidate_records;
            stats.decoded_records += output.stats.decoded_records;
            stats.decoded_points += output.stats.decoded_points;
            stats.kept_points += output.stats.kept_points;
            for slice in output.slices {
                per_track.entry(slice.track).or_default().push(slice.points);
            }
        }

        // Merge the hot side: durable wins on overlap, so a track's hot
        // points are admitted only past its durable time span.
        let mut hot_points = 0usize;
        let mut hot_tracks = 0usize;
        if let Some(snapshot) = self.hot.take() {
            for t in &snapshot.tracks {
                if track.is_some_and(|wanted| wanted != t.track) {
                    continue;
                }
                let watermark = self.durable_t_max(t.track);
                let fresh: Vec<TimedPoint> = t
                    .points()
                    .into_iter()
                    .filter(|p| watermark.is_none_or(|hi| p.t > hi))
                    .filter(|p| range.contains(p.t) && area.is_none_or(|a| a.contains(p.pos)))
                    .collect();
                if !fresh.is_empty() {
                    hot_points += fresh.len();
                    hot_tracks += 1;
                    per_track.entry(t.track).or_default().push(fresh);
                }
            }
            self.hot = Some(snapshot);
        }

        // Assemble slices: one per track, sources merged in time order.
        let slices: Vec<TrackSlice> = per_track
            .into_iter()
            .map(|(track, mut sources)| {
                let points = if sources.len() == 1 {
                    sources.pop().unwrap_or_default()
                } else {
                    let mut all: Vec<TimedPoint> = sources.into_iter().flatten().collect();
                    all.sort_by(|a, b| a.t.total_cmp(&b.t));
                    all
                };
                TrackSlice { track, points }
            })
            .collect();

        Ok(UnifiedOutput {
            slices,
            stats,
            shards_pruned: skip.iter().filter(|&&s| s).count(),
            shards: shard_reports,
            hot_points,
            hot_tracks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::open_shard_logs;
    use crate::spill::SpillSink;
    use bqs_core::fleet::FleetEngine;
    use bqs_core::stream::compress_all;
    use bqs_core::{BqsConfig, FastBqsCompressor};

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bqs-tlog-tests")
            .join(format!("engine-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn points(track: u64, n: usize, t0: f64) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                TimedPoint::new(
                    i as f64 * 5.0 + track as f64 * 1_000.0,
                    track as f64,
                    t0 + i as f64 * 10.0,
                )
            })
            .collect()
    }

    /// A 4-shard tree with one track per shard, far apart in space.
    fn build_tree(root: &Path) {
        let mut logs = open_shard_logs(root, 4, LogConfig::default()).unwrap();
        for (k, (log, _)) in logs.iter_mut().enumerate() {
            log.append(k as u64, &points(k as u64, 50, 0.0)).unwrap();
        }
        drop(logs);
        Manifest::rebuild(root).unwrap();
    }

    #[test]
    fn tree_queries_merge_all_shards_and_prune_track_selective_ones() {
        let root = temp_root("tree");
        build_tree(&root);
        let mut engine = QueryEngine::open(&root).unwrap();
        assert_eq!(engine.shard_count(), 4);

        // Whole-range query touches every shard.
        let all = engine.query_time_range(None, TimeRange::all()).unwrap();
        assert_eq!(all.slices.len(), 4);
        assert_eq!(all.total_points(), 200);
        assert_eq!(all.shards_pruned, 0);

        // Track-selective query opens exactly one shard.
        let one = engine.query_time_range(Some(2), TimeRange::all()).unwrap();
        assert_eq!(one.slices.len(), 1);
        assert_eq!(one.slices[0].points, points(2, 50, 0.0));
        assert_eq!(one.shards_pruned, 3);
        assert!(one.shards.iter().filter(|s| s.skipped).count() == 3);

        // Pruned and unpruned answers are identical.
        engine.set_pruning(false);
        let unpruned = engine.query_time_range(Some(2), TimeRange::all()).unwrap();
        assert_eq!(unpruned.slices, one.slices);
        assert_eq!(unpruned.shards_pruned, 0);
    }

    #[test]
    fn bbox_queries_prune_spatially_distant_shards() {
        let root = temp_root("bbox");
        build_tree(&root);
        let mut engine = QueryEngine::open(&root).unwrap();
        // Track 3 lives around x ∈ [3000, 3245]; nothing else does.
        let area = Rect::from_corners(
            bqs_geo::Point2::new(2_990.0, -10.0),
            bqs_geo::Point2::new(3_500.0, 10.0),
        );
        let out = engine.query_bbox(None, area, None).unwrap();
        assert_eq!(out.slices.len(), 1);
        assert_eq!(out.slices[0].track, 3);
        assert_eq!(out.shards_pruned, 3);
    }

    #[test]
    fn flat_logs_work_without_a_manifest() {
        let root = temp_root("flat");
        {
            let (mut log, _) = TrajectoryLog::open(&root, LogConfig::default()).unwrap();
            log.append(1, &points(1, 30, 0.0)).unwrap();
            log.append(2, &points(2, 30, 0.0)).unwrap();
        }
        let mut engine = QueryEngine::open(&root).unwrap();
        assert_eq!(engine.shard_count(), 1);
        assert!(engine.manifest().is_none());
        let out = engine
            .query_time_range(None, TimeRange::new(0.0, 95.0))
            .unwrap();
        assert_eq!(out.slices.len(), 2);
        assert_eq!(out.total_points(), 20);
        assert_eq!(out.shards_pruned, 0);
    }

    #[test]
    fn hot_points_merge_after_the_durable_watermark() {
        let root = temp_root("hot-cold");
        let config = BqsConfig::new(8.0).unwrap();
        let trace = points(7, 80, 0.0);
        {
            let (mut log, _) = TrajectoryLog::open(&root, LogConfig::default()).unwrap();
            let mut sink = SpillSink::new(&mut log);
            let mut fleet =
                FleetEngine::with_default_config(move || FastBqsCompressor::new(config));
            // First half evicted (spilled, cold); second half stays live.
            for p in &trace[..40] {
                fleet.push_tagged(7, *p, &mut sink);
            }
            fleet.evict_idle(1e9, &mut sink);
            for p in &trace[40..] {
                fleet.push_tagged(7, *p, &mut sink);
            }
            let snapshot = fleet.snapshot(&sink);

            // The writer is still live (lock held) — the engine reads
            // beside it and sees cold + hot seamlessly.
            let mut engine = QueryEngine::open(&root).unwrap().with_snapshot(snapshot);
            let out = engine.query_time_range(Some(7), TimeRange::all()).unwrap();
            assert!(out.hot_points > 0);
            assert_eq!(out.hot_tracks, 1);

            // Equivalent to closing everything and reading the log.
            fleet.finish_all(&mut sink);
            sink.finish().unwrap();
            assert_eq!(out.slices.len(), 1);
            assert_eq!(out.slices[0].points, log.read_track(7).unwrap());
            // And the whole thing matches solo compression of the two
            // session halves.
            let mut solo1 = FastBqsCompressor::new(config);
            let mut expected = compress_all(&mut solo1, trace[..40].iter().copied());
            let mut solo2 = FastBqsCompressor::new(config);
            expected.extend(compress_all(&mut solo2, trace[40..].iter().copied()));
            assert_eq!(out.slices[0].points, expected);
        }
    }

    #[test]
    fn stale_snapshot_points_are_not_double_counted() {
        let root = temp_root("stale-snap");
        let config = BqsConfig::new(8.0).unwrap();
        let trace = points(3, 60, 0.0);
        let (mut log, _) = TrajectoryLog::open(&root, LogConfig::default()).unwrap();
        let mut sink = SpillSink::new(&mut log);
        let mut fleet = FleetEngine::with_default_config(move || FastBqsCompressor::new(config));
        for p in &trace {
            fleet.push_tagged(3, *p, &mut sink);
        }
        // Snapshot taken, then the session closes and spills: every
        // snapshot point is now also durable.
        let snapshot = fleet.snapshot(&sink);
        fleet.finish_all(&mut sink);
        sink.finish().unwrap();
        let durable = log.read_track(3).unwrap();
        drop(log);

        let mut engine = QueryEngine::open(&root).unwrap().with_snapshot(snapshot);
        let out = engine.query_time_range(Some(3), TimeRange::all()).unwrap();
        assert_eq!(out.slices[0].points, durable, "no duplicates");
        assert_eq!(out.hot_points, 0, "durable wins on overlap");
    }

    #[test]
    fn missing_directory_is_a_clean_error() {
        let root = temp_root("missing");
        assert!(QueryEngine::open(&root).is_err());
    }

    #[test]
    fn a_directory_without_a_log_is_an_error_not_an_empty_answer() {
        // A typo'd path that happens to exist must not read as "your
        // data is gone".
        let root = temp_root("not-a-log");
        std::fs::create_dir_all(&root).unwrap();
        let err = QueryEngine::open(&root).unwrap_err();
        assert!(err.to_string().contains("no trajectory log"), "{err}");
        std::fs::write(root.join("unrelated.txt"), b"x").unwrap();
        assert!(QueryEngine::open(&root).is_err());
    }

    #[test]
    fn a_long_lived_engine_sees_data_spilled_after_it_was_opened() {
        let root = temp_root("revalidate");
        build_tree(&root);
        let mut engine = QueryEngine::open(&root).unwrap();
        // Warm every cache: manifest, cached logs, fingerprints.
        let before = engine.query_time_range(None, TimeRange::all()).unwrap();
        assert_eq!(before.total_points(), 200);
        assert!(engine
            .query_time_range(Some(9), TimeRange::all())
            .unwrap()
            .slices
            .is_empty());

        // A writer appends a brand-new track to shard 1 (stale manifest,
        // stale cached log, stale watermark — all three must refresh).
        {
            let (mut log, _) =
                TrajectoryLog::open(root.join("shard-1"), LogConfig::default()).unwrap();
            log.append(9, &points(9, 25, 10_000.0)).unwrap();
        }
        let after = engine.query_time_range(Some(9), TimeRange::all()).unwrap();
        assert_eq!(
            after.slices.len(),
            1,
            "stale manifest must not prune track 9"
        );
        assert_eq!(after.slices[0].points, points(9, 25, 10_000.0));
        assert_eq!(
            engine
                .query_time_range(None, TimeRange::all())
                .unwrap()
                .total_points(),
            225
        );

        // And a snapshot that went stale the same way is deduped against
        // the *refreshed* durable span, not the open-time one.
        let snapshot = bqs_core::fleet::FleetSnapshot {
            tracks: vec![bqs_core::fleet::TrackSnapshot {
                track: 9,
                emitted: points(9, 25, 10_000.0),
                pending: Vec::new(),
                live: true,
            }],
        };
        engine.set_snapshot(Some(snapshot));
        let deduped = engine.query_time_range(Some(9), TimeRange::all()).unwrap();
        assert_eq!(deduped.hot_points, 0, "durable wins after revalidation");
        assert_eq!(deduped.slices[0].points, points(9, 25, 10_000.0));
    }
}
