//! The crate-wide error type.

use crate::codec::CodecError;
use std::fmt;
use std::path::PathBuf;

/// Everything the log and query layers can fail with.
#[derive(Debug)]
pub enum TlogError {
    /// An I/O operation failed; `context` names the file or action.
    Io {
        /// What was being done (path or operation).
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Encoding or decoding a point stream failed.
    Codec(CodecError),
    /// A segment or record failed validation during a strict scan.
    Corrupt {
        /// The offending segment file.
        path: PathBuf,
        /// Byte offset of the bad frame within the file.
        offset: u64,
        /// Human-readable diagnosis.
        reason: String,
    },
    /// `append` was called with an empty point slice.
    EmptyAppend,
    /// One append's encoded record exceeds the frame format's body
    /// limit; split the batch.
    RecordTooLarge {
        /// The offending body size in bytes.
        bytes: u64,
        /// The format's limit.
        max: u64,
    },
    /// Another process holds the log's advisory lock.
    Locked {
        /// The log directory.
        dir: PathBuf,
        /// The OS-level reason (usually "would block").
        reason: String,
    },
    /// A write operation was attempted on a log opened read-only.
    ReadOnly {
        /// The log directory.
        dir: PathBuf,
    },
    /// A spill root already holds a layout incompatible with the
    /// requested write (a flat log where a shard tree would be written,
    /// or a tree built with a different worker count).
    IncompatibleLayout {
        /// The spill root.
        dir: PathBuf,
        /// What was found and why it cannot be written to.
        reason: String,
    },
}

impl TlogError {
    /// Wraps an I/O error with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> TlogError {
        TlogError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for TlogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlogError::Io { context, source } => write!(f, "{context}: {source}"),
            TlogError::Codec(e) => write!(f, "codec: {e}"),
            TlogError::Corrupt {
                path,
                offset,
                reason,
            } => write!(f, "{} corrupt at offset {offset}: {reason}", path.display()),
            TlogError::EmptyAppend => write!(f, "cannot append an empty point stream"),
            TlogError::RecordTooLarge { bytes, max } => {
                write!(
                    f,
                    "record body of {bytes} B exceeds the format limit of {max} B; split the batch"
                )
            }
            TlogError::Locked { dir, reason } => {
                write!(
                    f,
                    "{} is locked by another process ({reason})",
                    dir.display()
                )
            }
            TlogError::ReadOnly { dir } => {
                write!(f, "{} was opened read-only", dir.display())
            }
            TlogError::IncompatibleLayout { dir, reason } => {
                write!(f, "{}: {reason}", dir.display())
            }
        }
    }
}

impl std::error::Error for TlogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TlogError::Io { source, .. } => Some(source),
            TlogError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for TlogError {
    fn from(e: CodecError) -> TlogError {
        TlogError::Codec(e)
    }
}
