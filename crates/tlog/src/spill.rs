//! Spill-on-evict / flush-on-close: the bridge from a live
//! [`FleetEngine`](bqs_core::fleet::FleetEngine) to the durable log.
//!
//! [`SpillSink`] implements [`FleetSink`]: kept points are buffered per
//! track as the engine emits them, and when the engine closes a session
//! through a fleet-sink path — `finish_all`, `finish_track_tagged`, or
//! idle eviction — the [`FleetSink::session_closed`] hook fires and the
//! track's complete compressed output is encoded and appended to the
//! [`TrajectoryLog`] as one record. Long-running fleets thus become
//! durable: an evicted session's data survives process death and is
//! queryable after reopen. (The point-level `finish_track` cannot fire
//! the hook; its sessions are flushed by [`SpillSink::finish`] instead,
//! with default statistics.)
//!
//! `FleetSink` methods cannot return errors, so append failures are
//! stashed (first error wins, the track's buffer is retained) and must
//! be collected with [`SpillSink::finish`] — which also reports any
//! tracks that were never closed by the engine.

use crate::error::TlogError;
use crate::log::TrajectoryLog;
use bqs_core::fleet::{FleetSink, FlushReason, SessionReport, TrackId};
use bqs_core::stream::DecisionStats;
use bqs_geo::TimedPoint;
use bqs_obs::{Counter, FlightRecorder, MetricsRegistry, TraceEventKind};
use std::borrow::BorrowMut;
use std::collections::HashMap;

/// Durability-side metric handles for a [`SpillSink`], registered under
/// the `tlog_` prefix. Cloneable: each worker shard's sink gets its own
/// clone, all feeding the same counters.
///
/// Catalogued in `docs/observability.md`.
#[derive(Clone)]
pub struct SpillMetrics {
    /// Sessions made durable (one log record each).
    sessions: Counter,
    /// Kept (compressed) points appended to the log.
    points: Counter,
    /// Bytes appended to the log, frames included.
    bytes: Counter,
    /// Segment-file rotations observed across appends.
    rotations: Counter,
    /// Flight recorder each durable spill emits a `Spill` event into,
    /// when wired.
    trace: Option<FlightRecorder>,
}

impl SpillMetrics {
    /// Registers (or re-attaches to) the spill counters in `registry`.
    pub fn new(registry: &MetricsRegistry) -> SpillMetrics {
        SpillMetrics {
            sessions: registry.counter("tlog_spilled_sessions_total"),
            points: registry.counter("tlog_spilled_points_total"),
            bytes: registry.counter("tlog_spilled_bytes_total"),
            rotations: registry.counter("tlog_segment_rotations_total"),
            trace: None,
        }
    }

    /// Wires a flight recorder in: every durable spill then emits one
    /// `Spill` trace event (value = compressed points written).
    pub fn with_trace(mut self, trace: FlightRecorder) -> SpillMetrics {
        self.trace = Some(trace);
        self
    }
}

/// One durable flush of one session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillReport {
    /// The track that was spilled.
    pub track: TrackId,
    /// Kept (compressed) points written to the log.
    pub points: u64,
    /// Bytes the record occupies on disk (frame included).
    pub bytes: u64,
    /// Why the session closed.
    pub reason: FlushReason,
    /// The session's decision statistics (from the engine's report).
    pub stats: DecisionStats,
}

/// A failed spill: the underlying error plus everything that was *not*
/// made durable, so the caller can retry or salvage instead of losing
/// data with the sink.
#[derive(Debug)]
pub struct SpillFailure {
    /// The first append error encountered.
    pub error: TlogError,
    /// Buffered output that never reached the log, per track.
    pub unflushed: HashMap<TrackId, Vec<TimedPoint>>,
    /// Spills that did succeed before the failure.
    pub reports: Vec<SpillReport>,
}

impl std::fmt::Display for SpillFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let points: usize = self.unflushed.values().map(Vec::len).sum();
        write!(
            f,
            "{} ({} tracks / {points} points left unflushed)",
            self.error,
            self.unflushed.len(),
        )
    }
}

impl std::error::Error for SpillFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A [`FleetSink`] that makes session output durable. See module docs.
///
/// Generic over how the log is held: `SpillSink<&mut TrajectoryLog>`
/// borrows a log the caller keeps using afterwards, while
/// `SpillSink<TrajectoryLog>` *owns* its log — the shape a
/// [`ParallelFleet`](bqs_core::fleet::ParallelFleet) worker shard needs,
/// since each shard's sink moves onto its worker thread together with
/// that shard's private `shard-<k>/` log.
///
/// # Examples
///
/// A fleet whose sessions are spilled on close and read back from disk:
///
/// ```
/// use bqs_core::fleet::FleetEngine;
/// use bqs_core::{BqsConfig, FastBqsCompressor};
/// use bqs_geo::TimedPoint;
/// use bqs_tlog::{LogConfig, SpillSink, TrajectoryLog};
///
/// let dir = std::env::temp_dir().join(format!("spill-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
/// {
///     let mut sink = SpillSink::new(&mut log);
///     let config = BqsConfig::new(10.0).unwrap();
///     let mut fleet = FleetEngine::with_default_config(move || {
///         FastBqsCompressor::new(config)
///     });
///     for i in 0..100 {
///         let p = TimedPoint::new(i as f64 * 9.0, 0.0, i as f64 * 60.0);
///         fleet.push_tagged(7, p, &mut sink);
///     }
///     fleet.finish_all(&mut sink); // fires session_closed → durable append
///     let reports = sink.finish().unwrap();
///     assert_eq!(reports.len(), 1);
/// }
/// assert!(!log.read_track(7).unwrap().is_empty());
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct SpillSink<L: BorrowMut<TrajectoryLog>> {
    log: L,
    buffers: HashMap<TrackId, Vec<TimedPoint>>,
    reports: Vec<SpillReport>,
    error: Option<TlogError>,
    metrics: Option<SpillMetrics>,
    /// Segment id of the last successful append; a change means the log
    /// rotated to a new segment file between appends.
    last_segment: Option<u64>,
}

impl<L: BorrowMut<TrajectoryLog>> SpillSink<L> {
    /// A sink spilling closed sessions into `log` (borrowed or owned).
    pub fn new(log: L) -> SpillSink<L> {
        SpillSink::with_metrics(log, None)
    }

    /// [`SpillSink::new`] with optional [`SpillMetrics`] handles; every
    /// successful append bumps the spill counters.
    pub fn with_metrics(log: L, metrics: Option<SpillMetrics>) -> SpillSink<L> {
        SpillSink {
            log,
            buffers: HashMap::new(),
            reports: Vec::new(),
            error: None,
            metrics,
            last_segment: None,
        }
    }

    /// The log this sink spills into.
    pub fn log(&mut self) -> &mut TrajectoryLog {
        self.log.borrow_mut()
    }

    /// Tracks with buffered (not yet spilled) output.
    pub fn buffered_tracks(&self) -> usize {
        self.buffers.len()
    }

    /// Points buffered across all open tracks.
    pub fn buffered_points(&self) -> usize {
        self.buffers.values().map(Vec::len).sum()
    }

    /// Spills recorded so far.
    pub fn reports(&self) -> &[SpillReport] {
        &self.reports
    }

    /// Whether an append has failed (the error is kept for
    /// [`SpillSink::finish`]).
    pub fn has_error(&self) -> bool {
        self.error.is_some()
    }

    fn flush_track(&mut self, track: TrackId, reason: FlushReason, stats: DecisionStats) {
        if self.error.is_some() {
            return; // fail-stop: keep buffers intact after the first error
        }
        let Some(points) = self.buffers.remove(&track) else {
            return; // session produced no output (cannot happen today)
        };
        if points.is_empty() {
            return;
        }
        match self.log.borrow_mut().append(track, &points) {
            Ok(receipt) => {
                if let Some(m) = &self.metrics {
                    m.sessions.inc();
                    m.points.add(receipt.points);
                    m.bytes.add(receipt.bytes);
                    if self.last_segment.is_some_and(|s| s != receipt.segment) {
                        m.rotations.inc();
                    }
                    if let Some(tr) = &m.trace {
                        tr.record(TraceEventKind::Spill, 0, receipt.points);
                    }
                }
                self.last_segment = Some(receipt.segment);
                self.reports.push(SpillReport {
                    track,
                    points: receipt.points,
                    bytes: receipt.bytes,
                    reason,
                    stats,
                });
            }
            Err(e) => {
                // Restore the buffer so no data is lost; surface via finish.
                self.buffers.insert(track, points);
                self.error = Some(e);
            }
        }
    }

    /// Consumes the sink: fails if any append failed, otherwise returns
    /// the spill reports. Tracks the engine never closed (still live at
    /// drop time) are flushed here with [`FlushReason::Finished`] and
    /// default statistics, so no buffered output is silently dropped —
    /// and on failure the un-spilled points come back to the caller
    /// inside [`SpillFailure`] instead of dying with the sink.
    pub fn finish(mut self) -> Result<Vec<SpillReport>, Box<SpillFailure>> {
        let open: Vec<TrackId> = self.buffers.keys().copied().collect();
        for track in open {
            self.flush_track(track, FlushReason::Finished, DecisionStats::default());
        }
        match self.error.take() {
            Some(error) => Err(Box::new(SpillFailure {
                error,
                unflushed: self.buffers,
                reports: self.reports,
            })),
            None => Ok(self.reports),
        }
    }
}

impl<L: BorrowMut<TrajectoryLog>> FleetSink for SpillSink<L> {
    fn accept(&mut self, track: TrackId, point: TimedPoint) {
        self.buffers.entry(track).or_default().push(point);
    }

    fn session_closed(&mut self, report: &SessionReport) {
        self.flush_track(report.track, report.reason, report.stats);
    }

    /// The spill buffers *are* the hot data: kept points of sessions the
    /// engine has not closed yet (plus any buffer retained by a failed
    /// append), none of which the log holds.
    fn live_buffered(&self) -> Vec<(TrackId, Vec<TimedPoint>)> {
        self.buffers.iter().map(|(t, v)| (*t, v.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crate::query::TimeRange;
    use bqs_core::fleet::{FleetConfig, FleetEngine};
    use bqs_core::stream::compress_all;
    use bqs_core::{BqsConfig, FastBqsCompressor};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bqs-tlog-tests")
            .join(format!("spill-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wave(track: u64, n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(
                    a * 8.0 + track as f64,
                    (a * 0.21 + track as f64).sin() * 25.0,
                    a * 60.0,
                )
            })
            .collect()
    }

    fn engine(tolerance: f64) -> FleetEngine<FastBqsCompressor, impl Fn() -> FastBqsCompressor> {
        let config = BqsConfig::new(tolerance).unwrap();
        FleetEngine::new(FleetConfig::default(), move || {
            FastBqsCompressor::new(config)
        })
    }

    #[test]
    fn finish_all_spills_every_session_identically_to_solo() {
        let dir = temp_dir("finish-all");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let traces: Vec<Vec<TimedPoint>> = (0..6).map(|t| wave(t, 300)).collect();
        {
            let mut sink = SpillSink::new(&mut log);
            let mut fleet = engine(10.0);
            for i in 0..300 {
                for (t, trace) in traces.iter().enumerate() {
                    fleet.push_tagged(t as u64, trace[i], &mut sink);
                }
            }
            fleet.finish_all(&mut sink);
            let reports = sink.finish().unwrap();
            assert_eq!(reports.len(), 6);
            assert!(reports.iter().all(|r| r.reason == FlushReason::Finished));
            assert!(reports.iter().all(|r| r.stats.points == 300));
        }
        // Every track reads back byte-identical to solo compression.
        let config = BqsConfig::new(10.0).unwrap();
        for (t, trace) in traces.iter().enumerate() {
            let mut solo = FastBqsCompressor::new(config);
            let expected = compress_all(&mut solo, trace.iter().copied());
            assert_eq!(log.read_track(t as u64).unwrap(), expected, "track {t}");
        }
    }

    #[test]
    fn eviction_spills_and_the_log_survives_reopen() {
        let dir = temp_dir("evict");
        let config = BqsConfig::new(10.0).unwrap();
        {
            let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
            let mut sink = SpillSink::new(&mut log);
            let mut fleet = engine(10.0);
            // Track 1 stops early; track 2 keeps the clock running far
            // past the idle timeout.
            for p in wave(1, 11) {
                fleet.push_tagged(1, p, &mut sink);
            }
            for p in wave(2, 101) {
                fleet.push_tagged(2, p, &mut sink);
            }
            let evicted = fleet.evict_idle_now(&mut sink);
            assert_eq!(evicted.len(), 1);
            assert_eq!(sink.reports().len(), 1);
            assert_eq!(sink.reports()[0].track, 1);
            assert_eq!(sink.reports()[0].reason, FlushReason::Evicted);
            fleet.finish_all(&mut sink);
            sink.finish().unwrap();
        }
        let (log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let mut solo = FastBqsCompressor::new(config);
        let expected = compress_all(&mut solo, wave(1, 11));
        assert_eq!(log.read_track(1).unwrap(), expected);
        // And it is queryable by time.
        let out = log
            .query_time_range(Some(1), TimeRange::new(0.0, 600.0))
            .unwrap();
        assert_eq!(out.slices.len(), 1);
        assert_eq!(out.slices[0].points, expected);
    }

    #[test]
    fn finish_track_tagged_spills_immediately_with_real_stats() {
        let dir = temp_dir("finish-track");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let mut sink = SpillSink::new(&mut log);
        let mut fleet = engine(10.0);
        for p in wave(6, 80) {
            fleet.push_tagged(6, p, &mut sink);
        }
        let report = fleet.finish_track_tagged(6, &mut sink).unwrap();
        assert_eq!(report.reason, FlushReason::Finished);
        // The spill happened at close time, not at sink teardown, and
        // carries the session's real statistics.
        assert_eq!(sink.reports().len(), 1);
        assert_eq!(sink.reports()[0].stats.points, 80);
        assert_eq!(sink.buffered_tracks(), 0);
        sink.finish().unwrap();
    }

    #[test]
    fn failed_spills_hand_the_buffered_points_back() {
        let dir = temp_dir("failure");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        // Pre-existing data for track 1 far in the future: the spilled
        // session's earlier timestamps make the append fail.
        log.append(1, &[bqs_geo::TimedPoint::new(0.0, 0.0, 1e9)])
            .unwrap();
        let failure = {
            let mut sink = SpillSink::new(&mut log);
            let mut fleet = engine(10.0);
            for p in wave(1, 30) {
                fleet.push_tagged(1, p, &mut sink);
            }
            fleet.finish_all(&mut sink);
            assert!(sink.has_error());
            sink.finish().unwrap_err()
        };
        assert!(matches!(failure.error, TlogError::Codec(_)), "{failure}");
        // Every point the session produced is handed back, not dropped.
        let config = BqsConfig::new(10.0).unwrap();
        let mut solo = FastBqsCompressor::new(config);
        let expected = compress_all(&mut solo, wave(1, 30));
        assert_eq!(failure.unflushed[&1], expected);
        assert!(failure.reports.is_empty());
        // The log itself is untouched beyond the pre-existing record.
        assert_eq!(log.read_track(1).unwrap().len(), 1);
    }

    #[test]
    fn unclosed_buffers_are_flushed_by_finish() {
        let dir = temp_dir("unclosed");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        {
            let mut sink = SpillSink::new(&mut log);
            let mut fleet = engine(10.0);
            for p in wave(4, 50) {
                fleet.push_tagged(4, p, &mut sink);
            }
            // No finish_all: some points are already emitted and buffered.
            assert!(sink.buffered_points() > 0);
            let reports = sink.finish().unwrap();
            assert_eq!(reports.len(), 1);
        }
        assert!(!log.read_track(4).unwrap().is_empty());
    }
}
