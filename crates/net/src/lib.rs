//! # bqs-net — the framed TCP ingest/query server over the parallel fleet
//!
//! The paper's premise is compression *on the go*: points arrive from
//! remote, resource-poor devices and must be bounded-error-compressed
//! as they stream in. The workspace already simulates the device side
//! (`bqs-device`), scales the receiving side across cores
//! ([`ParallelFleet`](bqs_core::fleet::ParallelFleet)) and makes the
//! output durable and queryable (`bqs-tlog`); this crate is the network
//! serving layer that turns those pieces into a system many clients can
//! actually talk to:
//!
//! * [`wire`] — the protocol: length-prefixed, CRC-framed binary
//!   messages (`Hello`/`Append`/`Flush`/`Query`/`Stats`/`Shutdown` and
//!   typed replies) whose bodies reuse the varint + f64-bit-map
//!   primitives of `bqs_tlog`'s storage codec. Torn, oversized and
//!   corrupt frames are typed [`WireError`]s, never silent.
//! * [`server`] — [`Server`]: an acceptor plus per-connection reader
//!   threads feeding one shared fleet through the existing batched
//!   submission path. Backpressure propagates from a saturated worker
//!   shard all the way to the remote socket; `Query` merges a live
//!   [`FleetSnapshot`](bqs_core::fleet::FleetSnapshot) with the spill
//!   tree through the unified
//!   [`QueryEngine`](bqs_tlog::QueryEngine); `Shutdown` drains
//!   connections and leaves a spill tree `bqs log verify` accepts.
//! * [`client`] — [`BqsClient`]: the blocking client library.
//! * [`loadgen`] — seeded multi-connection load generation whose
//!   workloads match `bqs fleet`'s exactly, so network ingest is
//!   provably equivalent to in-process ingest
//!   (`tests/net_equivalence.rs`).
//!
//! `bqs serve` and `bqs loadgen` expose the subsystem on the command
//! line; `docs/protocol.md` specifies the wire format.
//!
//! Everything is `std::net` + threads: no async runtime, no new
//! dependencies, and blocking reads give exact end-to-end backpressure
//! semantics for free.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod error;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::{BqsClient, ShutdownAck};
pub use error::NetError;
pub use loadgen::{session_trace, LoadgenConfig, LoadgenReport};
pub use server::{ServeReport, Server, ServerConfig};
pub use wire::{
    ErrorCode, QueryReport, QuerySpec, Reply, Request, ShardStat, StatsReport, WireError,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
