//! # bqs-net — the framed TCP ingest/query server over the parallel fleet
//!
//! The paper's premise is compression *on the go*: points arrive from
//! remote, resource-poor devices and must be bounded-error-compressed
//! as they stream in. The workspace already simulates the device side
//! (`bqs-device`), scales the receiving side across cores
//! ([`ParallelFleet`](bqs_core::fleet::ParallelFleet)) and makes the
//! output durable and queryable (`bqs-tlog`); this crate is the network
//! serving layer that turns those pieces into a system many clients can
//! actually talk to:
//!
//! * [`wire`] — the protocol: length-prefixed, CRC-framed binary
//!   messages (`Hello`/`Append`/`Flush`/`Query`/`Stats`/`Shutdown` and
//!   typed replies) whose bodies reuse the varint + f64-bit-map
//!   primitives of `bqs_tlog`'s storage codec. Torn, oversized and
//!   corrupt frames are typed [`WireError`]s, never silent.
//! * [`server`] — [`Server`]: an acceptor handing non-blocking sockets
//!   to a fixed pool of I/O threads (`--io-threads`, default 4) that
//!   multiplex them via readiness polling (epoll/kqueue through the
//!   vendored `polling` shim, with a portable fallback). `Append`
//!   frames decode straight into columnar batches and enter the fleet
//!   as whole runs — one channel send per frame. Backpressure still
//!   propagates from a saturated worker shard all the way to the
//!   remote socket; `Query` merges a live
//!   [`FleetSnapshot`](bqs_core::fleet::FleetSnapshot) with the spill
//!   tree through the unified
//!   [`QueryEngine`](bqs_tlog::QueryEngine); `Shutdown` drains
//!   connections and leaves a spill tree `bqs log verify` accepts.
//!   `--io-threads 0` keeps the legacy thread-per-connection runtime
//!   for A/B comparison; both share one request handler, so semantics
//!   cannot drift.
//! * [`client`] — [`BqsClient`]: the blocking client library.
//! * [`loadgen`] — seeded multi-connection load generation whose
//!   workloads match `bqs fleet`'s exactly, so network ingest is
//!   provably equivalent to in-process ingest
//!   (`tests/net_equivalence.rs`).
//!
//! `bqs serve` and `bqs loadgen` expose the subsystem on the command
//! line; `docs/protocol.md` specifies the wire format.
//!
//! Everything is `std::net` + threads + a vendored poller shim: no
//! async runtime, and readiness-gated reads preserve the exact
//! end-to-end backpressure semantics the blocking design had.

#![deny(missing_docs)]

pub mod client;
pub mod error;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::{BqsClient, ShutdownAck, Subscription};
pub use error::NetError;
pub use loadgen::{disorder_trace, session_trace, LoadgenConfig, LoadgenReport};
pub use server::{ServeReport, Server, ServerConfig, DEFAULT_IO_THREADS, DEFAULT_MAX_CONNECTIONS};
pub use wire::{
    decode_append_columns, encode_append_columns, ErrorCode, QueryReport, QuerySpec, Reply,
    Request, ShardStat, StatsReport, WireError, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
