//! The binary wire protocol: length-prefixed, CRC-framed messages.
//!
//! ## Frame layout
//!
//! Every message — request or reply — travels in one frame:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"BQ"
//! 2       4     payload length N, u32 little-endian (max 16 MiB)
//! 6       N     payload (tag byte + message body)
//! 6+N     4     CRC-32 (IEEE, zlib-compatible) of the payload, u32 LE
//! ```
//!
//! A frame is self-delimiting, so a reader can resynchronise only at a
//! connection boundary: any framing violation — wrong magic, an
//! oversized length, a checksum mismatch, a stream that ends mid-frame
//! — is a typed [`WireError`] and the connection must be closed.
//!
//! ## Message bodies
//!
//! The body reuses the primitives of `bqs_tlog`'s storage codec:
//! LEB128 varints ([`bqs_tlog::codec::write_varint`]) for every integer
//! field, raw little-endian IEEE-754 bits for floats (infinities are
//! legal time bounds), and whole point streams as embedded
//! [`bqs_tlog::codec::encode_points`] payloads — the same
//! delta-of-delta encoding over the order-preserving f64 bit map that
//! the durable log stores, so a batch of GPS fixes costs a few bytes
//! per point on the wire too. Strings are varint length + UTF-8;
//! options are a presence byte.
//!
//! The full frame layout, message table and error codes are specified
//! in `docs/protocol.md`.

use bqs_core::stream::DecisionStats;
use bqs_geo::{ColumnarBatch, TimedPoint};
use bqs_obs::{TraceEvent, TraceEventKind};
use bqs_tlog::codec::{
    decode_columns_into, decode_to_vec, encode_columns, encode_points, read_varint, write_varint,
    CodecError,
};
use bqs_tlog::crc::crc32;
use bqs_tlog::TrackSlice;
use std::fmt;
use std::io::{Read, Write};

/// Version negotiated in `Hello`; bumped on incompatible changes.
pub const PROTOCOL_VERSION: u8 = 1;

/// The two magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 2] = *b"BQ";

/// Frame header bytes: magic + payload length.
pub const HEADER_BYTES: usize = 6;

/// Hard cap on a frame's payload. Large enough for ~1M-point batches,
/// small enough that a corrupt length field cannot demand gigabytes.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Everything that can go wrong while framing or (de)coding messages.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The frame does not start with [`FRAME_MAGIC`].
    BadMagic {
        /// The two bytes found instead.
        found: [u8; 2],
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The declared payload length.
        len: u64,
        /// The maximum accepted.
        max: u64,
    },
    /// The payload checksum does not match the trailer.
    BadCrc {
        /// CRC-32 computed over the received payload.
        computed: u32,
        /// CRC-32 the frame trailer declared.
        declared: u32,
    },
    /// The stream ended in the middle of a frame (torn frame).
    Torn {
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A message body ended in the middle of a field.
    Truncated {
        /// Byte offset inside the payload at which decoding stopped.
        offset: usize,
    },
    /// The payload's tag byte names no known message.
    UnknownTag {
        /// The tag found.
        tag: u8,
    },
    /// An `Error` reply carried a code byte this build does not know.
    UnknownErrorCode {
        /// The code byte found.
        code: u8,
    },
    /// An embedded point stream failed to decode (or encode).
    Codec(CodecError),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected {FRAME_MAGIC:02x?})")
            }
            WireError::Oversized { len, max } => {
                write!(f, "frame payload of {len} B exceeds the {max} B limit")
            }
            WireError::BadCrc { computed, declared } => write!(
                f,
                "frame checksum mismatch: computed {computed:#010x}, frame declared {declared:#010x}"
            ),
            WireError::Torn { needed, got } => {
                write!(f, "torn frame: needed {needed} more byte(s), got {got}")
            }
            WireError::Truncated { offset } => {
                write!(f, "message truncated at payload offset {offset}")
            }
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            WireError::UnknownErrorCode { code } => {
                write!(f, "unknown error code {code} in an Error reply")
            }
            WireError::Codec(e) => write!(f, "embedded point stream: {e}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete message")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> WireError {
        match e {
            // A torn varint inside a message body is a truncation of the
            // body, not of the embedded codec payload.
            CodecError::Truncated { offset } => WireError::Truncated { offset },
            other => WireError::Codec(other),
        }
    }
}

/// Application-level error codes carried by [`Reply::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or message could not be decoded; the connection is
    /// closed after this reply (the stream cannot be resynchronised).
    BadFrame,
    /// The request decoded but was semantically invalid (e.g. an
    /// append batch whose timestamps go backwards).
    BadRequest,
    /// The client's protocol version is not supported.
    Unsupported,
    /// The server is shutting down and accepts no further work.
    ShuttingDown,
    /// An internal server error (storage, query fan-out, …).
    Internal,
    /// The server's connection table is full; the connection is closed
    /// after this reply. Retry later or against another server.
    OverCapacity,
    /// A late batch fell more than the configured lateness window
    /// behind the track's watermark and was refused atomically (no
    /// point of the batch was admitted). The connection survives.
    TooLate,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Unsupported => 3,
            ErrorCode::ShuttingDown => 4,
            ErrorCode::Internal => 5,
            ErrorCode::OverCapacity => 6,
            ErrorCode::TooLate => 7,
        }
    }

    fn from_byte(b: u8) -> Result<ErrorCode, WireError> {
        match b {
            1 => Ok(ErrorCode::BadFrame),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::Unsupported),
            4 => Ok(ErrorCode::ShuttingDown),
            5 => Ok(ErrorCode::Internal),
            6 => Ok(ErrorCode::OverCapacity),
            7 => Ok(ErrorCode::TooLate),
            code => Err(WireError::UnknownErrorCode { code }),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
            ErrorCode::OverCapacity => "over-capacity",
            ErrorCode::TooLate => "too-late",
        };
        f.write_str(name)
    }
}

/// A time-range / bounding-box query, as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Restrict to one track (`None` = every track).
    pub track: Option<u64>,
    /// Inclusive lower time bound (may be `-inf`).
    pub from: f64,
    /// Inclusive upper time bound (may be `+inf`).
    pub to: f64,
    /// Optional spatial filter, `[x0, y0, x1, y1]` (any two opposite
    /// corners).
    pub bbox: Option<[f64; 4]>,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the session; must be the first message on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        protocol: u8,
    },
    /// Submits a time-ordered batch of one track's points.
    Append {
        /// The track the points belong to.
        track: u64,
        /// The batch, non-decreasing in time.
        points: Vec<TimedPoint>,
    },
    /// Submits late points for a track. Unlike `Append`, the batch may
    /// be arbitrarily disordered, so it travels as raw timestamped
    /// triples rather than the delta codec. With `backfill = false` the
    /// points enter the reorder buffer and must each land within the
    /// server's lateness window; `backfill = true` bypasses the window
    /// entirely and writes a flagged backfill record at finalization.
    AppendLate {
        /// The track the points belong to.
        track: u64,
        /// `true` routes the batch through the durable backfill path.
        backfill: bool,
        /// The late batch (sorted for backfill, any order otherwise).
        points: Vec<TimedPoint>,
    },
    /// Subscribes this connection to the live stream of kept points.
    /// After the `Subscribed` ack the server pushes `SubPoints` frames
    /// until the connection closes or the server drains (`SubEnd`).
    Subscribe {
        /// Restrict to one track (`None` = every track).
        track: Option<u64>,
        /// Optional spatial filter, `[x0, y0, x1, y1]`.
        bbox: Option<[f64; 4]>,
    },
    /// Asks the server to ship every partially filled fleet batch now.
    Flush,
    /// A unified hot/cold query over the live fleet + spill tree.
    Query(QuerySpec),
    /// Asks for merged decision statistics and per-shard counters.
    Stats,
    /// Asks for a text exposition snapshot of the metrics registry.
    Metrics {
        /// `true` requests the Prometheus text format instead of the
        /// native `name value` lines. Encoded as an optional trailing
        /// byte, so version-1 peers that omit it still speak the
        /// protocol unchanged.
        prom: bool,
    },
    /// Asks for the flight recorder's current contents.
    TraceDump {
        /// Keep only the most recent N events (`None` = whole ring).
        last: Option<u64>,
        /// Keep only events for one connection id (`None` = all).
        conn: Option<u64>,
    },
    /// Asks the server to drain, spill everything and exit.
    Shutdown,
}

/// One worker shard's counters in a [`StatsReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStat {
    /// The shard index.
    pub shard: u64,
    /// Distinct tracks routed to the shard.
    pub tracks: u64,
    /// Points submitted to the shard.
    pub submitted_points: u64,
    /// Whether the shard's worker has died.
    pub dead: bool,
}

/// The server's answer to [`Request::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Decision statistics merged across every live worker engine.
    pub stats: DecisionStats,
    /// Submission-side counters, one entry per worker shard.
    pub shards: Vec<ShardStat>,
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Points accepted over all connections.
    pub appended_points: u64,
    /// Whole seconds the server has been up.
    pub uptime_s: u64,
    /// Connections currently open.
    pub live_connections: u64,
    /// Most connections ever open at once.
    pub peak_connections: u64,
    /// Connections refused because the server was at capacity.
    pub rejected_connections: u64,
}

/// The server's answer to [`Request::Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// Matching tracks (ascending id), points in time order.
    pub slices: Vec<TrackSlice>,
    /// Shards skipped via the manifest without being opened.
    pub shards_pruned: u64,
    /// Matching points contributed by the live (not yet durable) side.
    pub hot_points: u64,
    /// Records the cold side considered.
    pub candidate_records: u64,
    /// Records the cold side actually decoded.
    pub decoded_records: u64,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Successful handshake.
    HelloOk {
        /// The server's [`PROTOCOL_VERSION`].
        protocol: u8,
        /// Worker shards behind the server.
        workers: u64,
    },
    /// An append batch was accepted into the fleet.
    Appended {
        /// The track appended to.
        track: u64,
        /// Points accepted.
        points: u64,
    },
    /// A late or backfill batch was accepted in full.
    LateAppended {
        /// The track appended to.
        track: u64,
        /// Points accepted.
        points: u64,
    },
    /// The subscription is live; `SubPoints` frames follow.
    Subscribed,
    /// A pushed batch of kept points for one subscribed track, in the
    /// order the compressor keeps them.
    SubPoints {
        /// The track the points belong to.
        track: u64,
        /// The kept points, non-decreasing in time.
        points: Vec<TimedPoint>,
    },
    /// The server is draining; no further `SubPoints` will arrive.
    SubEnd,
    /// Every partially filled batch has been shipped to its worker.
    Flushed,
    /// A query answer.
    QueryResult(QueryReport),
    /// A statistics answer.
    StatsReply(StatsReport),
    /// A metrics snapshot: the registry's sorted `name value` text
    /// exposition, or the Prometheus text format when the request asked
    /// for it (empty when the server runs without a registry).
    MetricsReply {
        /// The exposition text; see `docs/observability.md`.
        text: String,
    },
    /// The flight recorder's contents, oldest surviving event first
    /// (empty when the server runs without a recorder).
    TraceReply {
        /// Events overwritten by the ring before this dump.
        dropped: u64,
        /// The surviving events, ascending by sequence number.
        events: Vec<TraceEvent>,
    },
    /// The server acknowledges shutdown and will exit after draining.
    ShuttingDown {
        /// Connections served over the server's lifetime.
        connections: u64,
        /// Points accepted over the server's lifetime.
        appended_points: u64,
    },
    /// The request failed; see [`ErrorCode`] for whether the
    /// connection survives.
    Error {
        /// What kind of failure.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

// --- field-level encode/decode helpers -------------------------------

// Request tags are crate-visible: the server classifies a frame for its
// per-request-type metrics from the tag byte alone, before decoding.
pub(crate) const TAG_HELLO: u8 = 0x01;
pub(crate) const TAG_APPEND: u8 = 0x02;
pub(crate) const TAG_FLUSH: u8 = 0x03;
pub(crate) const TAG_QUERY: u8 = 0x04;
pub(crate) const TAG_STATS: u8 = 0x05;
pub(crate) const TAG_SHUTDOWN: u8 = 0x06;
pub(crate) const TAG_METRICS: u8 = 0x07;
pub(crate) const TAG_SUBSCRIBE: u8 = 0x08;
pub(crate) const TAG_APPEND_LATE: u8 = 0x09;
pub(crate) const TAG_TRACE_DUMP: u8 = 0x0A;
const TAG_HELLO_OK: u8 = 0x81;
const TAG_APPENDED: u8 = 0x82;
const TAG_FLUSHED: u8 = 0x83;
const TAG_QUERY_RESULT: u8 = 0x84;
const TAG_STATS_REPLY: u8 = 0x85;
const TAG_SHUTTING_DOWN: u8 = 0x86;
const TAG_METRICS_REPLY: u8 = 0x87;
const TAG_SUB_EVENT: u8 = 0x88;
const TAG_LATE_APPENDED: u8 = 0x89;
const TAG_TRACE_REPLY: u8 = 0x8A;
const TAG_ERROR: u8 = 0xFF;

// Kind bytes inside a `TAG_SUB_EVENT` reply.
const SUB_KIND_SUBSCRIBED: u8 = 0;
const SUB_KIND_POINTS: u8 = 1;
const SUB_KIND_END: u8 = 2;

fn write_f64(v: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn read_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, WireError> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or(WireError::Truncated { offset: *pos })?;
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(f64::from_bits(u64::from_le_bytes(b)))
}

fn read_byte(bytes: &[u8], pos: &mut usize) -> Result<u8, WireError> {
    let &b = bytes
        .get(*pos)
        .ok_or(WireError::Truncated { offset: *pos })?;
    *pos += 1;
    Ok(b)
}

fn write_points(points: &[TimedPoint], out: &mut Vec<u8>) -> Result<(), WireError> {
    let mut blob = Vec::with_capacity(2 + points.len() * 4);
    encode_points(points, &mut blob)?;
    write_varint(blob.len() as u64, out);
    out.extend_from_slice(&blob);
    Ok(())
}

fn read_points(bytes: &[u8], pos: &mut usize) -> Result<Vec<TimedPoint>, WireError> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or(WireError::Truncated { offset: *pos })?;
    let points = decode_to_vec(&bytes[*pos..end]).map_err(WireError::Codec)?;
    *pos = end;
    Ok(points)
}

/// Raw (uncompressed) point stream: varint count, then `t, x, y` as
/// little-endian f64 bits per point. Used where the delta codec's
/// time-order invariant cannot hold — late batches are disordered by
/// definition.
fn write_raw_points(points: &[TimedPoint], out: &mut Vec<u8>) {
    write_varint(points.len() as u64, out);
    for p in points {
        write_f64(p.t, out);
        write_f64(p.pos.x, out);
        write_f64(p.pos.y, out);
    }
}

fn read_raw_points(bytes: &[u8], pos: &mut usize) -> Result<Vec<TimedPoint>, WireError> {
    let count = read_varint(bytes, pos)? as usize;
    // Cap the pre-allocation: `count` is attacker-controlled.
    let mut points = Vec::with_capacity(count.min(65_536));
    for _ in 0..count {
        let t = read_f64(bytes, pos)?;
        let x = read_f64(bytes, pos)?;
        let y = read_f64(bytes, pos)?;
        points.push(TimedPoint::new(x, y, t));
    }
    Ok(points)
}

fn write_string(s: &str, out: &mut Vec<u8>) {
    write_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn read_string(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or(WireError::Truncated { offset: *pos })?;
    let s = std::str::from_utf8(&bytes[*pos..end]).map_err(|_| WireError::BadUtf8)?;
    *pos = end;
    Ok(s.to_string())
}

fn write_stats(stats: &DecisionStats, out: &mut Vec<u8>) {
    for v in [
        stats.points,
        stats.trivial,
        stats.by_bounds,
        stats.full_scans,
        stats.warmup_scans,
        stats.aggressive_cuts,
        stats.segments,
    ] {
        write_varint(v, out);
    }
}

fn read_stats(bytes: &[u8], pos: &mut usize) -> Result<DecisionStats, WireError> {
    Ok(DecisionStats {
        points: read_varint(bytes, pos)?,
        trivial: read_varint(bytes, pos)?,
        by_bounds: read_varint(bytes, pos)?,
        full_scans: read_varint(bytes, pos)?,
        warmup_scans: read_varint(bytes, pos)?,
        aggressive_cuts: read_varint(bytes, pos)?,
        segments: read_varint(bytes, pos)?,
    })
}

fn write_opt_varint(v: Option<u64>, out: &mut Vec<u8>) {
    match v {
        Some(v) => {
            out.push(1);
            write_varint(v, out);
        }
        None => out.push(0),
    }
}

fn read_opt_varint(bytes: &[u8], pos: &mut usize) -> Result<Option<u64>, WireError> {
    match read_byte(bytes, pos)? {
        0 => Ok(None),
        _ => Ok(Some(read_varint(bytes, pos)?)),
    }
}

/// Trace events travel as varints (seq, at_us, conn, value) plus the
/// kind's stable wire byte.
fn write_trace_events(dropped: u64, events: &[TraceEvent], out: &mut Vec<u8>) {
    write_varint(dropped, out);
    write_varint(events.len() as u64, out);
    for e in events {
        write_varint(e.seq, out);
        write_varint(e.at_us, out);
        out.push(e.kind as u8);
        write_varint(e.conn, out);
        write_varint(e.value, out);
    }
}

fn read_trace_events(bytes: &[u8], pos: &mut usize) -> Result<(u64, Vec<TraceEvent>), WireError> {
    let dropped = read_varint(bytes, pos)?;
    let count = read_varint(bytes, pos)? as usize;
    // Cap the pre-allocation: `count` is attacker-controlled.
    let mut events = Vec::with_capacity(count.min(65_536));
    for _ in 0..count {
        let seq = read_varint(bytes, pos)?;
        let at_us = read_varint(bytes, pos)?;
        let kind_byte = read_byte(bytes, pos)?;
        let kind =
            TraceEventKind::from_u8(kind_byte).ok_or(WireError::UnknownTag { tag: kind_byte })?;
        let conn = read_varint(bytes, pos)?;
        let value = read_varint(bytes, pos)?;
        events.push(TraceEvent {
            seq,
            at_us,
            kind,
            conn,
            value,
        });
    }
    Ok((dropped, events))
}

fn check_consumed(bytes: &[u8], pos: usize) -> Result<(), WireError> {
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(WireError::TrailingBytes {
            extra: bytes.len() - pos,
        })
    }
}

impl Request {
    /// Encodes the request into a frame payload (tag + body). Fails only
    /// when an append batch violates the codec's time-order invariant.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        match self {
            Request::Hello { protocol } => {
                out.push(TAG_HELLO);
                out.push(*protocol);
            }
            Request::Append { track, points } => {
                out.push(TAG_APPEND);
                write_varint(*track, &mut out);
                write_points(points, &mut out)?;
            }
            Request::AppendLate {
                track,
                backfill,
                points,
            } => {
                out.push(TAG_APPEND_LATE);
                write_varint(*track, &mut out);
                out.push(u8::from(*backfill));
                write_raw_points(points, &mut out);
            }
            Request::Subscribe { track, bbox } => {
                out.push(TAG_SUBSCRIBE);
                match track {
                    Some(track) => {
                        out.push(1);
                        write_varint(*track, &mut out);
                    }
                    None => out.push(0),
                }
                match bbox {
                    Some(corners) => {
                        out.push(1);
                        for c in corners {
                            write_f64(*c, &mut out);
                        }
                    }
                    None => out.push(0),
                }
            }
            Request::Flush => out.push(TAG_FLUSH),
            Request::Query(spec) => {
                out.push(TAG_QUERY);
                match spec.track {
                    Some(track) => {
                        out.push(1);
                        write_varint(track, &mut out);
                    }
                    None => out.push(0),
                }
                write_f64(spec.from, &mut out);
                write_f64(spec.to, &mut out);
                match spec.bbox {
                    Some(corners) => {
                        out.push(1);
                        for c in corners {
                            write_f64(c, &mut out);
                        }
                    }
                    None => out.push(0),
                }
            }
            Request::Stats => out.push(TAG_STATS),
            Request::Metrics { prom } => {
                out.push(TAG_METRICS);
                // The native format is the bare tag (version-1 shape);
                // the format byte is only appended when it carries
                // information, so old servers never see it.
                if *prom {
                    out.push(1);
                }
            }
            Request::TraceDump { last, conn } => {
                out.push(TAG_TRACE_DUMP);
                write_opt_varint(*last, &mut out);
                write_opt_varint(*conn, &mut out);
            }
            Request::Shutdown => out.push(TAG_SHUTDOWN),
        }
        Ok(out)
    }

    /// Decodes a frame payload into a request. The whole payload must be
    /// consumed — trailing bytes are rejected, never silently ignored.
    pub fn decode(bytes: &[u8]) -> Result<Request, WireError> {
        let mut pos = 0usize;
        let tag = read_byte(bytes, &mut pos)?;
        let request = match tag {
            TAG_HELLO => Request::Hello {
                protocol: read_byte(bytes, &mut pos)?,
            },
            TAG_APPEND => Request::Append {
                track: read_varint(bytes, &mut pos)?,
                points: read_points(bytes, &mut pos)?,
            },
            TAG_APPEND_LATE => Request::AppendLate {
                track: read_varint(bytes, &mut pos)?,
                backfill: read_byte(bytes, &mut pos)? != 0,
                points: read_raw_points(bytes, &mut pos)?,
            },
            TAG_SUBSCRIBE => {
                let track = match read_byte(bytes, &mut pos)? {
                    0 => None,
                    _ => Some(read_varint(bytes, &mut pos)?),
                };
                let bbox = match read_byte(bytes, &mut pos)? {
                    0 => None,
                    _ => Some([
                        read_f64(bytes, &mut pos)?,
                        read_f64(bytes, &mut pos)?,
                        read_f64(bytes, &mut pos)?,
                        read_f64(bytes, &mut pos)?,
                    ]),
                };
                Request::Subscribe { track, bbox }
            }
            TAG_FLUSH => Request::Flush,
            TAG_QUERY => {
                let track = match read_byte(bytes, &mut pos)? {
                    0 => None,
                    _ => Some(read_varint(bytes, &mut pos)?),
                };
                let from = read_f64(bytes, &mut pos)?;
                let to = read_f64(bytes, &mut pos)?;
                let bbox = match read_byte(bytes, &mut pos)? {
                    0 => None,
                    _ => Some([
                        read_f64(bytes, &mut pos)?,
                        read_f64(bytes, &mut pos)?,
                        read_f64(bytes, &mut pos)?,
                        read_f64(bytes, &mut pos)?,
                    ]),
                };
                Request::Query(QuerySpec {
                    track,
                    from,
                    to,
                    bbox,
                })
            }
            TAG_STATS => Request::Stats,
            TAG_METRICS => Request::Metrics {
                // Optional trailing format byte; absent means native.
                prom: pos < bytes.len() && read_byte(bytes, &mut pos)? != 0,
            },
            TAG_TRACE_DUMP => Request::TraceDump {
                last: read_opt_varint(bytes, &mut pos)?,
                conn: read_opt_varint(bytes, &mut pos)?,
            },
            TAG_SHUTDOWN => Request::Shutdown,
            tag => return Err(WireError::UnknownTag { tag }),
        };
        check_consumed(bytes, pos)?;
        Ok(request)
    }
}

impl Reply {
    /// Encodes the reply into a frame payload (tag + body). Fails only
    /// when a query slice violates the codec's time-order invariant
    /// (which a slice from the query engine never does).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        match self {
            Reply::HelloOk { protocol, workers } => {
                out.push(TAG_HELLO_OK);
                out.push(*protocol);
                write_varint(*workers, &mut out);
            }
            Reply::Appended { track, points } => {
                out.push(TAG_APPENDED);
                write_varint(*track, &mut out);
                write_varint(*points, &mut out);
            }
            Reply::LateAppended { track, points } => {
                out.push(TAG_LATE_APPENDED);
                write_varint(*track, &mut out);
                write_varint(*points, &mut out);
            }
            Reply::Subscribed => {
                out.push(TAG_SUB_EVENT);
                out.push(SUB_KIND_SUBSCRIBED);
            }
            Reply::SubPoints { track, points } => {
                out.push(TAG_SUB_EVENT);
                out.push(SUB_KIND_POINTS);
                write_varint(*track, &mut out);
                write_raw_points(points, &mut out);
            }
            Reply::SubEnd => {
                out.push(TAG_SUB_EVENT);
                out.push(SUB_KIND_END);
            }
            Reply::Flushed => out.push(TAG_FLUSHED),
            Reply::QueryResult(report) => {
                out.push(TAG_QUERY_RESULT);
                write_varint(report.shards_pruned, &mut out);
                write_varint(report.hot_points, &mut out);
                write_varint(report.candidate_records, &mut out);
                write_varint(report.decoded_records, &mut out);
                write_varint(report.slices.len() as u64, &mut out);
                for slice in &report.slices {
                    write_varint(slice.track, &mut out);
                    write_points(&slice.points, &mut out)?;
                }
            }
            Reply::StatsReply(report) => {
                out.push(TAG_STATS_REPLY);
                write_stats(&report.stats, &mut out);
                write_varint(report.connections, &mut out);
                write_varint(report.appended_points, &mut out);
                write_varint(report.uptime_s, &mut out);
                write_varint(report.live_connections, &mut out);
                write_varint(report.peak_connections, &mut out);
                write_varint(report.rejected_connections, &mut out);
                write_varint(report.shards.len() as u64, &mut out);
                for shard in &report.shards {
                    write_varint(shard.shard, &mut out);
                    write_varint(shard.tracks, &mut out);
                    write_varint(shard.submitted_points, &mut out);
                    out.push(u8::from(shard.dead));
                }
            }
            Reply::ShuttingDown {
                connections,
                appended_points,
            } => {
                out.push(TAG_SHUTTING_DOWN);
                write_varint(*connections, &mut out);
                write_varint(*appended_points, &mut out);
            }
            Reply::MetricsReply { text } => {
                out.push(TAG_METRICS_REPLY);
                write_string(text, &mut out);
            }
            Reply::TraceReply { dropped, events } => {
                out.push(TAG_TRACE_REPLY);
                write_trace_events(*dropped, events, &mut out);
            }
            Reply::Error { code, message } => {
                out.push(TAG_ERROR);
                out.push(code.to_byte());
                write_string(message, &mut out);
            }
        }
        Ok(out)
    }

    /// Decodes a frame payload into a reply; the whole payload must be
    /// consumed.
    pub fn decode(bytes: &[u8]) -> Result<Reply, WireError> {
        let mut pos = 0usize;
        let tag = read_byte(bytes, &mut pos)?;
        let reply = match tag {
            TAG_HELLO_OK => Reply::HelloOk {
                protocol: read_byte(bytes, &mut pos)?,
                workers: read_varint(bytes, &mut pos)?,
            },
            TAG_APPENDED => Reply::Appended {
                track: read_varint(bytes, &mut pos)?,
                points: read_varint(bytes, &mut pos)?,
            },
            TAG_LATE_APPENDED => Reply::LateAppended {
                track: read_varint(bytes, &mut pos)?,
                points: read_varint(bytes, &mut pos)?,
            },
            TAG_SUB_EVENT => match read_byte(bytes, &mut pos)? {
                SUB_KIND_SUBSCRIBED => Reply::Subscribed,
                SUB_KIND_POINTS => Reply::SubPoints {
                    track: read_varint(bytes, &mut pos)?,
                    points: read_raw_points(bytes, &mut pos)?,
                },
                SUB_KIND_END => Reply::SubEnd,
                kind => return Err(WireError::UnknownTag { tag: kind }),
            },
            TAG_FLUSHED => Reply::Flushed,
            TAG_QUERY_RESULT => {
                let shards_pruned = read_varint(bytes, &mut pos)?;
                let hot_points = read_varint(bytes, &mut pos)?;
                let candidate_records = read_varint(bytes, &mut pos)?;
                let decoded_records = read_varint(bytes, &mut pos)?;
                let count = read_varint(bytes, &mut pos)? as usize;
                // Cap the pre-allocation: `count` is attacker-controlled.
                let mut slices = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let track = read_varint(bytes, &mut pos)?;
                    let points = read_points(bytes, &mut pos)?;
                    slices.push(TrackSlice { track, points });
                }
                Reply::QueryResult(QueryReport {
                    slices,
                    shards_pruned,
                    hot_points,
                    candidate_records,
                    decoded_records,
                })
            }
            TAG_STATS_REPLY => {
                let stats = read_stats(bytes, &mut pos)?;
                let connections = read_varint(bytes, &mut pos)?;
                let appended_points = read_varint(bytes, &mut pos)?;
                let uptime_s = read_varint(bytes, &mut pos)?;
                let live_connections = read_varint(bytes, &mut pos)?;
                let peak_connections = read_varint(bytes, &mut pos)?;
                let rejected_connections = read_varint(bytes, &mut pos)?;
                let count = read_varint(bytes, &mut pos)? as usize;
                let mut shards = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    shards.push(ShardStat {
                        shard: read_varint(bytes, &mut pos)?,
                        tracks: read_varint(bytes, &mut pos)?,
                        submitted_points: read_varint(bytes, &mut pos)?,
                        dead: read_byte(bytes, &mut pos)? != 0,
                    });
                }
                Reply::StatsReply(StatsReport {
                    stats,
                    shards,
                    connections,
                    appended_points,
                    uptime_s,
                    live_connections,
                    peak_connections,
                    rejected_connections,
                })
            }
            TAG_SHUTTING_DOWN => Reply::ShuttingDown {
                connections: read_varint(bytes, &mut pos)?,
                appended_points: read_varint(bytes, &mut pos)?,
            },
            TAG_METRICS_REPLY => Reply::MetricsReply {
                text: read_string(bytes, &mut pos)?,
            },
            TAG_TRACE_REPLY => {
                let (dropped, events) = read_trace_events(bytes, &mut pos)?;
                Reply::TraceReply { dropped, events }
            }
            TAG_ERROR => {
                let code = ErrorCode::from_byte(read_byte(bytes, &mut pos)?)?;
                let message = read_string(bytes, &mut pos)?;
                Reply::Error { code, message }
            }
            tag => return Err(WireError::UnknownTag { tag }),
        };
        check_consumed(bytes, pos)?;
        Ok(reply)
    }
}

// --- the columnar Append fast path ------------------------------------

/// Decodes an `Append` frame payload straight into a columnar batch —
/// the ingest server's fast path. Returns `Ok(Some(track))` and fills
/// `batch` (appending — clear it first to reuse its allocations) when
/// the payload is a well-formed `Append`; `Ok(None)` when the payload
/// carries any other tag (decode it with [`Request::decode`]). Accepts
/// exactly the payloads the row path accepts, decodes to identical
/// values, and rejects trailing bytes identically — only the target
/// representation differs: three contiguous runs, no intermediate
/// `Vec<TimedPoint>` and no per-point `Sink` dispatch.
pub fn decode_append_columns(
    payload: &[u8],
    batch: &mut ColumnarBatch,
) -> Result<Option<u64>, WireError> {
    if payload.first() != Some(&TAG_APPEND) {
        return Ok(None);
    }
    let mut pos = 1usize;
    let track = read_varint(payload, &mut pos)?;
    let len = read_varint(payload, &mut pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= payload.len())
        .ok_or(WireError::Truncated { offset: pos })?;
    decode_columns_into(&payload[pos..end], batch).map_err(WireError::Codec)?;
    check_consumed(payload, end)?;
    Ok(Some(track))
}

/// Encodes an `Append` frame payload from a columnar batch, producing
/// bytes **identical** to `Request::Append { track, points }.encode()`
/// on the same points in row form — the client-side mirror of
/// [`decode_append_columns`]. Fails when the batch violates the codec's
/// time-order invariant.
pub fn encode_append_columns(track: u64, batch: &ColumnarBatch) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    out.push(TAG_APPEND);
    write_varint(track, &mut out);
    let mut blob = Vec::with_capacity(2 + batch.len() * 4);
    encode_columns(batch, &mut blob)?;
    write_varint(blob.len() as u64, &mut out);
    out.extend_from_slice(&blob);
    Ok(out)
}

// --- framing ----------------------------------------------------------

/// Wraps a payload in a complete frame (magic + length + payload + CRC).
pub fn frame_to_vec(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + 4);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Writes one frame to `w` (one buffered write, then flush).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&frame_to_vec(payload))?;
    w.flush()
}

/// Decodes one frame from a byte slice, returning the payload and the
/// bytes consumed. [`WireError::Torn`] when `bytes` ends mid-frame —
/// the in-memory analogue of a connection dying mid-send.
pub fn decode_frame(bytes: &[u8]) -> Result<(Vec<u8>, usize), WireError> {
    if bytes.len() < HEADER_BYTES {
        return Err(WireError::Torn {
            needed: HEADER_BYTES - bytes.len(),
            got: bytes.len(),
        });
    }
    if bytes[..2] != FRAME_MAGIC {
        return Err(WireError::BadMagic {
            found: [bytes[0], bytes[1]],
        });
    }
    let len = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            len: len as u64,
            max: MAX_FRAME_BYTES as u64,
        });
    }
    let total = HEADER_BYTES + len + 4;
    if bytes.len() < total {
        return Err(WireError::Torn {
            needed: total - bytes.len(),
            got: bytes.len(),
        });
    }
    let payload = &bytes[HEADER_BYTES..HEADER_BYTES + len];
    let declared = u32::from_le_bytes([
        bytes[HEADER_BYTES + len],
        bytes[HEADER_BYTES + len + 1],
        bytes[HEADER_BYTES + len + 2],
        bytes[HEADER_BYTES + len + 3],
    ]);
    let computed = crc32(payload);
    if computed != declared {
        return Err(WireError::BadCrc { computed, declared });
    }
    Ok((payload.to_vec(), total))
}

/// Reads one frame from a blocking reader. `Ok(None)` on a clean EOF at
/// a frame boundary (the peer closed the connection); a stream that
/// ends anywhere else is a [`WireError::Torn`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameReadError> {
    let mut header = [0u8; HEADER_BYTES];
    // The first byte distinguishes clean EOF from a torn frame.
    let mut filled = 0usize;
    while filled < 1 {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    read_exact_or_torn(r, &mut header[1..], HEADER_BYTES - 1)?;
    if header[..2] != FRAME_MAGIC {
        return Err(FrameReadError::Wire(WireError::BadMagic {
            found: [header[0], header[1]],
        }));
    }
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameReadError::Wire(WireError::Oversized {
            len: len as u64,
            max: MAX_FRAME_BYTES as u64,
        }));
    }
    let mut body = vec![0u8; len + 4];
    read_exact_or_torn(r, &mut body, len + 4)?;
    let declared = u32::from_le_bytes([body[len], body[len + 1], body[len + 2], body[len + 3]]);
    body.truncate(len);
    let computed = crc32(&body);
    if computed != declared {
        return Err(FrameReadError::Wire(WireError::BadCrc {
            computed,
            declared,
        }));
    }
    Ok(Some(body))
}

fn read_exact_or_torn(
    r: &mut impl Read,
    buf: &mut [u8],
    needed: usize,
) -> Result<(), FrameReadError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameReadError::Wire(WireError::Torn {
                    needed: needed - filled,
                    got: filled,
                }))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(())
}

/// What [`read_frame`] can fail with: a transport error or a framing
/// violation.
#[derive(Debug)]
pub enum FrameReadError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The bytes received violate the frame format.
    Wire(WireError),
}

impl fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReadError::Io(e) => write!(f, "transport: {e}"),
            FrameReadError::Wire(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FrameReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameReadError::Io(e) => Some(e),
            FrameReadError::Wire(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| TimedPoint::new(i as f64 * 3.5, (i as f64 * 0.2).sin() * 40.0, i as f64))
            .collect()
    }

    #[test]
    fn every_request_round_trips() {
        let requests = [
            Request::Hello {
                protocol: PROTOCOL_VERSION,
            },
            Request::Append {
                track: 42,
                points: points(50),
            },
            // Late batches round-trip even when disordered — they use
            // the raw encoding, not the monotone delta codec.
            Request::AppendLate {
                track: 42,
                backfill: false,
                points: vec![
                    TimedPoint::new(3.0, -1.0, 90.0),
                    TimedPoint::new(0.5, 2.0, 12.0),
                    TimedPoint::new(-7.0, 4.0, 55.5),
                ],
            },
            Request::AppendLate {
                track: 7,
                backfill: true,
                points: points(10),
            },
            Request::AppendLate {
                track: 0,
                backfill: false,
                points: Vec::new(),
            },
            Request::Subscribe {
                track: Some(9),
                bbox: None,
            },
            Request::Subscribe {
                track: None,
                bbox: Some([-10.0, -10.0, 10.0, 10.0]),
            },
            Request::Flush,
            Request::Query(QuerySpec {
                track: Some(7),
                from: f64::NEG_INFINITY,
                to: 1234.5,
                bbox: Some([0.0, -5.0, 100.0, 95.0]),
            }),
            Request::Query(QuerySpec {
                track: None,
                from: 0.0,
                to: f64::INFINITY,
                bbox: None,
            }),
            Request::Stats,
            Request::Metrics { prom: false },
            Request::Metrics { prom: true },
            Request::TraceDump {
                last: None,
                conn: None,
            },
            Request::TraceDump {
                last: Some(100),
                conn: Some(7),
            },
            Request::Shutdown,
        ];
        for request in requests {
            let payload = request.encode().unwrap();
            assert_eq!(Request::decode(&payload).unwrap(), request);
        }
    }

    #[test]
    fn every_reply_round_trips() {
        let replies = [
            Reply::HelloOk {
                protocol: PROTOCOL_VERSION,
                workers: 4,
            },
            Reply::Appended {
                track: 9,
                points: 128,
            },
            Reply::LateAppended {
                track: 9,
                points: 16,
            },
            Reply::Subscribed,
            Reply::SubPoints {
                track: 11,
                points: points(5),
            },
            Reply::SubPoints {
                track: 12,
                points: Vec::new(),
            },
            Reply::SubEnd,
            Reply::Flushed,
            Reply::QueryResult(QueryReport {
                slices: vec![
                    TrackSlice {
                        track: 1,
                        points: points(20),
                    },
                    TrackSlice {
                        track: 5,
                        points: points(3),
                    },
                ],
                shards_pruned: 3,
                hot_points: 17,
                candidate_records: 40,
                decoded_records: 12,
            }),
            Reply::StatsReply(StatsReport {
                stats: DecisionStats {
                    points: 1000,
                    trivial: 600,
                    by_bounds: 300,
                    full_scans: 10,
                    warmup_scans: 50,
                    aggressive_cuts: 40,
                    segments: 12,
                },
                shards: vec![
                    ShardStat {
                        shard: 0,
                        tracks: 3,
                        submitted_points: 500,
                        dead: false,
                    },
                    ShardStat {
                        shard: 1,
                        tracks: 2,
                        submitted_points: 500,
                        dead: true,
                    },
                ],
                connections: 4,
                appended_points: 1000,
                uptime_s: 3601,
                live_connections: 3,
                peak_connections: 9,
                rejected_connections: 2,
            }),
            Reply::ShuttingDown {
                connections: 2,
                appended_points: 999,
            },
            Reply::MetricsReply {
                text: "net_frames_total 12\nnet_request_us_append_p99 850\n".to_string(),
            },
            Reply::TraceReply {
                dropped: 0,
                events: Vec::new(),
            },
            Reply::TraceReply {
                dropped: 12,
                events: vec![
                    TraceEvent {
                        seq: 12,
                        at_us: 1_000,
                        kind: TraceEventKind::Accept,
                        conn: 1,
                        value: 1,
                    },
                    TraceEvent {
                        seq: 13,
                        at_us: 1_250,
                        kind: TraceEventKind::FrameDecode,
                        conn: 1,
                        value: 512,
                    },
                    TraceEvent {
                        seq: 14,
                        at_us: u64::MAX,
                        kind: TraceEventKind::Evict,
                        conn: 0,
                        value: 80,
                    },
                ],
            },
            Reply::Error {
                code: ErrorCode::BadRequest,
                message: "timestamp at index 3 goes backwards".to_string(),
            },
            Reply::Error {
                code: ErrorCode::TooLate,
                message: "t=4 is more than 30s behind the watermark 100".to_string(),
            },
        ];
        for reply in replies {
            let payload = reply.encode().unwrap();
            assert_eq!(Reply::decode(&payload).unwrap(), reply);
        }
    }

    #[test]
    fn metrics_request_stays_version_one_compatible() {
        // The native-format request is byte-identical to the old bare
        // tag, and the bare tag still decodes.
        let native = Request::Metrics { prom: false }.encode().unwrap();
        assert_eq!(native, vec![TAG_METRICS]);
        assert_eq!(
            Request::decode(&[TAG_METRICS]).unwrap(),
            Request::Metrics { prom: false }
        );
        let prom = Request::Metrics { prom: true }.encode().unwrap();
        assert_eq!(prom, vec![TAG_METRICS, 1]);
    }

    #[test]
    fn trace_reply_rejects_unknown_kind_bytes() {
        let mut payload = Reply::TraceReply {
            dropped: 0,
            events: vec![TraceEvent {
                seq: 0,
                at_us: 0,
                kind: TraceEventKind::Accept,
                conn: 0,
                value: 0,
            }],
        }
        .encode()
        .unwrap();
        // The kind byte sits after tag + dropped + count + seq + at_us.
        let kind_at = payload.len() - 3;
        assert_eq!(payload[kind_at], TraceEventKind::Accept as u8);
        payload[kind_at] = 0xEE;
        assert!(matches!(
            Reply::decode(&payload),
            Err(WireError::UnknownTag { tag: 0xEE })
        ));
    }

    #[test]
    fn frames_round_trip_through_readers() {
        let payload = Request::Append {
            track: 3,
            points: points(100),
        }
        .encode()
        .unwrap();
        let framed = frame_to_vec(&payload);
        let (decoded, consumed) = decode_frame(&framed).unwrap();
        assert_eq!(decoded, payload);
        assert_eq!(consumed, framed.len());
        let mut cursor = &framed[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_and_corrupt_frames_are_typed_errors() {
        let payload = Request::Stats.encode().unwrap();
        let framed = frame_to_vec(&payload);
        // Torn anywhere: header, payload, trailer.
        for cut in [1, HEADER_BYTES - 1, HEADER_BYTES, framed.len() - 1] {
            assert!(
                matches!(decode_frame(&framed[..cut]), Err(WireError::Torn { .. })),
                "cut {cut}"
            );
            let mut cursor = &framed[..cut];
            assert!(matches!(
                read_frame(&mut cursor),
                Err(FrameReadError::Wire(WireError::Torn { .. }))
            ));
        }
        // Bad magic.
        let mut bad = framed.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::BadMagic { .. })
        ));
        // Oversized length prefix.
        let mut huge = framed.clone();
        huge[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&huge),
            Err(WireError::Oversized { .. })
        ));
        // Corrupted payload → CRC mismatch.
        let mut flipped = framed.clone();
        flipped[HEADER_BYTES] ^= 0x40;
        assert!(matches!(
            decode_frame(&flipped),
            Err(WireError::BadCrc { .. })
        ));
        let mut cursor = &flipped[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameReadError::Wire(WireError::BadCrc { .. }))
        ));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        assert!(matches!(
            Request::decode(&[0x77]),
            Err(WireError::UnknownTag { tag: 0x77 })
        ));
        assert!(matches!(
            Reply::decode(&[0x02]),
            Err(WireError::UnknownTag { tag: 0x02 })
        ));
        let mut payload = Request::Flush.encode().unwrap();
        payload.push(0xAB);
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::TrailingBytes { extra: 1 })
        );
        // An Error reply carrying a code byte from a future protocol
        // revision names the real problem, not a fake truncation.
        let mut error = Reply::Error {
            code: ErrorCode::Internal,
            message: "x".to_string(),
        }
        .encode()
        .unwrap();
        error[1] = 99;
        assert_eq!(
            Reply::decode(&error),
            Err(WireError::UnknownErrorCode { code: 99 })
        );
    }

    #[test]
    fn columnar_append_fast_path_mirrors_the_row_path() {
        let pts = points(80);
        let row_payload = Request::Append {
            track: 99,
            points: pts.clone(),
        }
        .encode()
        .unwrap();
        // Decode fast path: same track, same values, reusable scratch.
        let mut batch = ColumnarBatch::new();
        let track = decode_append_columns(&row_payload, &mut batch).unwrap();
        assert_eq!(track, Some(99));
        assert_eq!(batch.to_points(), pts);
        batch.clear();
        // Encode fast path: byte-identical payload.
        let col_payload = encode_append_columns(99, &ColumnarBatch::from_points(&pts)).unwrap();
        assert_eq!(col_payload, row_payload);
        // Non-Append tags fall through untouched.
        let other = Request::Stats.encode().unwrap();
        assert_eq!(decode_append_columns(&other, &mut batch).unwrap(), None);
        assert!(batch.is_empty());
        // Trailing bytes are rejected exactly like the row path.
        let mut trailing = row_payload.clone();
        trailing.push(0xCD);
        assert_eq!(
            decode_append_columns(&trailing, &mut batch),
            Err(WireError::TrailingBytes { extra: 1 })
        );
        assert!(matches!(
            Request::decode(&trailing),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn non_monotonic_append_batches_fail_at_encode_time() {
        let request = Request::Append {
            track: 1,
            points: vec![
                TimedPoint::new(0.0, 0.0, 10.0),
                TimedPoint::new(1.0, 0.0, 5.0),
            ],
        };
        assert!(matches!(request.encode(), Err(WireError::Codec(_))));
    }
}
