//! The load generator: seeded, reproducible multi-connection ingest
//! against a running server.
//!
//! Workloads are generated exactly like `bqs fleet`'s — session `t`
//! walks with seed `seed + t` ([`session_trace`]) — so a network run
//! and an in-process [`ParallelFleet`](bqs_core::fleet::ParallelFleet)
//! run with the same seed compress *identically*: per track, the spill
//! tree bytes and every query answer match byte for byte. That
//! equivalence is the subsystem's acceptance property
//! (`tests/net_equivalence.rs`).
//!
//! Tracks are partitioned across connections (`track % connections`);
//! each connection thread interleaves its tracks round-robin in
//! [`LoadgenConfig::batch`]-point `Append` frames. Per-track point
//! order is preserved inside one connection, which is all the fleet's
//! interleaving-equivalence guarantee needs — cross-track arrival
//! order is deliberately left to scheduling.

use crate::client::{BqsClient, ShutdownAck};
use crate::error::NetError;
use bqs_geo::TimedPoint;
use bqs_obs::{elapsed_us, Histogram, HistogramSnapshot};
use bqs_sim::{RandomWalkConfig, RandomWalkModel};
use std::time::Instant;

/// Configuration of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Simulated tracker sessions (track ids `0..sessions`).
    pub sessions: usize,
    /// Points per session.
    pub points: usize,
    /// Base RNG seed; session `t` walks with seed `seed + t`.
    pub seed: u64,
    /// Concurrent client connections; tracks are partitioned by
    /// `track % connections`.
    pub connections: usize,
    /// Points per `Append` frame.
    pub batch: usize,
    /// Send `Shutdown` after the load completes. With `sessions` or
    /// `points` at zero this becomes pure-shutdown mode: no ingest,
    /// just the shutdown connection.
    pub shutdown: bool,
    /// Bounded out-of-order delivery, in seconds. Each session's live
    /// points are emitted through a seeded bounded shuffle
    /// ([`disorder_trace`]) so no point arrives more than this many
    /// seconds behind an already-delivered one. Requires the server's
    /// `--lateness` window to be at least this large, or batches come
    /// back `too-late`. Also arms one guaranteed-too-late probe per
    /// session. `0` keeps strict in-order delivery.
    pub disorder: f64,
    /// Ship each session's oldest third through the durable backfill
    /// path (`AppendLate` with the backfill flag) *after* its live
    /// remainder, exercising the flagged-record merge at query time.
    pub backfill: bool,
}

impl LoadgenConfig {
    /// A config with the workspace defaults (1 connection, 64-point
    /// batches, no shutdown).
    pub fn new(
        addr: impl Into<String>,
        sessions: usize,
        points: usize,
        seed: u64,
    ) -> LoadgenConfig {
        LoadgenConfig {
            addr: addr.into(),
            sessions,
            points,
            seed,
            connections: 1,
            batch: 64,
            shutdown: false,
            disorder: 0.0,
            backfill: false,
        }
    }
}

/// What a load-generation run accomplished.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Points sent (and acknowledged) across all connections.
    pub points_sent: u64,
    /// Frames written across all ingest connections (handshakes and
    /// flushes included; the shutdown connection is not).
    pub frames_sent: u64,
    /// Bytes written across all ingest connections, framing included.
    pub bytes_sent: u64,
    /// Sessions driven.
    pub sessions: usize,
    /// Connections used.
    pub connections: usize,
    /// Wall-clock seconds for the ingest phase.
    pub elapsed: f64,
    /// Client-observed `Append` round-trip latency (µs), merged across
    /// every connection thread.
    pub append_latency: HistogramSnapshot,
    /// Client-observed `Flush` round-trip latency (µs).
    pub flush_latency: HistogramSnapshot,
    /// The server's shutdown acknowledgement, when one was requested.
    pub shutdown: Option<ShutdownAck>,
    /// Ground truth: accepted points that arrived behind their track's
    /// running maximum timestamp — what the server's
    /// `net_late_accepted_points_total` must equal exactly.
    pub late_points: u64,
    /// Ground truth: points shipped through the backfill path
    /// (`net_backfilled_points_total`).
    pub backfill_points: u64,
    /// Ground truth: points refused as beyond the lateness window
    /// (`net_too_late_points_total`) — the armed probes.
    pub too_late_points: u64,
}

impl LoadgenReport {
    /// Ingest throughput in points per second.
    pub fn points_per_sec(&self) -> f64 {
        self.points_sent as f64 / self.elapsed.max(1e-9)
    }
}

/// The deterministic trace of session `track` for a given base seed —
/// the same generator `bqs fleet` drives in process, which is what
/// makes seeded network and in-process runs comparable byte for byte.
pub fn session_trace(seed: u64, track: u64, points: usize) -> Vec<TimedPoint> {
    let cfg = RandomWalkConfig {
        samples: points,
        ..RandomWalkConfig::default()
    };
    RandomWalkModel::new(cfg)
        .generate(seed.wrapping_add(track))
        .points
}

/// A seeded bounded shuffle of a time-sorted trace: points may be
/// delivered early, but never more than `window` seconds behind a point
/// already delivered. At every step the emitter picks uniformly (seeded
/// LCG) among the not-yet-emitted points within `window` seconds of the
/// earliest one still pending — which is exactly the admissibility
/// envelope of a server running `--lateness window`.
pub fn disorder_trace(trace: &[TimedPoint], window: f64, seed: u64) -> Vec<TimedPoint> {
    if window <= 0.0 || trace.len() < 2 {
        return trace.to_vec();
    }
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut avail: Vec<usize> = (0..trace.len()).collect();
    let mut out = Vec::with_capacity(trace.len());
    while !avail.is_empty() {
        let horizon = trace[avail[0]].t + window;
        let k = avail.partition_point(|&i| trace[i].t <= horizon);
        let pick = (next() as usize) % k;
        out.push(trace[avail.remove(pick)]);
    }
    out
}

/// Per-connection totals, ground-truth lateness counters included.
#[derive(Default)]
struct ConnTotals {
    sent: u64,
    frames: u64,
    bytes: u64,
    late: u64,
    backfill: u64,
    too_late: u64,
}

/// Drives one connection's share of the workload: its tracks advance
/// round-robin, one batch at a time, so many sessions stay open
/// concurrently on the server. With `backfill`, each track's oldest
/// third follows its live remainder through the backfill path; with
/// `disorder`, live delivery is disordered within the window and each
/// track gets one guaranteed-too-late probe.
fn drive_connection(
    config: &LoadgenConfig,
    tracks: &[u64],
    traces: &[Vec<TimedPoint>],
    append_latency: &Histogram,
    flush_latency: &Histogram,
) -> Result<ConnTotals, NetError> {
    let batch = config.batch;
    let mut client = BqsClient::connect(&config.addr)?;
    let mut totals = ConnTotals::default();
    // The live (possibly disordered) delivery sequence per track, plus
    // the old slice held back for the backfill pass.
    let mut live: Vec<Vec<TimedPoint>> = Vec::with_capacity(tracks.len());
    let mut old: Vec<&[TimedPoint]> = Vec::with_capacity(tracks.len());
    for &track in tracks {
        let trace = &traces[track as usize];
        let cut = if config.backfill { trace.len() / 3 } else { 0 };
        let mut points = disorder_trace(&trace[cut..], config.disorder, config.seed ^ track);
        // The codec's time invariant still holds per frame: each
        // batch-sized chunk is sorted before it is sent, so only the
        // cross-batch order carries the disorder.
        for chunk in points.chunks_mut(batch.max(1)) {
            chunk.sort_by(|a, b| a.t.total_cmp(&b.t));
        }
        live.push(points);
        old.push(&trace[..cut]);
    }
    // Ground truth mirrors the server's per-track watermark walk over
    // the exact delivery order.
    let mut watermark: Vec<f64> = vec![f64::NEG_INFINITY; tracks.len()];
    let mut offset = 0usize;
    let longest = live.iter().map(Vec::len).max().unwrap_or(0);
    while offset < longest {
        for (slot, &track) in tracks.iter().enumerate() {
            let points = &live[slot];
            if offset >= points.len() {
                continue;
            }
            let end = (offset + batch).min(points.len());
            let start = Instant::now();
            totals.sent += client.append(track, &points[offset..end])?;
            append_latency.record(elapsed_us(start));
            let wm = &mut watermark[slot];
            for p in &points[offset..end] {
                if wm.is_finite() && p.t < *wm {
                    totals.late += 1;
                }
                *wm = wm.max(p.t);
            }
        }
        offset += batch;
    }
    for (slot, &track) in tracks.iter().enumerate() {
        for chunk in old[slot].chunks(batch.max(1)) {
            totals.backfill += client.append_backfill(track, chunk)?;
        }
        if config.disorder > 0.0 && watermark[slot].is_finite() {
            // A probe a billion seconds behind the watermark: too late
            // under any realistic window, and refused without touching
            // the track — the typed error is the assertion.
            let probe = TimedPoint {
                t: watermark[slot] - 1e9,
                ..traces[track as usize][0]
            };
            match client.append_late(track, &[probe]) {
                Err(NetError::Server {
                    code: crate::wire::ErrorCode::TooLate,
                    ..
                }) => totals.too_late += 1,
                Ok(_) => {
                    return Err(NetError::Config(
                        "too-late probe was accepted; is the server's --lateness over 1e9 seconds?"
                            .to_string(),
                    ))
                }
                Err(e) => return Err(e),
            }
        }
    }
    let start = Instant::now();
    client.flush()?;
    flush_latency.record(elapsed_us(start));
    let (frames, bytes) = client.io_counters();
    totals.frames = frames;
    totals.bytes = bytes;
    Ok(totals)
}

/// Runs the load generator: generates every session's trace, fans the
/// sessions out over `connections` client threads, optionally shuts
/// the server down, and reports throughput.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, NetError> {
    if config.sessions == 0 || config.points == 0 {
        if !config.shutdown {
            return Err(NetError::Config(
                "loadgen needs --sessions/--points/--connections/--batch ≥ 1".to_string(),
            ));
        }
        // Pure-shutdown mode (`--sessions 0 --shutdown`): no ingest,
        // one connection asking the server to drain and exit. Useful
        // when the ingest ran earlier and re-running it would rewind
        // the tracks' time watermarks.
        let shutdown = Some(BqsClient::connect(&config.addr)?.shutdown()?);
        return Ok(LoadgenReport {
            points_sent: 0,
            frames_sent: 0,
            bytes_sent: 0,
            sessions: 0,
            connections: 0,
            elapsed: 0.0,
            append_latency: HistogramSnapshot::new(),
            flush_latency: HistogramSnapshot::new(),
            shutdown,
            late_points: 0,
            backfill_points: 0,
            too_late_points: 0,
        });
    }
    if config.connections == 0 || config.batch == 0 {
        return Err(NetError::Config(
            "loadgen needs --sessions/--points/--connections/--batch ≥ 1".to_string(),
        ));
    }
    if !(config.disorder.is_finite() && config.disorder >= 0.0) {
        return Err(NetError::Config(format!(
            "--disorder must be a finite number of seconds ≥ 0, got {}",
            config.disorder
        )));
    }
    let traces: Vec<Vec<TimedPoint>> = (0..config.sessions)
        .map(|t| session_trace(config.seed, t as u64, config.points))
        .collect();
    let connections = config.connections.min(config.sessions);
    let partitions: Vec<Vec<u64>> = (0..connections)
        .map(|c| {
            (0..config.sessions as u64)
                .filter(|t| (*t as usize) % connections == c)
                .collect()
        })
        .collect();

    // Shared lock-free histograms: every connection thread records into
    // the same cells, so the report's percentiles cover the whole run.
    let append_latency = Histogram::new();
    let flush_latency = Histogram::new();
    let start = Instant::now();
    let mut results: Vec<Result<ConnTotals, NetError>> = Vec::with_capacity(connections);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tracks in &partitions {
            let traces = &traces;
            let append_latency = &append_latency;
            let flush_latency = &flush_latency;
            handles.push(scope.spawn(move || {
                drive_connection(config, tracks, traces, append_latency, flush_latency)
            }));
        }
        for handle in handles {
            results.push(
                handle
                    .join()
                    .unwrap_or_else(|_| Err(NetError::Config("loadgen thread panicked".into()))),
            );
        }
    });
    let mut totals = ConnTotals::default();
    for result in results {
        let conn = result?;
        totals.sent += conn.sent;
        totals.frames += conn.frames;
        totals.bytes += conn.bytes;
        totals.late += conn.late;
        totals.backfill += conn.backfill;
        totals.too_late += conn.too_late;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let shutdown = if config.shutdown {
        Some(BqsClient::connect(&config.addr)?.shutdown()?)
    } else {
        None
    };
    Ok(LoadgenReport {
        points_sent: totals.sent,
        frames_sent: totals.frames,
        bytes_sent: totals.bytes,
        sessions: config.sessions,
        connections,
        elapsed,
        append_latency: append_latency.snapshot(),
        flush_latency: flush_latency.snapshot(),
        shutdown,
        late_points: totals.late,
        backfill_points: totals.backfill,
        too_late_points: totals.too_late,
    })
}
