//! The load generator: seeded, reproducible multi-connection ingest
//! against a running server.
//!
//! Workloads are generated exactly like `bqs fleet`'s — session `t`
//! walks with seed `seed + t` ([`session_trace`]) — so a network run
//! and an in-process [`ParallelFleet`](bqs_core::fleet::ParallelFleet)
//! run with the same seed compress *identically*: per track, the spill
//! tree bytes and every query answer match byte for byte. That
//! equivalence is the subsystem's acceptance property
//! (`tests/net_equivalence.rs`).
//!
//! Tracks are partitioned across connections (`track % connections`);
//! each connection thread interleaves its tracks round-robin in
//! [`LoadgenConfig::batch`]-point `Append` frames. Per-track point
//! order is preserved inside one connection, which is all the fleet's
//! interleaving-equivalence guarantee needs — cross-track arrival
//! order is deliberately left to scheduling.

use crate::client::{BqsClient, ShutdownAck};
use crate::error::NetError;
use bqs_geo::TimedPoint;
use bqs_obs::{elapsed_us, Histogram, HistogramSnapshot};
use bqs_sim::{RandomWalkConfig, RandomWalkModel};
use std::time::Instant;

/// Configuration of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Simulated tracker sessions (track ids `0..sessions`).
    pub sessions: usize,
    /// Points per session.
    pub points: usize,
    /// Base RNG seed; session `t` walks with seed `seed + t`.
    pub seed: u64,
    /// Concurrent client connections; tracks are partitioned by
    /// `track % connections`.
    pub connections: usize,
    /// Points per `Append` frame.
    pub batch: usize,
    /// Send `Shutdown` after the load completes. With `sessions` or
    /// `points` at zero this becomes pure-shutdown mode: no ingest,
    /// just the shutdown connection.
    pub shutdown: bool,
}

impl LoadgenConfig {
    /// A config with the workspace defaults (1 connection, 64-point
    /// batches, no shutdown).
    pub fn new(
        addr: impl Into<String>,
        sessions: usize,
        points: usize,
        seed: u64,
    ) -> LoadgenConfig {
        LoadgenConfig {
            addr: addr.into(),
            sessions,
            points,
            seed,
            connections: 1,
            batch: 64,
            shutdown: false,
        }
    }
}

/// What a load-generation run accomplished.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Points sent (and acknowledged) across all connections.
    pub points_sent: u64,
    /// Frames written across all ingest connections (handshakes and
    /// flushes included; the shutdown connection is not).
    pub frames_sent: u64,
    /// Bytes written across all ingest connections, framing included.
    pub bytes_sent: u64,
    /// Sessions driven.
    pub sessions: usize,
    /// Connections used.
    pub connections: usize,
    /// Wall-clock seconds for the ingest phase.
    pub elapsed: f64,
    /// Client-observed `Append` round-trip latency (µs), merged across
    /// every connection thread.
    pub append_latency: HistogramSnapshot,
    /// Client-observed `Flush` round-trip latency (µs).
    pub flush_latency: HistogramSnapshot,
    /// The server's shutdown acknowledgement, when one was requested.
    pub shutdown: Option<ShutdownAck>,
}

impl LoadgenReport {
    /// Ingest throughput in points per second.
    pub fn points_per_sec(&self) -> f64 {
        self.points_sent as f64 / self.elapsed.max(1e-9)
    }
}

/// The deterministic trace of session `track` for a given base seed —
/// the same generator `bqs fleet` drives in process, which is what
/// makes seeded network and in-process runs comparable byte for byte.
pub fn session_trace(seed: u64, track: u64, points: usize) -> Vec<TimedPoint> {
    let cfg = RandomWalkConfig {
        samples: points,
        ..RandomWalkConfig::default()
    };
    RandomWalkModel::new(cfg)
        .generate(seed.wrapping_add(track))
        .points
}

/// Drives one connection's share of the workload: its tracks advance
/// round-robin, one batch at a time, so many sessions stay open
/// concurrently on the server.
fn drive_connection(
    addr: &str,
    tracks: &[u64],
    traces: &[Vec<TimedPoint>],
    batch: usize,
    append_latency: &Histogram,
    flush_latency: &Histogram,
) -> Result<(u64, u64, u64), NetError> {
    let mut client = BqsClient::connect(addr)?;
    let mut sent = 0u64;
    let mut offset = 0usize;
    let longest = tracks
        .iter()
        .map(|&t| traces[t as usize].len())
        .max()
        .unwrap_or(0);
    while offset < longest {
        for &track in tracks {
            let trace = &traces[track as usize];
            if offset >= trace.len() {
                continue;
            }
            let end = (offset + batch).min(trace.len());
            let start = Instant::now();
            sent += client.append(track, &trace[offset..end])?;
            append_latency.record(elapsed_us(start));
        }
        offset += batch;
    }
    let start = Instant::now();
    client.flush()?;
    flush_latency.record(elapsed_us(start));
    let (frames, bytes) = client.io_counters();
    Ok((sent, frames, bytes))
}

/// Runs the load generator: generates every session's trace, fans the
/// sessions out over `connections` client threads, optionally shuts
/// the server down, and reports throughput.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, NetError> {
    if config.sessions == 0 || config.points == 0 {
        if !config.shutdown {
            return Err(NetError::Config(
                "loadgen needs --sessions/--points/--connections/--batch ≥ 1".to_string(),
            ));
        }
        // Pure-shutdown mode (`--sessions 0 --shutdown`): no ingest,
        // one connection asking the server to drain and exit. Useful
        // when the ingest ran earlier and re-running it would rewind
        // the tracks' time watermarks.
        let shutdown = Some(BqsClient::connect(&config.addr)?.shutdown()?);
        return Ok(LoadgenReport {
            points_sent: 0,
            frames_sent: 0,
            bytes_sent: 0,
            sessions: 0,
            connections: 0,
            elapsed: 0.0,
            append_latency: HistogramSnapshot::new(),
            flush_latency: HistogramSnapshot::new(),
            shutdown,
        });
    }
    if config.connections == 0 || config.batch == 0 {
        return Err(NetError::Config(
            "loadgen needs --sessions/--points/--connections/--batch ≥ 1".to_string(),
        ));
    }
    let traces: Vec<Vec<TimedPoint>> = (0..config.sessions)
        .map(|t| session_trace(config.seed, t as u64, config.points))
        .collect();
    let connections = config.connections.min(config.sessions);
    let partitions: Vec<Vec<u64>> = (0..connections)
        .map(|c| {
            (0..config.sessions as u64)
                .filter(|t| (*t as usize) % connections == c)
                .collect()
        })
        .collect();

    // Shared lock-free histograms: every connection thread records into
    // the same cells, so the report's percentiles cover the whole run.
    let append_latency = Histogram::new();
    let flush_latency = Histogram::new();
    let start = Instant::now();
    let mut results: Vec<Result<(u64, u64, u64), NetError>> = Vec::with_capacity(connections);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tracks in &partitions {
            let addr = config.addr.as_str();
            let traces = &traces;
            let append_latency = &append_latency;
            let flush_latency = &flush_latency;
            handles.push(scope.spawn(move || {
                drive_connection(
                    addr,
                    tracks,
                    traces,
                    config.batch,
                    append_latency,
                    flush_latency,
                )
            }));
        }
        for handle in handles {
            results.push(
                handle
                    .join()
                    .unwrap_or_else(|_| Err(NetError::Config("loadgen thread panicked".into()))),
            );
        }
    });
    let mut points_sent = 0u64;
    let mut frames_sent = 0u64;
    let mut bytes_sent = 0u64;
    for result in results {
        let (points, frames, bytes) = result?;
        points_sent += points;
        frames_sent += frames;
        bytes_sent += bytes;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let shutdown = if config.shutdown {
        Some(BqsClient::connect(&config.addr)?.shutdown()?)
    } else {
        None
    };
    Ok(LoadgenReport {
        points_sent,
        frames_sent,
        bytes_sent,
        sessions: config.sessions,
        connections,
        elapsed,
        append_latency: append_latency.snapshot(),
        flush_latency: flush_latency.snapshot(),
        shutdown,
    })
}
