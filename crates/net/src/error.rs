//! The crate-wide error type: everything a server, client or load
//! generator can fail with, as one typed enum.

use crate::wire::{ErrorCode, FrameReadError, WireError};
use bqs_tlog::TlogError;
use std::fmt;

/// Everything that can go wrong in the serving subsystem.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed.
    Io {
        /// What was being attempted ("bind 127.0.0.1:0", "connect …").
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The peer sent bytes that violate the wire protocol.
    Wire(WireError),
    /// The server answered a request with a typed error.
    Server {
        /// The error code the server sent.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The peer answered with a well-formed but out-of-place message.
    UnexpectedReply {
        /// What the caller was waiting for.
        expected: &'static str,
        /// What arrived instead.
        found: String,
    },
    /// The peer closed the connection while a reply was outstanding.
    ConnectionClosed {
        /// What the caller was waiting for.
        expected: &'static str,
    },
    /// The handshake failed: incompatible protocol versions.
    Handshake {
        /// The version byte the peer presented.
        found: u8,
    },
    /// The durable layer (spill logs, manifest, query engine) failed.
    Tlog(TlogError),
    /// A fleet worker shard panicked; its sessions are lost.
    Fleet {
        /// The dead shard.
        shard: usize,
        /// The stringified panic.
        panic: String,
        /// Sessions poisoned with the shard.
        sessions: usize,
    },
    /// Spilling buffered session output to the log failed at shutdown.
    Spill(String),
    /// A configuration value was invalid (bad address, zero counts, …).
    Config(String),
}

impl NetError {
    /// An I/O error with its operation context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> NetError {
        NetError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { context, source } => write!(f, "{context}: {source}"),
            NetError::Wire(e) => write!(f, "wire protocol: {e}"),
            NetError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            NetError::UnexpectedReply { expected, found } => {
                write!(f, "expected {expected}, got {found}")
            }
            NetError::ConnectionClosed { expected } => {
                write!(f, "connection closed while waiting for {expected}")
            }
            NetError::Handshake { found } => write!(
                f,
                "protocol version mismatch: peer speaks {found}, this build speaks {}",
                crate::wire::PROTOCOL_VERSION
            ),
            NetError::Tlog(e) => write!(f, "storage: {e}"),
            NetError::Fleet {
                shard,
                panic,
                sessions,
            } => write!(
                f,
                "fleet worker shard {shard} panicked: {panic} ({sessions} sessions poisoned)"
            ),
            NetError::Spill(msg) => write!(f, "spill at shutdown: {msg}"),
            NetError::Config(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            NetError::Wire(e) => Some(e),
            NetError::Tlog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> NetError {
        NetError::Wire(e)
    }
}

impl From<TlogError> for NetError {
    fn from(e: TlogError) -> NetError {
        NetError::Tlog(e)
    }
}

impl From<FrameReadError> for NetError {
    fn from(e: FrameReadError) -> NetError {
        match e {
            FrameReadError::Io(source) => NetError::io("read frame", source),
            FrameReadError::Wire(w) => NetError::Wire(w),
        }
    }
}
