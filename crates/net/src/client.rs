//! [`BqsClient`] — the blocking client half of the wire protocol.
//!
//! One request, one reply, in order, over one TCP connection; the
//! handshake (`Hello`/`HelloOk`) runs inside [`BqsClient::connect`], so
//! a connected client is always version-compatible. Server-side
//! failures come back as [`NetError::Server`] with the typed
//! [`ErrorCode`](crate::wire::ErrorCode) the server sent.

use crate::error::NetError;
use crate::wire::{
    read_frame, write_frame, QueryReport, QuerySpec, Reply, Request, StatsReport, HEADER_BYTES,
    PROTOCOL_VERSION,
};
use bqs_geo::TimedPoint;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

/// Totals acknowledged by the server when it accepted a shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownAck {
    /// Connections the server accepted over its lifetime.
    pub connections: u64,
    /// Points the server accepted over its lifetime.
    pub appended_points: u64,
}

/// A blocking connection to a `bqs serve` instance.
///
/// See [`Server`](crate::Server) for a round-trip example.
pub struct BqsClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Worker shards the server reported in the handshake.
    workers: u64,
    /// Frames this client has written (handshake included).
    frames_sent: u64,
    /// Bytes this client has written, framing included.
    bytes_sent: u64,
}

impl BqsClient {
    /// Connects and performs the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> Result<BqsClient, NetError> {
        let stream =
            TcpStream::connect(&addr).map_err(|e| NetError::io(format!("connect {addr}"), e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::io("set_nodelay", e))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| NetError::io("clone stream", e))?,
        );
        let mut client = BqsClient {
            writer: stream,
            reader,
            workers: 0,
            frames_sent: 0,
            bytes_sent: 0,
        };
        match client.call(
            &Request::Hello {
                protocol: PROTOCOL_VERSION,
            },
            "HelloOk",
        )? {
            Reply::HelloOk { protocol, workers } => {
                if protocol != PROTOCOL_VERSION {
                    return Err(NetError::Handshake { found: protocol });
                }
                client.workers = workers;
                Ok(client)
            }
            other => Err(unexpected("HelloOk", &other)),
        }
    }

    /// Worker shards behind the connected server.
    pub fn workers(&self) -> u64 {
        self.workers
    }

    /// `(frames, bytes)` this client has written to the server, the
    /// `Hello` handshake and framing overhead included — the client's
    /// half of the ground truth the server-side `net_bytes_in_total` /
    /// `net_frames_total` counters must account for exactly.
    pub fn io_counters(&self) -> (u64, u64) {
        (self.frames_sent, self.bytes_sent)
    }

    /// Sends one request and reads its reply; a typed server error
    /// becomes `Err(NetError::Server)`.
    fn call(&mut self, request: &Request, expected: &'static str) -> Result<Reply, NetError> {
        let payload = request.encode()?;
        write_frame(&mut self.writer, &payload).map_err(|e| NetError::io("send request", e))?;
        self.frames_sent += 1;
        self.bytes_sent += (HEADER_BYTES + payload.len() + 4) as u64;
        match read_frame(&mut self.reader)? {
            Some(payload) => match Reply::decode(&payload)? {
                Reply::Error { code, message } => Err(NetError::Server { code, message }),
                reply => Ok(reply),
            },
            None => Err(NetError::ConnectionClosed { expected }),
        }
    }

    /// Appends a time-ordered batch of `track`'s points; returns the
    /// count the server accepted.
    pub fn append(&mut self, track: u64, points: &[TimedPoint]) -> Result<u64, NetError> {
        match self.call(
            &Request::Append {
                track,
                points: points.to_vec(),
            },
            "Appended",
        )? {
            Reply::Appended { points, .. } => Ok(points),
            other => Err(unexpected("Appended", &other)),
        }
    }

    /// Appends a late batch of `track`'s points. The batch may be
    /// arbitrarily disordered; every point must land within the
    /// server's lateness window or the whole batch is refused with
    /// [`ErrorCode::TooLate`](crate::wire::ErrorCode::TooLate) (the
    /// connection survives a refusal).
    pub fn append_late(&mut self, track: u64, points: &[TimedPoint]) -> Result<u64, NetError> {
        self.late_call(track, false, points)
    }

    /// Appends a batch through the durable backfill path: no lateness
    /// window applies, the batch must be time-sorted within itself, and
    /// the points are written as flagged backfill records at server
    /// finalization (merged durable-wins at query time).
    pub fn append_backfill(&mut self, track: u64, points: &[TimedPoint]) -> Result<u64, NetError> {
        self.late_call(track, true, points)
    }

    fn late_call(
        &mut self,
        track: u64,
        backfill: bool,
        points: &[TimedPoint],
    ) -> Result<u64, NetError> {
        match self.call(
            &Request::AppendLate {
                track,
                backfill,
                points: points.to_vec(),
            },
            "LateAppended",
        )? {
            Reply::LateAppended { points, .. } => Ok(points),
            other => Err(unexpected("LateAppended", &other)),
        }
    }

    /// Turns this connection into a live subscription to kept points,
    /// optionally filtered to one track and/or a bounding box
    /// (`[x0, y0, x1, y1]`). Consumes the client: after `Subscribed`
    /// the connection only carries pushed frames.
    pub fn subscribe(
        mut self,
        track: Option<u64>,
        bbox: Option<[f64; 4]>,
    ) -> Result<Subscription, NetError> {
        match self.call(&Request::Subscribe { track, bbox }, "Subscribed")? {
            Reply::Subscribed => Ok(Subscription {
                reader: self.reader,
                _writer: self.writer,
                ended: false,
            }),
            other => Err(unexpected("Subscribed", &other)),
        }
    }

    /// Asks the server to ship every partially filled fleet batch.
    pub fn flush(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Flush, "Flushed")? {
            Reply::Flushed => Ok(()),
            other => Err(unexpected("Flushed", &other)),
        }
    }

    /// A unified hot/cold query. `track = None` queries every track;
    /// the bounds are inclusive and may be infinite.
    pub fn query_time_range(
        &mut self,
        track: Option<u64>,
        from: f64,
        to: f64,
    ) -> Result<QueryReport, NetError> {
        self.query(QuerySpec {
            track,
            from,
            to,
            bbox: None,
        })
    }

    /// A unified hot/cold query with a spatial filter
    /// (`[x0, y0, x1, y1]`, any two opposite corners).
    pub fn query_bbox(
        &mut self,
        track: Option<u64>,
        bbox: [f64; 4],
        from: f64,
        to: f64,
    ) -> Result<QueryReport, NetError> {
        self.query(QuerySpec {
            track,
            from,
            to,
            bbox: Some(bbox),
        })
    }

    /// A unified hot/cold query from an explicit [`QuerySpec`].
    pub fn query(&mut self, spec: QuerySpec) -> Result<QueryReport, NetError> {
        match self.call(&Request::Query(spec), "QueryResult")? {
            Reply::QueryResult(report) => Ok(report),
            other => Err(unexpected("QueryResult", &other)),
        }
    }

    /// Merged decision statistics plus per-shard counters.
    pub fn stats(&mut self) -> Result<StatsReport, NetError> {
        match self.call(&Request::Stats, "StatsReply")? {
            Reply::StatsReply(report) => Ok(report),
            other => Err(unexpected("StatsReply", &other)),
        }
    }

    /// The server's metrics catalog as sorted `name value` text lines
    /// (see `docs/observability.md`). Empty when the server runs
    /// without a metrics registry.
    pub fn metrics(&mut self) -> Result<String, NetError> {
        self.metrics_text(false)
    }

    /// The server's metrics catalog in the Prometheus text exposition
    /// format — the same payload `bqs serve --prom-addr` serves over
    /// HTTP. Empty when the server runs without a metrics registry.
    pub fn metrics_prom(&mut self) -> Result<String, NetError> {
        self.metrics_text(true)
    }

    fn metrics_text(&mut self, prom: bool) -> Result<String, NetError> {
        match self.call(&Request::Metrics { prom }, "MetricsReply")? {
            Reply::MetricsReply { text } => Ok(text),
            other => Err(unexpected("MetricsReply", &other)),
        }
    }

    /// The server's flight-recorder contents as `(dropped, events)`,
    /// optionally truncated to the most recent `last` events and/or
    /// filtered to one connection id. Empty when the server runs
    /// without a recorder.
    pub fn trace_dump(
        &mut self,
        last: Option<u64>,
        conn: Option<u64>,
    ) -> Result<(u64, Vec<bqs_obs::TraceEvent>), NetError> {
        match self.call(&Request::TraceDump { last, conn }, "TraceReply")? {
            Reply::TraceReply { dropped, events } => Ok((dropped, events)),
            other => Err(unexpected("TraceReply", &other)),
        }
    }

    /// Asks the server to drain, spill and exit; the connection is
    /// closed after the acknowledgement.
    pub fn shutdown(mut self) -> Result<ShutdownAck, NetError> {
        match self.call(&Request::Shutdown, "ShuttingDown")? {
            Reply::ShuttingDown {
                connections,
                appended_points,
            } => Ok(ShutdownAck {
                connections,
                appended_points,
            }),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

/// The receiving half of a live [`BqsClient::subscribe`] call.
///
/// Yields pushed batches until the server drains (`SubEnd`) or the
/// connection closes; dropping the subscription closes the connection,
/// which the server treats as a clean unsubscribe.
pub struct Subscription {
    reader: BufReader<TcpStream>,
    // Kept alive so the server sees the socket open until drop.
    _writer: TcpStream,
    ended: bool,
}

impl Subscription {
    /// Blocks for the next pushed batch of kept points, returned as
    /// `(track, points)`. `Ok(None)` once the stream has ended — the
    /// server sent `SubEnd` while draining, or closed the connection.
    #[allow(clippy::type_complexity)]
    pub fn next_batch(&mut self) -> Result<Option<(u64, Vec<TimedPoint>)>, NetError> {
        if self.ended {
            return Ok(None);
        }
        loop {
            let Some(payload) = read_frame(&mut self.reader)? else {
                self.ended = true;
                return Ok(None);
            };
            match Reply::decode(&payload)? {
                Reply::SubPoints { points, .. } if points.is_empty() => continue,
                Reply::SubPoints { track, points } => return Ok(Some((track, points))),
                Reply::SubEnd => {
                    self.ended = true;
                    return Ok(None);
                }
                Reply::Error { code, message } => {
                    self.ended = true;
                    return Err(NetError::Server { code, message });
                }
                other => return Err(unexpected("SubPoints", &other)),
            }
        }
    }
}

fn unexpected(expected: &'static str, found: &Reply) -> NetError {
    let name = match found {
        Reply::HelloOk { .. } => "HelloOk",
        Reply::Appended { .. } => "Appended",
        Reply::LateAppended { .. } => "LateAppended",
        Reply::Subscribed => "Subscribed",
        Reply::SubPoints { .. } => "SubPoints",
        Reply::SubEnd => "SubEnd",
        Reply::Flushed => "Flushed",
        Reply::QueryResult(_) => "QueryResult",
        Reply::StatsReply(_) => "StatsReply",
        Reply::MetricsReply { .. } => "MetricsReply",
        Reply::TraceReply { .. } => "TraceReply",
        Reply::ShuttingDown { .. } => "ShuttingDown",
        Reply::Error { .. } => "Error",
    };
    NetError::UnexpectedReply {
        expected,
        found: name.to_string(),
    }
}
