//! The serving runtime: an acceptor handing non-blocking sockets to a
//! small fixed pool of I/O threads, each multiplexing its share of the
//! connections via readiness polling and feeding one shared
//! [`ParallelFleet`] through the frame-grained submission path.
//!
//! ```text
//!                      ┌─ io thread 0: poller ── conns 0,2,4… ─┐
//!  clients ──► acceptor┼─ io thread 1: poller ── conns 1,3,5… ─┼─► Mutex<ParallelFleet>
//!   (TCP)    round-robin└─ …           (epoll/kqueue/fallback) ─┘        │
//!                                                                        ├─► worker shards ─► spill logs
//!                                                                        └─ snapshot() ─► QueryEngine (hot + cold)
//! ```
//!
//! * **Multiplexed ingest** — `--io-threads N` (default 4) I/O threads
//!   each run a level-triggered readiness loop (`polling::Poller`:
//!   epoll on Linux, kqueue on macOS, a portable round-robin fallback
//!   anywhere else). An `Append` frame is decoded straight into a
//!   columnar batch ([`decode_append_columns`]) — timestamps validated
//!   in one contiguous pass — and submitted as a whole run in **one**
//!   channel send ([`ParallelFleet::submit_run`]): no per-point
//!   hashing, no per-point dispatch, no thread per connection.
//!   `io_threads = 0` selects the legacy thread-per-connection runtime
//!   (same protocol, same semantics), kept for A/B comparison.
//! * **Backpressure end to end** — an I/O thread submits while holding
//!   the fleet lock; when a worker shard's bounded channel is full the
//!   send blocks, the I/O thread stops reading *all* its sockets, the
//!   kernel's TCP windows fill, and remote `append`s block. Per
//!   connection, replies that outpace the client gate further reads
//!   (`OUT_HIGH_WATERMARK`), so no unbounded queue exists anywhere on
//!   the path.
//! * **Bounded connection table** — beyond
//!   [`ServerConfig::max_connections`] an accepted socket receives one
//!   typed [`ErrorCode::OverCapacity`] error frame and is closed
//!   gracefully, instead of hanging in a backlog.
//! * **Queries are hot + cold** — `Query` takes a consistent
//!   [`ParallelFleet::snapshot`] (every point submitted before the
//!   request is visible) and merges it with the spill tree through
//!   [`QueryEngine`]; a mid-run answer for a closed track is exactly
//!   the answer the finished tree will give.
//! * **Graceful shutdown** — `Shutdown` stops the acceptor and starts
//!   the drain: in-flight frames complete (mid-frame connections get
//!   a 5 s `DRAIN_GRACE`), idle connections close, the fleet joins, every
//!   session spills, the tree `MANIFEST` is written — leaving a
//!   directory `bqs log verify` accepts.
//!
//! The runtime stays `std::net` + threads + a vendored poller shim: no
//! async runtime. What lands on disk is defined by the serial stack
//! below; `tests/net_equivalence.rs` proves network runs byte-identical
//! to in-process runs at any (connections, workers, io-threads).

use crate::error::NetError;
use crate::wire::{
    decode_append_columns, decode_frame, frame_to_vec, write_frame, ErrorCode, QueryReport,
    QuerySpec, Reply, Request, ShardStat, StatsReport, WireError, FRAME_MAGIC, HEADER_BYTES,
    MAX_FRAME_BYTES, PROTOCOL_VERSION, TAG_APPEND, TAG_FLUSH, TAG_QUERY, TAG_STATS,
};
use bqs_core::fleet::{
    worker_of, FleetConfig, FleetMetrics, FleetReorder, FleetSink, ParallelConfig, ParallelFleet,
    SessionReport, TooLate, TrackId,
};
use bqs_core::stream::DecisionStats;
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::{ColumnarBatch, TimedPoint};
use bqs_obs::{
    elapsed_us, Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, TraceEventKind,
};
use bqs_tlog::crc::crc32;
use bqs_tlog::{
    prepare_spill_logs, LogConfig, Manifest, QueryEngine, SpillMetrics, SpillSink, TimeRange,
    TrajectoryLog,
};
use polling::{source_of, Event, Poller};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long a connection may keep a frame in flight after shutdown
/// before the server stops waiting for it.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// The poll interval at which blocked reads re-check the shutdown flag
/// (legacy thread-per-connection runtime).
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// An I/O thread's poller timeout: the latency bound on noticing the
/// shutdown flag when no wake byte arrives. Admission and shutdown are
/// normally signalled instantly through each thread's wake pipe.
const POOL_TICK: Duration = Duration::from_millis(25);

/// Stack buffer for one `read` call on a connection.
const READ_CHUNK: usize = 16 * 1024;

/// Most bytes one connection may pull off its socket per poll tick —
/// fairness between connections sharing an I/O thread. Level-triggered
/// polling re-reports the socket until it is drained.
const MAX_TICK_BYTES: usize = 256 * 1024;

/// Once this many reply bytes are queued unsent, the connection stops
/// being read until the client drains them — bounding server-side
/// buffering for a client that pipelines requests but never reads.
const OUT_HIGH_WATERMARK: usize = 1 << 20;

/// The io-thread poller key reserved for the wake pipe.
const WAKE_KEY: usize = usize::MAX;

/// How often the subscriber pump thread delivers queued kept points.
const SUB_PUMP_TICK: Duration = Duration::from_millis(25);

/// Most points a subscriber may have queued undelivered before the
/// server declares it too slow and disconnects it — subscribers must
/// never be able to stall ingest workers.
const SUB_QUEUE_CAP: usize = 1 << 16;

/// Most points coalesced into one pushed `SubPoints` frame.
const SUB_BATCH_POINTS: usize = 512;

/// How long the pump may block writing to one subscriber's socket
/// before that subscriber is declared dead.
const SUB_WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Default I/O threads in the multiplexed runtime.
pub const DEFAULT_IO_THREADS: usize = 4;

/// Default cap on concurrently served connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 4096;

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, `host:port` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Fleet worker shards; 1 spills a flat log, more a `shard-<k>/`
    /// tree.
    pub workers: usize,
    /// Directory the fleet spills closed sessions into. Must be empty
    /// or absent (the same rule as `bqs fleet --spill`).
    pub spill: PathBuf,
    /// Compression tolerance in metres.
    pub tolerance: f64,
    /// Bounded-lateness window in seconds. `0` (the default) keeps the
    /// strict in-order ingest path: any backwards timestamp is a
    /// `BadRequest`. Positive, each track's points pass through a
    /// reorder buffer that admits anything within `lateness` seconds
    /// behind the track's watermark (older is a typed `TooLate`) and
    /// releases points to the compressor in timestamp order.
    pub lateness: f64,
    /// Session shards inside each worker's engine.
    pub shards: usize,
    /// I/O threads multiplexing the connections
    /// ([`DEFAULT_IO_THREADS`]); `0` selects the legacy
    /// thread-per-connection runtime.
    pub io_threads: usize,
    /// Connections served concurrently at most
    /// ([`DEFAULT_MAX_CONNECTIONS`]); beyond it, accepts are answered
    /// with a typed over-capacity error frame and closed.
    pub max_connections: usize,
    /// Force the portable fallback poller backend even where the OS
    /// offers epoll/kqueue — the knob tests use to cover the
    /// WouldBlock round-robin path on any host.
    pub fallback_poller: bool,
    /// Metrics registry the server instruments itself into. `None`
    /// (the default) skips all instrumentation — the hot path pays one
    /// branch per site and nothing else.
    pub metrics: Option<MetricsRegistry>,
    /// Flight recorder the server emits structured trace events into
    /// (accept, frame decode, fleet submit, spill, reply flush, reject,
    /// eviction). `None` (the default) records nothing — each emission
    /// site pays one branch and nothing else.
    pub trace: Option<FlightRecorder>,
    /// Address for the std-only HTTP/1.1 Prometheus responder
    /// (`GET /metrics`); `None` (the default) serves no HTTP.
    pub prom_addr: Option<String>,
    /// Stream-time seconds a session may idle before the server evicts
    /// it (finalising it through the normal spill path). `0` (the
    /// default) never evicts; sessions close only at shutdown.
    pub evict_idle: f64,
}

impl ServerConfig {
    /// A config with the workspace defaults (10 m tolerance, 16 engine
    /// shards, [`DEFAULT_IO_THREADS`] I/O threads,
    /// [`DEFAULT_MAX_CONNECTIONS`] connections) for the given bind
    /// address, worker count and spill dir.
    pub fn new(addr: impl Into<String>, workers: usize, spill: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            workers,
            spill: spill.into(),
            tolerance: 10.0,
            lateness: 0.0,
            shards: 16,
            io_threads: DEFAULT_IO_THREADS,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            fallback_poller: false,
            metrics: None,
            trace: None,
            prom_addr: None,
            evict_idle: 0.0,
        }
    }
}

/// What a completed serve run accomplished, returned by [`Server::run`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Connections accepted and served.
    pub connections: u64,
    /// Connections refused with an over-capacity error frame.
    pub rejected_connections: u64,
    /// Frames processed across all connections.
    pub frames: u64,
    /// Points accepted into the fleet.
    pub appended_points: u64,
    /// Points accepted behind their track's watermark (reorder buffer).
    pub late_points: u64,
    /// Points accepted through the durable backfill path.
    pub backfill_points: u64,
    /// Points refused because they fell beyond the lateness window.
    pub too_late_points: u64,
    /// Sessions made durable at shutdown (plus earlier evictions).
    pub spilled_sessions: usize,
    /// Compressed points in the spill tree.
    pub spilled_points: u64,
    /// Bytes the spilled records occupy on disk.
    pub spilled_bytes: u64,
    /// Decision statistics merged across all worker engines.
    pub stats: DecisionStats,
    /// Shards named in the written `MANIFEST` (0 for a flat log).
    pub manifest_shards: usize,
}

/// The ingest state behind the connection handlers: the fleet plus the
/// per-track time watermarks that guard it.
struct FleetState {
    fleet: ParallelFleet<SubTeeSink>,
    /// Highest accepted timestamp per track. The wire decoder cannot
    /// enforce time order (only the encoder does), so the server
    /// re-validates every batch against this watermark — a crafted
    /// frame with backwards or non-finite timestamps must never reach
    /// the fleet, where it would poison the track's spill at close.
    /// Unused when a lateness window is configured (the reorder
    /// buffer's per-track watermark takes over).
    last_t: HashMap<u64, f64>,
    /// The per-track reorder buffers; `Some` iff `--lateness > 0`.
    reorder: Option<FleetReorder>,
    /// Backfill batches accepted over the wire, buffered until
    /// finalization writes them as flagged backfill records. Each inner
    /// vec is one accepted batch → one durable record.
    backfill: HashMap<TrackId, Vec<Vec<TimedPoint>>>,
    /// Highest timestamp accepted on any track — the stream clock the
    /// idle-eviction tick measures staleness against.
    max_t: f64,
}

/// The fleet sink behind every worker shard: the durable spill sink,
/// with each kept point teed into the subscriber hub first. When no
/// subscriber is connected the tee costs one relaxed atomic load.
struct SubTeeSink {
    inner: SpillSink<TrajectoryLog>,
    hub: Arc<SubHub>,
}

impl SubTeeSink {
    fn finish(self) -> Result<Vec<bqs_tlog::SpillReport>, Box<bqs_tlog::SpillFailure>> {
        self.inner.finish()
    }
}

impl FleetSink for SubTeeSink {
    fn accept(&mut self, track: TrackId, point: TimedPoint) {
        self.hub.publish(track, point);
        self.inner.accept(track, point);
    }

    fn session_closed(&mut self, report: &SessionReport) {
        self.inner.session_closed(report);
    }

    fn live_buffered(&self) -> Vec<(TrackId, Vec<TimedPoint>)> {
        self.inner.live_buffered()
    }
}

type FleetSlot = Mutex<Option<FleetState>>;

/// One live subscription, owned by the hub after the connection hands
/// off: the socket, the filters, and the batches not yet delivered.
struct Sub {
    id: u64,
    stream: TcpStream,
    track: Option<u64>,
    /// Normalized `[x_min, y_min, x_max, y_max]`.
    bbox: Option<[f64; 4]>,
    queue: Vec<(u64, Vec<TimedPoint>)>,
    queued_points: usize,
    /// Overflowed its queue cap or failed a write; reaped by the pump.
    dead: bool,
}

/// The subscriber hub: ingest workers publish every kept point here
/// (one relaxed load when nobody subscribes), a single pump thread
/// delivers queued batches as `SubPoints` frames. Only one pump runs at
/// a time — the dedicated thread while serving, then `finish` once at
/// finalization — so per-subscriber frame order is never interleaved.
struct SubHub {
    subs: Mutex<Vec<Sub>>,
    /// Live subscription count, readable without the lock.
    active: AtomicUsize,
    next_id: AtomicU64,
    subscribers_gauge: Option<Gauge>,
    queue_gauge: Option<Gauge>,
    bytes_out: Option<Counter>,
}

impl SubHub {
    fn new(registry: Option<&MetricsRegistry>) -> SubHub {
        SubHub {
            subs: Mutex::new(Vec::new()),
            active: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            subscribers_gauge: registry.map(|r| r.gauge("net_subscribers_live")),
            queue_gauge: registry.map(|r| r.gauge("net_sub_queue_points")),
            bytes_out: registry.map(|r| r.counter("net_bytes_out_total")),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Sub>> {
        self.subs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn update_gauges(&self, subs: &[Sub]) {
        self.active.store(subs.len(), Ordering::SeqCst); // ordering: seqcst count publish, ordered with the subs-lock mutation it mirrors
        if let Some(g) = &self.subscribers_gauge {
            g.set(subs.len() as u64);
        }
        if let Some(g) = &self.queue_gauge {
            g.set(subs.iter().map(|s| s.queued_points as u64).sum());
        }
    }

    /// Registers a handed-off connection as a subscriber.
    fn add(&self, stream: TcpStream, track: Option<u64>, bbox: Option<[f64; 4]>) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(SUB_WRITE_TIMEOUT));
        let bbox = bbox.map(|[x0, y0, x1, y1]| [x0.min(x1), y0.min(y1), x0.max(x1), y0.max(y1)]);
        let mut subs = self.lock();
        subs.push(Sub {
            id: self.next_id.fetch_add(1, Ordering::Relaxed), // ordering: relaxed unique-id ticket; only atomicity matters
            stream,
            track,
            bbox,
            queue: Vec::new(),
            queued_points: 0,
            dead: false,
        });
        self.update_gauges(&subs);
    }

    /// Queues one kept point for every matching subscriber. Called from
    /// ingest workers; never blocks on a socket.
    fn publish(&self, track: TrackId, point: TimedPoint) {
        // ordering: relaxed empty check; missing a brand-new sub for one point is allowed
        if self.active.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut subs = self.lock();
        let mut queued_total = 0u64;
        for sub in subs.iter_mut() {
            if sub.dead || sub.track.is_some_and(|t| t != track) {
                continue;
            }
            if let Some([x0, y0, x1, y1]) = sub.bbox {
                let p = point.pos;
                if !(p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1) {
                    continue;
                }
            }
            if sub.queued_points >= SUB_QUEUE_CAP {
                // Too slow to keep: drop the subscriber, never the
                // ingest throughput.
                sub.dead = true;
                sub.queue.clear();
                sub.queued_points = 0;
                continue;
            }
            match sub.queue.last_mut() {
                Some((t, pts)) if *t == track && pts.len() < SUB_BATCH_POINTS => pts.push(point),
                _ => sub.queue.push((track, vec![point])),
            }
            sub.queued_points += 1;
            queued_total += sub.queued_points as u64;
        }
        if let Some(g) = &self.queue_gauge {
            g.set(queued_total);
        }
    }

    /// Delivers every queued batch and reaps dead subscribers. The
    /// sockets are written *outside* the lock, so a slow subscriber
    /// stalls only this pump, never a publisher.
    fn pump(&self) {
        // ordering: relaxed empty check; a stale zero only delays delivery one pump tick
        if self.active.load(Ordering::Relaxed) == 0 {
            return;
        }
        // (subscriber id, its socket, the queued (track, points) batches).
        type Drained = (u64, TcpStream, Vec<(u64, Vec<TimedPoint>)>);
        let mut work: Vec<Drained> = Vec::new();
        {
            let mut subs = self.lock();
            for sub in subs.iter_mut() {
                if sub.dead || sub.queue.is_empty() {
                    continue;
                }
                match sub.stream.try_clone() {
                    Ok(stream) => {
                        sub.queued_points = 0;
                        work.push((sub.id, stream, std::mem::take(&mut sub.queue)));
                    }
                    Err(_) => sub.dead = true,
                }
            }
        }
        let mut failed: Vec<u64> = Vec::new();
        for (id, mut stream, batches) in work {
            for (track, points) in batches {
                let frame_ok =
                    Reply::SubPoints { track, points }
                        .encode()
                        .ok()
                        .and_then(|payload| {
                            write_frame(&mut stream, &payload).ok()?;
                            Some((HEADER_BYTES + payload.len() + 4) as u64)
                        });
                match frame_ok {
                    Some(bytes) => {
                        if let Some(c) = &self.bytes_out {
                            c.add(bytes);
                        }
                    }
                    None => {
                        failed.push(id);
                        break;
                    }
                }
            }
        }
        let mut subs = self.lock();
        subs.retain(|s| !s.dead && !failed.contains(&s.id));
        self.update_gauges(&subs);
    }

    /// Final drain at shutdown: deliver what remains, tell every
    /// subscriber the stream has ended, close the sockets.
    fn finish(&self) {
        self.pump();
        let mut subs = self.lock();
        if let Ok(payload) = Reply::SubEnd.encode() {
            for sub in subs.iter_mut() {
                if !sub.dead && write_frame(&mut sub.stream, &payload).is_ok() {
                    if let Some(c) = &self.bytes_out {
                        c.add((HEADER_BYTES + payload.len() + 4) as u64);
                    }
                }
            }
        }
        subs.clear();
        self.update_gauges(&subs);
    }
}

/// The request classes the server keys its per-type metrics on.
/// Derived from a frame's tag byte alone, before decoding, so even a
/// frame whose body fails to decode is attributed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    Append,
    Query,
    Stats,
    Flush,
    /// Hello, Shutdown, Metrics and unrecognised tags: rare,
    /// non-latency-critical traffic, pooled into one class.
    Other,
}

impl ReqKind {
    /// Classifies a frame payload by its leading tag byte.
    fn of(payload: &[u8]) -> ReqKind {
        match payload.first() {
            Some(&TAG_APPEND) => ReqKind::Append,
            Some(&TAG_QUERY) => ReqKind::Query,
            Some(&TAG_STATS) => ReqKind::Stats,
            Some(&TAG_FLUSH) => ReqKind::Flush,
            _ => ReqKind::Other,
        }
    }
}

/// Per-request-type metric handles: one counter and one latency
/// histogram per [`ReqKind`].
struct PerKind<T> {
    append: T,
    query: T,
    stats: T,
    flush: T,
    other: T,
}

impl<T> PerKind<T> {
    fn get(&self, kind: ReqKind) -> &T {
        match kind {
            ReqKind::Append => &self.append,
            ReqKind::Query => &self.query,
            ReqKind::Stats => &self.stats,
            ReqKind::Flush => &self.flush,
            ReqKind::Other => &self.other,
        }
    }
}

/// Every server-layer metric handle, registered once at bind time and
/// then touched lock-free. Catalogued in `docs/observability.md`.
struct ServerMetrics {
    registry: MetricsRegistry,
    /// Payload + framing bytes read off client sockets.
    bytes_in: Counter,
    /// Reply bytes written back (error frames included).
    bytes_out: Counter,
    /// Frames served, total and per request type.
    frames: Counter,
    frames_by: PerKind<Counter>,
    /// Request latency in microseconds, frame decoded → reply flushed
    /// to the socket (worst-case honest: a reply sharing a flush with
    /// slower traffic is charged the whole wait).
    request_us: PerKind<Histogram>,
    /// Points accepted behind their track's watermark.
    late_accepted: Counter,
    /// Points accepted through the durable backfill path.
    backfilled: Counter,
    /// Points refused beyond the lateness window.
    too_late: Counter,
    /// Points currently parked in the reorder buffers.
    reorder_depth: Gauge,
    conns_admitted: Counter,
    conns_rejected: Counter,
    conns_closed: Counter,
    /// Connections currently registered (peak tracked automatically).
    conns_live: Gauge,
    /// One io-pool thread's busy time per poll tick, microseconds.
    io_tick_us: Histogram,
    /// Ready events delivered per poll tick (wake pipe included).
    io_ready_events: Histogram,
    /// Query service time, snapshot → merged reply, microseconds.
    query_us: Histogram,
    query_shards_pruned: Counter,
    query_shards_opened: Counter,
}

impl ServerMetrics {
    fn new(registry: &MetricsRegistry) -> ServerMetrics {
        let c = |name: &str| registry.counter(name);
        let h = |name: &str| registry.histogram(name);
        ServerMetrics {
            registry: registry.clone(),
            bytes_in: c("net_bytes_in_total"),
            bytes_out: c("net_bytes_out_total"),
            frames: c("net_frames_total"),
            frames_by: PerKind {
                append: c("net_frames_append_total"),
                query: c("net_frames_query_total"),
                stats: c("net_frames_stats_total"),
                flush: c("net_frames_flush_total"),
                other: c("net_frames_other_total"),
            },
            request_us: PerKind {
                append: h("net_request_us_append"),
                query: h("net_request_us_query"),
                stats: h("net_request_us_stats"),
                flush: h("net_request_us_flush"),
                other: h("net_request_us_other"),
            },
            late_accepted: c("net_late_accepted_points_total"),
            backfilled: c("net_backfilled_points_total"),
            too_late: c("net_too_late_points_total"),
            reorder_depth: registry.gauge("net_reorder_depth"),
            conns_admitted: c("net_connections_admitted_total"),
            conns_rejected: c("net_connections_rejected_total"),
            conns_closed: c("net_connections_closed_total"),
            conns_live: registry.gauge("net_connections_live"),
            io_tick_us: h("net_io_tick_us"),
            io_ready_events: h("net_io_ready_events"),
            query_us: h("tlog_query_us"),
            query_shards_pruned: c("tlog_query_shards_pruned_total"),
            query_shards_opened: c("tlog_query_shards_opened_total"),
        }
    }

    /// Counts one served frame of `kind` (total + per type).
    fn on_frame(&self, kind: ReqKind) {
        self.frames.inc();
        self.frames_by.get(kind).inc();
    }
}

struct Shared {
    fleet: FleetSlot,
    hub: Arc<SubHub>,
    spill: PathBuf,
    workers: usize,
    io_threads: usize,
    max_connections: usize,
    fallback_poller: bool,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    /// Connections currently registered (admission gate).
    active: AtomicUsize,
    /// Most connections ever registered at once.
    peak_active: AtomicUsize,
    connections: AtomicU64,
    rejected: AtomicU64,
    frames: AtomicU64,
    appended_points: AtomicU64,
    late_points: AtomicU64,
    backfill_points: AtomicU64,
    too_late_points: AtomicU64,
    /// Stops the subscriber pump thread at finalization.
    pump_stop: AtomicBool,
    /// When the server was bound (drives the `Stats` uptime gauge).
    started: Instant,
    metrics: Option<ServerMetrics>,
    trace: Option<FlightRecorder>,
    /// Ticket dispenser for per-connection trace ids; ids start at 1
    /// (0 marks events not tied to any one connection).
    next_conn_id: AtomicU64,
    /// Stream-time idle-eviction threshold; 0 disables the tick.
    evict_idle: f64,
    /// Where the Prometheus HTTP responder is bound, when it runs
    /// (finalize connects here once to pop it out of `accept`).
    prom_addr: Option<SocketAddr>,
}

impl Shared {
    /// Locks the fleet slot; a poisoned lock (a handler died mid-call)
    /// still yields the fleet — worst case a worker shard is dead,
    /// which `join` reports — instead of panicking every later caller.
    fn lock_fleet(&self) -> std::sync::MutexGuard<'_, Option<FleetState>> {
        self.fleet.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers an accepted connection: the admission gate, the serve
    /// totals, the peak watermark and (when present) the live gauge.
    /// Returns the connection's trace id.
    fn conn_admitted(&self) -> u64 {
        let live = self.active.fetch_add(1, Ordering::SeqCst) + 1; // ordering: seqcst admission count pairs with the acceptor capacity check
        self.peak_active.fetch_max(live, Ordering::Relaxed); // ordering: relaxed peak watermark, approximate by design
        self.connections.fetch_add(1, Ordering::Relaxed); // ordering: relaxed stat counter, read after join()
        if let Some(m) = &self.metrics {
            m.conns_admitted.inc();
            m.conns_live.set(live as u64);
        }
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed); // ordering: relaxed unique-id ticket; only atomicity matters
        if let Some(tr) = &self.trace {
            tr.record(TraceEventKind::Accept, id, live as u64);
        }
        id
    }

    /// Unregisters a connection (served to completion, or admitted but
    /// dropped before service).
    fn conn_closed(&self) {
        let live = self.active.fetch_sub(1, Ordering::SeqCst) - 1; // ordering: seqcst release pairs with conn_admitted so capacity checks see it
        if let Some(m) = &self.metrics {
            m.conns_closed.inc();
            m.conns_live.set(live as u64);
        }
    }

    /// Counts an over-capacity rejection.
    fn conn_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed); // ordering: relaxed stat counter, read after join()
        if let Some(m) = &self.metrics {
            m.conns_rejected.inc();
        }
        if let Some(tr) = &self.trace {
            tr.record(TraceEventKind::Reject, 0, self.max_connections as u64);
        }
    }
}

/// A bound-but-not-yet-running ingest/query server. Construct with
/// [`Server::bind`], read the actual address with
/// [`Server::local_addr`] (useful with port 0), then block in
/// [`Server::run`] until a client sends `Shutdown`.
///
/// # Examples
///
/// ```
/// use bqs_net::{BqsClient, Server, ServerConfig};
/// use bqs_geo::TimedPoint;
///
/// let dir = std::env::temp_dir().join(format!("bqs-net-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let server = Server::bind(ServerConfig::new("127.0.0.1:0", 2, &dir)).unwrap();
/// let addr = server.local_addr();
/// let handle = std::thread::spawn(move || server.run().unwrap());
///
/// let mut client = BqsClient::connect(addr).unwrap();
/// let points: Vec<TimedPoint> =
///     (0..100).map(|i| TimedPoint::new(i as f64 * 9.0, 0.0, i as f64 * 60.0)).collect();
/// client.append(7, &points).unwrap();
/// client.shutdown().unwrap();
///
/// let report = handle.join().unwrap();
/// assert_eq!(report.appended_points, 100);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct Server {
    listener: TcpListener,
    /// The Prometheus HTTP responder's listener, bound at `bind` time
    /// so a bad `--prom-addr` fails up front; taken by `run`.
    prom_listener: Option<TcpListener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Validates the config, prepares the spill layout (flat log for 1
    /// worker, `shard-<k>/` tree above), spawns the fleet workers and
    /// binds the listener. Refuses a non-empty or layout-incompatible
    /// spill directory up front, exactly like `bqs fleet --spill`.
    pub fn bind(config: ServerConfig) -> Result<Server, NetError> {
        if config.workers == 0 {
            return Err(NetError::Config("serve needs --workers ≥ 1, got 0".into()));
        }
        if config.max_connections == 0 {
            return Err(NetError::Config(
                "serve needs --max-connections ≥ 1, got 0".into(),
            ));
        }
        if !(config.tolerance.is_finite() && config.tolerance > 0.0) {
            return Err(NetError::Config(format!(
                "tolerance must be > 0, got {}",
                config.tolerance
            )));
        }
        if !(config.lateness.is_finite() && config.lateness >= 0.0) {
            return Err(NetError::Config(format!(
                "lateness must be a finite number of seconds ≥ 0, got {}",
                config.lateness
            )));
        }
        if !(config.evict_idle.is_finite() && config.evict_idle >= 0.0) {
            return Err(NetError::Config(format!(
                "evict-idle must be a finite number of seconds ≥ 0, got {}",
                config.evict_idle
            )));
        }
        // One shared guard + open path with `bqs fleet --spill`: the
        // layout rules and their messages cannot drift between the two
        // writers.
        let mut logs: Vec<Option<TrajectoryLog>> =
            prepare_spill_logs(&config.spill, config.workers, LogConfig::default())?
                .into_iter()
                .map(Some)
                .collect();
        let bqs_config = BqsConfig::new(config.tolerance)
            .map_err(|e| NetError::Config(format!("tolerance: {e}")))?;
        // All instrumentation hangs off the optional registry: absent,
        // the fleet, sinks and connection handlers run exactly the
        // unmetered code paths.
        let fleet_metrics = config.metrics.as_ref().map(|r| {
            let fm = FleetMetrics::new(r, config.workers);
            match &config.trace {
                Some(tr) => fm.with_trace(tr.clone()),
                None => fm,
            }
        });
        let spill_metrics = config.metrics.as_ref().map(|r| {
            let sm = SpillMetrics::new(r);
            match &config.trace {
                Some(tr) => sm.with_trace(tr.clone()),
                None => sm,
            }
        });
        let server_metrics = config.metrics.as_ref().map(ServerMetrics::new);
        let hub = Arc::new(SubHub::new(config.metrics.as_ref()));
        let sink_hub = Arc::clone(&hub);
        let fleet = ParallelFleet::with_metrics(
            ParallelConfig {
                workers: config.workers,
                fleet: FleetConfig {
                    shards: config.shards,
                    idle_timeout: if config.evict_idle > 0.0 {
                        config.evict_idle
                    } else {
                        FleetConfig::default().idle_timeout
                    },
                    ..FleetConfig::default()
                },
                ..ParallelConfig::default()
            },
            move || FastBqsCompressor::new(bqs_config),
            |shard| SubTeeSink {
                inner: SpillSink::with_metrics(
                    // bqs-analyze: allow(no-unwrap-in-lib) — invariant: one log per shard
                    logs[shard].take().expect("one log per shard"),
                    spill_metrics.clone(),
                ),
                hub: Arc::clone(&sink_hub),
            },
            fleet_metrics,
        );
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| NetError::io(format!("bind {}", config.addr), e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::io("local_addr", e))?;
        let prom_listener = match &config.prom_addr {
            Some(addr) => Some(
                TcpListener::bind(addr)
                    .map_err(|e| NetError::io(format!("bind prom {addr}"), e))?,
            ),
            None => None,
        };
        let prom_addr = match &prom_listener {
            Some(l) => Some(
                l.local_addr()
                    .map_err(|e| NetError::io("prom local_addr", e))?,
            ),
            None => None,
        };
        Ok(Server {
            listener,
            prom_listener,
            shared: Arc::new(Shared {
                fleet: Mutex::new(Some(FleetState {
                    fleet,
                    last_t: HashMap::new(),
                    reorder: (config.lateness > 0.0).then(|| FleetReorder::new(config.lateness)),
                    backfill: HashMap::new(),
                    max_t: f64::NEG_INFINITY,
                })),
                hub,
                spill: config.spill,
                workers: config.workers,
                io_threads: config.io_threads,
                max_connections: config.max_connections,
                fallback_poller: config.fallback_poller,
                local_addr,
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                peak_active: AtomicUsize::new(0),
                connections: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                frames: AtomicU64::new(0),
                appended_points: AtomicU64::new(0),
                late_points: AtomicU64::new(0),
                backfill_points: AtomicU64::new(0),
                too_late_points: AtomicU64::new(0),
                pump_stop: AtomicBool::new(false),
                started: bqs_obs::now(),
                metrics: server_metrics,
                trace: config.trace,
                next_conn_id: AtomicU64::new(1),
                evict_idle: config.evict_idle,
                prom_addr,
            }),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The Prometheus responder's bound address (resolves port 0);
    /// `None` unless the config set [`ServerConfig::prom_addr`].
    pub fn prom_addr(&self) -> Option<SocketAddr> {
        self.shared.prom_addr
    }

    /// Serves until a client sends `Shutdown`, then drains connections,
    /// finishes the fleet, spills every session, writes the `MANIFEST`
    /// (multi-worker trees) and reports what happened.
    ///
    /// Transient accept failures (a client resetting mid-handshake, fd
    /// pressure) are retried; only a *persistently* failing listener
    /// (≈10 s of consecutive errors) stops the server — and even then
    /// it drains, spills and reports instead of abandoning the fleet.
    pub fn run(mut self) -> Result<ServeReport, NetError> {
        // The subscriber pump: one thread delivering queued kept points
        // to every subscriber, in both runtimes. It is the only live
        // writer to subscriber sockets, so pushed frames never
        // interleave. The same thread drives the idle-eviction tick
        // (once per EVICT_TICK) when `--evict-idle` is set.
        let pump_shared = Arc::clone(&self.shared);
        let pump = std::thread::Builder::new()
            .name("bqs-sub-pump".into())
            .spawn(move || {
                let ticks_per_evict =
                    (EVICT_TICK.as_millis() / SUB_PUMP_TICK.as_millis()).max(1) as u64;
                let mut tick = 0u64;
                // ordering: seqcst stop flag; join() in run() is the real synchronisation
                while !pump_shared.pump_stop.load(Ordering::SeqCst) {
                    pump_shared.hub.pump();
                    tick += 1;
                    if pump_shared.evict_idle > 0.0 && tick.is_multiple_of(ticks_per_evict) {
                        evict_tick(&pump_shared);
                    }
                    std::thread::sleep(SUB_PUMP_TICK);
                }
            })
            .map_err(|e| NetError::io("spawn pump thread", e))?;
        // The Prometheus responder: one thread serving `GET /metrics`
        // over plain HTTP/1.1, one request per connection.
        let prom = match self.prom_listener.take() {
            Some(listener) => {
                let prom_shared = Arc::clone(&self.shared);
                Some(
                    std::thread::Builder::new()
                        .name("bqs-prom".into())
                        .spawn(move || prom_loop(listener, &prom_shared))
                        .map_err(|e| NetError::io("spawn prom thread", e))?,
                )
            }
            None => None,
        };
        if self.shared.io_threads == 0 {
            self.run_threaded(pump, prom)
        } else {
            self.run_pool(pump, prom)
        }
    }

    /// The multiplexed runtime: I/O threads + readiness polling.
    fn run_pool(
        self,
        pump: std::thread::JoinHandle<()>,
        prom: Option<std::thread::JoinHandle<()>>,
    ) -> Result<ServeReport, NetError> {
        let io_threads = self.shared.io_threads;
        let mut senders: Vec<Sender<(u64, TcpStream)>> = Vec::with_capacity(io_threads);
        let mut wakers: Vec<TcpStream> = Vec::with_capacity(io_threads);
        let mut handles = Vec::with_capacity(io_threads);
        for i in 0..io_threads {
            let (tx, rx) = std::sync::mpsc::channel::<(u64, TcpStream)>();
            let (wake_tx, wake_rx) = wake_pipe()?;
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("bqs-io-{i}"))
                    .spawn(move || io_loop(rx, wake_rx, &shared))
                    .map_err(|e| NetError::io("spawn io thread", e))?,
            );
            senders.push(tx);
            wakers.push(wake_tx);
        }

        const MAX_CONSECUTIVE_ACCEPT_FAILURES: u32 = 100;
        let mut accept_failures = 0u32;
        let mut next = 0usize;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    accept_failures = 0;
                    // ordering: seqcst pairs with the Shutdown request's store
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        // The wake-up connection (or a late client):
                        // not served.
                        drop(stream);
                        break;
                    }
                    // ordering: seqcst capacity check pairs with conn_admitted/conn_closed
                    if self.shared.active.load(Ordering::SeqCst) >= self.shared.max_connections {
                        reject_over_capacity(stream, &self.shared);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.shared.conn_admitted();
                    if senders[next].send((id, stream)).is_err() {
                        // The io thread is gone (it never exits before
                        // shutdown unless it panicked): undo and drop.
                        self.shared.conn_closed();
                    } else {
                        wake(&wakers[next]);
                    }
                    next = (next + 1) % io_threads;
                }
                Err(_) if self.shared.shutdown.load(Ordering::SeqCst) => break, // ordering: seqcst pairs with the Shutdown request's store
                Err(_) => {
                    accept_failures += 1;
                    if accept_failures >= MAX_CONSECUTIVE_ACCEPT_FAILURES {
                        // The listener is gone for good: stop accepting
                        // but still drain and make everything durable.
                        self.shared.shutdown.store(true, Ordering::SeqCst); // ordering: seqcst so every worker agrees the server is shutting down
                        break;
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
            }
        }
        // Close the admission channels and wake every io thread so the
        // drain starts immediately rather than at the next tick.
        drop(senders);
        for waker in &wakers {
            wake(waker);
        }
        for handle in handles {
            let _ = handle.join();
        }
        self.finalize(pump, prom)
    }

    /// The legacy thread-per-connection runtime (`--io-threads 0`).
    fn run_threaded(
        self,
        pump: std::thread::JoinHandle<()>,
        prom: Option<std::thread::JoinHandle<()>>,
    ) -> Result<ServeReport, NetError> {
        const MAX_CONSECUTIVE_ACCEPT_FAILURES: u32 = 100;
        let mut handles = Vec::new();
        let mut accept_failures = 0u32;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    accept_failures = 0;
                    // ordering: seqcst pairs with the Shutdown request's store
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        drop(stream);
                        break;
                    }
                    // ordering: seqcst capacity check pairs with conn_admitted/conn_closed
                    if self.shared.active.load(Ordering::SeqCst) >= self.shared.max_connections {
                        reject_over_capacity(stream, &self.shared);
                        continue;
                    }
                    let id = self.shared.conn_admitted();
                    let shared = Arc::clone(&self.shared);
                    handles.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared, id);
                        shared.conn_closed();
                    }));
                }
                Err(_) if self.shared.shutdown.load(Ordering::SeqCst) => break, // ordering: seqcst pairs with the Shutdown request's store
                Err(_) => {
                    accept_failures += 1;
                    if accept_failures >= MAX_CONSECUTIVE_ACCEPT_FAILURES {
                        self.shared.shutdown.store(true, Ordering::SeqCst); // ordering: seqcst so every worker agrees the server is shutting down
                        break;
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
            }
        }
        for handle in handles {
            // A handler panic poisons nothing we still need; keep
            // draining the rest and finish the fleet regardless.
            let _ = handle.join();
        }
        self.finalize(pump, prom)
    }

    fn finalize(
        &self,
        pump: std::thread::JoinHandle<()>,
        prom: Option<std::thread::JoinHandle<()>>,
    ) -> Result<ServeReport, NetError> {
        let mut state = self
            .shared
            .lock_fleet()
            .take()
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: finalize runs once, after the accept loop
            .expect("finalize runs once, after the accept loop");
        // Release whatever the reorder buffers still hold — sorted per
        // track — before the fleet joins.
        if let Some(reorder) = state.reorder.as_mut() {
            for (track, points) in reorder.drain_all() {
                if !points.is_empty() {
                    state.fleet.submit_run(track, points);
                }
            }
            if let Some(m) = &self.shared.metrics {
                m.reorder_depth.set(0);
            }
        }
        let join = state.fleet.join();
        if let Some(failure) = join.failures.first() {
            return Err(NetError::Fleet {
                shard: failure.shard,
                panic: failure.panic.clone(),
                sessions: failure.tracks.len(),
            });
        }
        let stats = join.stats;
        let mut spilled_sessions = 0usize;
        let mut spilled_points = 0u64;
        let mut spilled_bytes = 0u64;
        for shard in join.shards {
            let reports = shard
                .sink
                .finish()
                .map_err(|failure| NetError::Spill(failure.to_string()))?;
            spilled_sessions += reports.len();
            spilled_points += reports.iter().map(|r| r.points).sum::<u64>();
            spilled_bytes += reports.iter().map(|r| r.bytes).sum::<u64>();
        }
        // Every kept point has been published; let the pump deliver the
        // tail, then end and close every subscription.
        self.shared.pump_stop.store(true, Ordering::SeqCst); // ordering: seqcst stop flag; the join() below is the real synchronisation
        let _ = pump.join();
        self.shared.hub.finish();
        // Stop the Prometheus responder: every path into finalize has
        // set the shutdown flag (re-asserted here for belt and braces);
        // one wake connection pops the thread out of `accept`.
        if let Some(prom) = prom {
            self.shared.shutdown.store(true, Ordering::SeqCst); // ordering: seqcst publishes shutdown before the wake-up connect below
            if let Some(addr) = self.shared.prom_addr {
                drop(TcpStream::connect(wake_addr(addr)));
            }
            let _ = prom.join();
        }
        // Buffered backfill batches become flagged records in the same
        // shard logs the tracks' live data spilled to, *before* the
        // manifest is rebuilt so its spans cover them.
        if !state.backfill.is_empty() {
            write_backfill(&self.shared.spill, self.shared.workers, &state.backfill)?;
        }
        let manifest_shards = if self.shared.workers > 1 {
            Manifest::rebuild(&self.shared.spill)?.shards.len()
        } else {
            0
        };
        Ok(ServeReport {
            connections: self.shared.connections.load(Ordering::Relaxed), // ordering: relaxed final read; all writers joined above
            rejected_connections: self.shared.rejected.load(Ordering::Relaxed), // ordering: relaxed final read; all writers joined above
            frames: self.shared.frames.load(Ordering::Relaxed), // ordering: relaxed final read; all writers joined above
            appended_points: self.shared.appended_points.load(Ordering::Relaxed), // ordering: relaxed final read; all writers joined above
            late_points: self.shared.late_points.load(Ordering::Relaxed), // ordering: relaxed final read; all writers joined above
            backfill_points: self.shared.backfill_points.load(Ordering::Relaxed), // ordering: relaxed final read; all writers joined above
            too_late_points: self.shared.too_late_points.load(Ordering::Relaxed), // ordering: relaxed final read; all writers joined above
            spilled_sessions,
            spilled_points,
            spilled_bytes,
            stats,
            manifest_shards,
        })
    }
}

/// Writes the buffered backfill batches as flagged records, each into
/// the shard log its track's live data spilled to (the fleet's worker
/// routing), reopening the logs the spill sinks just closed.
fn write_backfill(
    spill: &std::path::Path,
    workers: usize,
    backfill: &HashMap<TrackId, Vec<Vec<TimedPoint>>>,
) -> Result<(), NetError> {
    let mut by_shard: HashMap<usize, Vec<TrackId>> = HashMap::new();
    for &track in backfill.keys() {
        let shard = if workers > 1 {
            worker_of(track, workers)
        } else {
            0
        };
        by_shard.entry(shard).or_default().push(track);
    }
    for (shard, mut tracks) in by_shard {
        tracks.sort_unstable();
        let dir = if workers > 1 {
            spill.join(format!("shard-{shard}"))
        } else {
            spill.to_path_buf()
        };
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default())?;
        for track in tracks {
            for batch in &backfill[&track] {
                log.append_backfill(track, batch)?;
            }
        }
    }
    Ok(())
}

/// How often the pump thread runs the idle-eviction pass when
/// `--evict-idle` is set.
const EVICT_TICK: Duration = Duration::from_secs(1);

/// One idle-eviction pass: finalises (through the normal spill path)
/// every session that has not pushed for `evict_idle` stream-time
/// seconds, measured against the highest timestamp accepted so far.
fn evict_tick(shared: &Shared) {
    let mut guard = shared.lock_fleet();
    let Some(state) = guard.as_mut() else {
        return; // already finalizing
    };
    if state.max_t.is_finite() {
        let now = state.max_t;
        state.fleet.evict_idle(now);
    }
}

/// Serves `GET /metrics` over plain HTTP/1.1 until shutdown: accept,
/// answer one request, close. Scrapers reconnect per scrape, so one
/// sequential thread is plenty.
fn prom_loop(listener: TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // ordering: seqcst pairs with the Shutdown request's store
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        // ordering: seqcst pairs with the Shutdown request's store
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the finalize wake-up (or a late scraper)
        }
        serve_prom_conn(stream, shared);
    }
}

/// Answers one HTTP request: `GET /metrics` gets the Prometheus text
/// exposition (0.0.4), anything else a 404. An unmetered server
/// serves an empty 200 body, mirroring the wire `Metrics` reply.
fn serve_prom_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    // Read up to the header terminator; only the request line matters.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let line = buf.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let line = std::str::from_utf8(line).unwrap_or("");
    let target = line.strip_prefix("GET ").and_then(|r| r.split(' ').next());
    let (status, body) = if target == Some("/metrics") {
        let body = shared
            .metrics
            .as_ref()
            .map(|m| m.registry.render_prometheus())
            .unwrap_or_default();
        ("200 OK", body)
    } else {
        ("404 Not Found", String::new())
    };
    let head = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
}

/// Answers an over-the-cap accept with one typed error frame and closes
/// the socket — a client in `connect` surfaces it as
/// `NetError::Server { code: OverCapacity, .. }` instead of hanging.
fn reject_over_capacity(mut stream: TcpStream, shared: &Shared) {
    shared.conn_rejected();
    let reply = Reply::Error {
        code: ErrorCode::OverCapacity,
        message: format!(
            "connection table full ({} connections); retry later",
            shared.max_connections
        ),
    };
    if let Ok(payload) = reply.encode() {
        let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
        if write_frame(&mut stream, &payload).is_ok() {
            if let Some(m) = &shared.metrics {
                m.bytes_out.add((HEADER_BYTES + payload.len() + 4) as u64);
            }
        }
    }
}

/// The blocking write end of an I/O thread's wake pipe. `std` has no
/// portable socketpair, so the pipe is a loopback TCP pair: one byte
/// written here pops the thread out of `Poller::wait` instantly.
fn wake_pipe() -> Result<(TcpStream, TcpStream), NetError> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| NetError::io("wake pipe", e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| NetError::io("wake pipe", e))?;
    let tx = TcpStream::connect(addr).map_err(|e| NetError::io("wake pipe", e))?;
    let (rx, _) = listener
        .accept()
        .map_err(|e| NetError::io("wake pipe", e))?;
    Ok((tx, rx))
}

fn wake(waker: &TcpStream) {
    let _ = (&*waker).write_all(&[1]);
}

/// One connection's state inside an I/O thread.
struct Conn {
    /// The server-wide trace id assigned at admission.
    id: u64,
    stream: TcpStream,
    /// Bytes read off the socket, `consumed` of which are parsed.
    inbuf: Vec<u8>,
    consumed: usize,
    /// Reply bytes queued, `outpos` of which are written.
    outbuf: Vec<u8>,
    outpos: usize,
    greeted: bool,
    /// Close once `outbuf` drains (framing violation, shutdown, EOF).
    close_after_flush: bool,
    /// Currently registered with write interest.
    want_write: bool,
    /// Peer EOF observed.
    eof: bool,
    /// Decode times of requests whose replies have not fully flushed —
    /// drained into the latency histograms when `outbuf` empties.
    /// Unused (never pushed) without a metrics registry.
    pending: Vec<(Instant, ReqKind)>,
    /// A `Subscribe` was served: once the out queue drains, the socket
    /// moves to the subscriber hub instead of being polled further.
    handoff: Option<(Option<u64>, Option<[f64; 4]>)>,
}

impl Conn {
    fn new(id: u64, stream: TcpStream) -> Conn {
        Conn {
            id,
            stream,
            inbuf: Vec::new(),
            consumed: 0,
            outbuf: Vec::new(),
            outpos: 0,
            greeted: false,
            close_after_flush: false,
            want_write: false,
            eof: false,
            pending: Vec::new(),
            handoff: None,
        }
    }

    /// Nothing half-read, nothing half-written: safe to close at a
    /// shutdown drain point.
    fn at_boundary(&self) -> bool {
        self.consumed == self.inbuf.len() && self.outpos == self.outbuf.len()
    }
}

/// One I/O thread: admit connections from `rx`, poll readiness, parse
/// frames, serve requests, flush replies — until shutdown drains every
/// connection.
fn io_loop(rx: Receiver<(u64, TcpStream)>, wake_rx: TcpStream, shared: &Shared) {
    let poller = if shared.fallback_poller {
        Poller::with_fallback()
    } else {
        Poller::new().unwrap_or_else(|_| Poller::with_fallback())
    };
    let _ = wake_rx.set_nonblocking(true);
    let _ = poller.add(source_of(&wake_rx), Event::readable(WAKE_KEY));
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key = 0usize;
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = ColumnarBatch::new();
    let mut rx_open = true;
    let mut drain_deadline: Option<Instant> = None;
    loop {
        // Admit whatever the acceptor queued.
        while rx_open {
            match rx.try_recv() {
                Ok((id, stream)) => {
                    let key = next_key;
                    next_key += 1;
                    if poller.add(source_of(&stream), Event::readable(key)).is_ok() {
                        conns.insert(key, Conn::new(id, stream));
                    } else {
                        shared.conn_closed();
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    rx_open = false;
                    break;
                }
            }
        }

        let shutting = shared.shutdown.load(Ordering::SeqCst); // ordering: seqcst so drain decisions agree across workers
        if shutting {
            let deadline = *drain_deadline.get_or_insert_with(|| bqs_obs::now() + DRAIN_GRACE);
            // Final service pass: frames already in flight (kernel
            // buffers included) still complete; then close everything
            // that sits at a frame boundary — or everything, once the
            // grace expires.
            let keys: Vec<usize> = conns.keys().copied().collect();
            let expired = bqs_obs::now() >= deadline;
            for key in keys {
                // bqs-analyze: allow(no-unwrap-in-lib) — invariant: key from this map
                let conn = conns.get_mut(&key).expect("key from this map");
                let dead = service_conn(conn, shared, &mut scratch);
                if !dead && conn.handoff.is_some() && conn.outpos == conn.outbuf.len() {
                    // A freshly acked subscriber still gets its drain
                    // notice (`SubEnd`) through the hub.
                    handoff_conn(&poller, &mut conns, key, shared);
                } else if dead || conn.at_boundary() || expired {
                    close_conn(&poller, &mut conns, key, shared);
                }
            }
            if conns.is_empty() && !rx_open {
                break;
            }
        }

        let _ = poller.wait(&mut events, Some(POOL_TICK));
        // Tick telemetry: how much readiness each wait delivers, and
        // how long this thread stays busy servicing it.
        let tick_start = shared.metrics.as_ref().map(|m| {
            m.io_ready_events.record(events.len() as u64);
            bqs_obs::now()
        });
        for &ev in events.iter() {
            if ev.key == WAKE_KEY {
                drain_wake(&wake_rx);
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.key) else {
                continue;
            };
            if service_conn(conn, shared, &mut scratch) {
                close_conn(&poller, &mut conns, ev.key, shared);
                continue;
            }
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: still present
            let conn = conns.get_mut(&ev.key).expect("still present");
            if conn.handoff.is_some() && conn.outpos == conn.outbuf.len() {
                // `Subscribed` is on the wire: the socket now belongs
                // to the subscriber hub (and its pump thread).
                handoff_conn(&poller, &mut conns, ev.key, shared);
                continue;
            }
            // Write interest only while replies are actually pending.
            let pending = conn.outpos < conn.outbuf.len();
            if pending != conn.want_write {
                conn.want_write = pending;
                let interest = if pending {
                    Event::all(ev.key)
                } else {
                    Event::readable(ev.key)
                };
                let _ = poller.modify(source_of(&conn.stream), interest);
            }
        }
        if let (Some(m), Some(t)) = (&shared.metrics, tick_start) {
            m.io_tick_us.record(elapsed_us(t));
        }
    }
    // Streams the acceptor queued that were never admitted.
    for (_, stream) in rx.try_iter() {
        drop(stream);
        shared.conn_closed();
    }
}

fn drain_wake(wake_rx: &TcpStream) {
    let mut buf = [0u8; 64];
    while matches!((&*wake_rx).read(&mut buf), Ok(n) if n > 0) {}
}

fn close_conn(poller: &Poller, conns: &mut HashMap<usize, Conn>, key: usize, shared: &Shared) {
    if let Some(conn) = conns.remove(&key) {
        let _ = poller.delete(source_of(&conn.stream));
        drop(conn.stream);
        shared.conn_closed();
    }
}

/// Moves a connection whose `Subscribed` ack has flushed out of the
/// poll set and into the subscriber hub. The connection stops counting
/// against `--max-connections`; it is accounted by the
/// `net_subscribers_live` gauge instead.
fn handoff_conn(poller: &Poller, conns: &mut HashMap<usize, Conn>, key: usize, shared: &Shared) {
    if let Some(conn) = conns.remove(&key) {
        let _ = poller.delete(source_of(&conn.stream));
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: caller checked
        let (track, bbox) = conn.handoff.expect("caller checked");
        shared.hub.add(conn.stream, track, bbox);
        shared.conn_closed();
    }
}

/// Reads, parses, serves and flushes one connection as far as its
/// socket allows right now. Returns `true` when the connection is done
/// (transport failure, or close-after-flush with an empty out buffer).
fn service_conn(conn: &mut Conn, shared: &Shared, scratch: &mut ColumnarBatch) -> bool {
    // 1. Pull available bytes — unless queued replies are over the
    // watermark (a client that writes but never reads): level-triggered
    // polling re-reports the socket once the replies drain.
    if !conn.eof
        && !conn.close_after_flush
        && conn.handoff.is_none()
        && conn.outbuf.len() - conn.outpos < OUT_HIGH_WATERMARK
    {
        let mut chunk = [0u8; READ_CHUNK];
        let mut read_this_tick = 0usize;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    read_this_tick += n;
                    if let Some(m) = &shared.metrics {
                        m.bytes_in.add(n as u64);
                    }
                    if read_this_tick >= MAX_TICK_BYTES {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return true, // transport died
            }
        }
    }

    // 2. Serve every complete frame in the buffer.
    while !conn.close_after_flush && conn.handoff.is_none() {
        let buf = &conn.inbuf[conn.consumed..];
        if buf.is_empty() {
            break;
        }
        match decode_frame(buf) {
            Ok((payload, used)) => {
                conn.consumed += used;
                shared.frames.fetch_add(1, Ordering::Relaxed); // ordering: relaxed stat counter, read after join()
                if shared.metrics.is_some() || shared.trace.is_some() {
                    let kind = ReqKind::of(&payload);
                    if let Some(m) = &shared.metrics {
                        m.on_frame(kind);
                    }
                    // The decode time also anchors the ReplyFlush
                    // trace event's latency payload.
                    conn.pending.push((bqs_obs::now(), kind));
                }
                if let Some(tr) = &shared.trace {
                    tr.record(TraceEventKind::FrameDecode, conn.id, payload.len() as u64);
                }
                let (reply, after) =
                    handle_payload(&payload, shared, &mut conn.greeted, scratch, conn.id);
                queue_reply(conn, &reply);
                match after {
                    After::Continue => {}
                    After::Close => conn.close_after_flush = true,
                    After::Subscribe { track, bbox } => {
                        // Stop parsing: the protocol says the client
                        // sends nothing after `Subscribe`, and any
                        // pipelined leftovers are dropped at handoff.
                        conn.handoff = Some((track, bbox));
                        break;
                    }
                }
            }
            Err(WireError::Torn { .. }) => break, // incomplete: wait for more bytes
            Err(e) => {
                // The stream cannot be resynchronised after a framing
                // violation: report and close.
                queue_reply(
                    conn,
                    &Reply::Error {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    },
                );
                conn.close_after_flush = true;
                conn.consumed = conn.inbuf.len();
            }
        }
    }
    if conn.consumed > 0 {
        conn.inbuf.drain(..conn.consumed);
        conn.consumed = 0;
    }
    // A peer that half-closed gets its queued replies, then the close;
    // a partial frame left behind is torn — nobody is left to tell.
    if conn.eof {
        conn.close_after_flush = true;
    }

    // 3. Flush as much of the out queue as the socket takes.
    while conn.outpos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => return true,
            Ok(n) => {
                conn.outpos += n;
                if let Some(m) = &shared.metrics {
                    m.bytes_out.add(n as u64);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return true,
        }
    }
    if conn.outpos == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.outpos = 0;
        // Every reply this connection owed is now on the wire: the
        // requests' decode→flush latencies are final.
        for (start, kind) in conn.pending.drain(..) {
            let us = elapsed_us(start);
            if let Some(m) = &shared.metrics {
                m.request_us.get(kind).record(us);
            }
            if let Some(tr) = &shared.trace {
                tr.record(TraceEventKind::ReplyFlush, conn.id, us);
            }
        }
        if conn.close_after_flush {
            return true;
        }
    }
    false
}

fn queue_reply(conn: &mut Conn, reply: &Reply) {
    let payload = match reply.encode() {
        Ok(payload) => payload,
        // A reply that cannot be encoded (a codec invariant violated by
        // query output — never expected) degrades to a typed error.
        Err(e) => Reply::Error {
            code: ErrorCode::Internal,
            message: format!("cannot encode reply: {e}"),
        }
        .encode()
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: error replies always encode
        .expect("error replies always encode"),
    };
    conn.outbuf.extend_from_slice(&frame_to_vec(&payload));
}

/// One reader's verdict after handling a frame.
enum After {
    /// Keep serving this connection.
    Continue,
    /// Close this connection (frame-level failure or shutdown).
    Close,
    /// Hand this connection to the subscriber hub once the `Subscribed`
    /// acknowledgement has flushed: the request/reply conversation is
    /// over and the socket only carries pushed frames from here on.
    Subscribe {
        track: Option<u64>,
        bbox: Option<[f64; 4]>,
    },
}

/// The legacy per-connection reader thread (`--io-threads 0`).
fn handle_connection(mut stream: TcpStream, shared: &Shared, conn_id: u64) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // The protocol requires `Hello` to open every connection; nothing
    // else is served before the handshake succeeds.
    let mut greeted = false;
    let mut scratch = ColumnarBatch::new();
    loop {
        let payload = match read_frame_interruptible(&mut stream, &shared.shutdown) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF or drained shutdown
            Err(NetError::Wire(e)) => {
                // The stream cannot be resynchronised after a framing
                // violation: report and close.
                let reply = Reply::Error {
                    code: ErrorCode::BadFrame,
                    message: e.to_string(),
                };
                send_reply(&mut writer, &reply, shared);
                return;
            }
            Err(_) => return, // transport died
        };
        shared.frames.fetch_add(1, Ordering::Relaxed); // ordering: relaxed stat counter, read after join()
        let start = (shared.metrics.is_some() || shared.trace.is_some()).then(|| {
            let kind = ReqKind::of(&payload);
            if let Some(m) = &shared.metrics {
                m.on_frame(kind);
                m.bytes_in.add((HEADER_BYTES + payload.len() + 4) as u64);
            }
            (bqs_obs::now(), kind)
        });
        if let Some(tr) = &shared.trace {
            tr.record(TraceEventKind::FrameDecode, conn_id, payload.len() as u64);
        }
        let (reply, after) = handle_payload(&payload, shared, &mut greeted, &mut scratch, conn_id);
        let sent = send_reply(&mut writer, &reply, shared);
        if let Some((t, kind)) = start {
            let us = elapsed_us(t);
            if let Some(m) = &shared.metrics {
                m.request_us.get(kind).record(us);
            }
            if sent {
                if let Some(tr) = &shared.trace {
                    tr.record(TraceEventKind::ReplyFlush, conn_id, us);
                }
            }
        }
        if !sent {
            return;
        }
        match after {
            After::Continue => {}
            After::Close => return,
            After::Subscribe { track, bbox } => {
                // `send_reply` is synchronous, so `Subscribed` is on
                // the wire: hand the socket to the hub and let this
                // reader thread retire (the caller's accounting then
                // reflects the handoff, not a disconnect).
                shared.hub.add(writer, track, bbox);
                return;
            }
        }
    }
}

fn send_reply(writer: &mut TcpStream, reply: &Reply, shared: &Shared) -> bool {
    let payload = match reply.encode() {
        Ok(payload) => payload,
        Err(e) => Reply::Error {
            code: ErrorCode::Internal,
            message: format!("cannot encode reply: {e}"),
        }
        .encode()
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: error replies always encode
        .expect("error replies always encode"),
    };
    let ok = write_frame(writer, &payload).is_ok();
    if ok {
        if let Some(m) = &shared.metrics {
            m.bytes_out.add((HEADER_BYTES + payload.len() + 4) as u64);
        }
    }
    ok
}

/// Validates a batch's timestamp run against the codec's time invariant
/// and the track's accepted watermark. The wire *decoder* cannot
/// enforce this (only the encoder does), so without the check a crafted
/// frame would be acked, reach the fleet, and poison the track's spill
/// at session close — losing the whole shard's durable output.
fn validate_times(times: &[f64], watermark: Option<f64>) -> Result<(), String> {
    let mut prev = watermark;
    for (i, &t) in times.iter().enumerate() {
        if !t.is_finite() {
            return Err(format!("timestamp at index {i} is not finite"));
        }
        if let Some(prev) = prev {
            if t < prev {
                return Err(format!(
                    "timestamp at index {i} goes backwards: {t} < {prev} \
                     (the track's accepted stream is time-ordered)"
                ));
            }
        }
        prev = Some(t);
    }
    Ok(())
}

/// Serves one frame payload: the columnar `Append` fast path first
/// (after the handshake), everything else through [`Request::decode`].
/// Both runtimes — pool and thread-per-connection — go through here, so
/// semantics and error strings cannot drift between them.
fn handle_payload(
    payload: &[u8],
    shared: &Shared,
    greeted: &mut bool,
    scratch: &mut ColumnarBatch,
    conn: u64,
) -> (Reply, After) {
    if *greeted {
        scratch.clear();
        match decode_append_columns(payload, scratch) {
            Ok(Some(track)) => return handle_append_columns(track, scratch, shared, conn),
            Ok(None) => {}
            Err(e) => {
                return (
                    Reply::Error {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    },
                    After::Close,
                )
            }
        }
    }
    match Request::decode(payload) {
        Ok(request) => handle_request(request, shared, greeted, conn),
        Err(e) => (
            Reply::Error {
                code: ErrorCode::BadFrame,
                message: e.to_string(),
            },
            After::Close,
        ),
    }
}

/// The `Append` fast path: timestamps validated in one pass over the
/// contiguous run, then the whole run submitted in one channel send.
fn handle_append_columns(
    track: u64,
    batch: &ColumnarBatch,
    shared: &Shared,
    conn: u64,
) -> (Reply, After) {
    let mut guard = shared.lock_fleet();
    let Some(state) = guard.as_mut() else {
        return (shutting_down_error(), After::Close);
    };
    let n = batch.len() as u64;
    if state.reorder.is_some() {
        // Bounded-lateness ingest: the batch must still be sorted
        // within itself, but its start may fall up to the window
        // behind the track's watermark instead of never.
        if let Err(message) = validate_times(&batch.t, None) {
            return (
                Reply::Error {
                    code: ErrorCode::BadRequest,
                    message,
                },
                After::Continue,
            );
        }
        return match submit_reordered(state, track, &batch.to_points(), shared) {
            Ok(()) => {
                drop(guard);
                shared.appended_points.fetch_add(n, Ordering::Relaxed); // ordering: relaxed stat counter, read after join()
                if let Some(tr) = &shared.trace {
                    tr.record(TraceEventKind::FleetSubmit, conn, n);
                }
                (Reply::Appended { track, points: n }, After::Continue)
            }
            Err(e) => {
                drop(guard);
                refused_too_late(n, shared);
                (
                    Reply::Error {
                        code: ErrorCode::TooLate,
                        message: e.to_string(),
                    },
                    After::Continue,
                )
            }
        };
    }
    if let Err(message) = validate_times(&batch.t, state.last_t.get(&track).copied()) {
        // Semantically invalid but well-framed: the batch is rejected
        // whole and the connection survives.
        return (
            Reply::Error {
                code: ErrorCode::BadRequest,
                message,
            },
            After::Continue,
        );
    }
    if let Some(&last) = batch.t.last() {
        state.last_t.insert(track, last);
        state.max_t = state.max_t.max(last);
    }
    // Backpressure: this send blocks (fleet lock held, sockets unread)
    // when the track's worker shard is saturated.
    state.fleet.submit_run(track, batch.to_points());
    drop(guard);
    shared.appended_points.fetch_add(n, Ordering::Relaxed); // ordering: relaxed stat counter, read after join()
    if let Some(tr) = &shared.trace {
        tr.record(TraceEventKind::FleetSubmit, conn, n);
    }
    (Reply::Appended { track, points: n }, After::Continue)
}

/// Counts a whole refused batch against the too-late totals.
fn refused_too_late(points: u64, shared: &Shared) {
    shared.too_late_points.fetch_add(points, Ordering::Relaxed); // ordering: relaxed stat counter, read after join()
    if let Some(m) = &shared.metrics {
        m.too_late.add(points);
    }
}

/// Pushes an admissible batch through `track`'s reorder buffer and
/// submits whatever the advancing watermark releases, in timestamp
/// order. Atomic: the whole batch is admitted, or — when any point
/// falls beyond the window — refused without side effects.
fn submit_reordered(
    state: &mut FleetState,
    track: u64,
    points: &[TimedPoint],
    shared: &Shared,
) -> Result<(), TooLate> {
    let (late, released, depth, wm) = {
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: caller checked
        let reorder = state.reorder.as_mut().expect("caller checked");
        let window = reorder.window();
        // Admission pass: simulate the watermark over the batch in
        // arrival order, so acceptance is decided before any point is
        // parked.
        let mut wm = reorder.watermark(track).unwrap_or(f64::NEG_INFINITY);
        let mut late = 0u64;
        for p in points {
            if p.t < wm - window {
                return Err(TooLate {
                    t: p.t,
                    watermark: wm,
                    window,
                });
            }
            if wm.is_finite() && p.t < wm {
                late += 1;
            }
            wm = wm.max(p.t);
        }
        // Commit pass: every push now succeeds by construction.
        let mut released = Vec::new();
        for p in points {
            reorder
                .push(track, *p, &mut released)
                // bqs-analyze: allow(no-unwrap-in-lib) — invariant: admission pre-checked the whole batch
                .expect("admission pre-checked the whole batch");
        }
        (late, released, reorder.depth() as u64, wm)
    };
    state.max_t = state.max_t.max(wm);
    if !released.is_empty() {
        state.fleet.submit_run(track, released);
    }
    if late > 0 {
        shared.late_points.fetch_add(late, Ordering::Relaxed); // ordering: relaxed stat counter, read after join()
    }
    if let Some(m) = &shared.metrics {
        if late > 0 {
            m.late_accepted.add(late);
        }
        m.reorder_depth.set(depth);
    }
    Ok(())
}

/// Serves an `AppendLate` request: the reorder-buffered late path, or
/// the durable backfill path.
fn handle_append_late(
    track: u64,
    backfill: bool,
    points: &[TimedPoint],
    shared: &Shared,
    conn: u64,
) -> (Reply, After) {
    if let Some(i) = points.iter().position(|p| !p.t.is_finite()) {
        return (
            Reply::Error {
                code: ErrorCode::BadRequest,
                message: format!("timestamp at index {i} is not finite"),
            },
            After::Continue,
        );
    }
    if points.is_empty() {
        return (Reply::LateAppended { track, points: 0 }, After::Continue);
    }
    let n = points.len() as u64;
    let mut guard = shared.lock_fleet();
    let Some(state) = guard.as_mut() else {
        return (shutting_down_error(), After::Close);
    };
    if backfill {
        // One accepted batch becomes one flagged backfill record, so
        // it must be sorted within itself like any durable record.
        if let Some(i) = (1..points.len()).find(|&i| points[i].t < points[i - 1].t) {
            return (
                Reply::Error {
                    code: ErrorCode::BadRequest,
                    message: format!(
                        "backfill batch must be time-sorted within itself: \
                         timestamp at index {i} goes backwards"
                    ),
                },
                After::Continue,
            );
        }
        state
            .backfill
            .entry(track)
            .or_default()
            .push(points.to_vec());
        drop(guard);
        shared.backfill_points.fetch_add(n, Ordering::Relaxed); // ordering: relaxed stat counter, read after join()
        if let Some(m) = &shared.metrics {
            m.backfilled.add(n);
        }
        return (Reply::LateAppended { track, points: n }, After::Continue);
    }
    if state.reorder.is_none() {
        return (
            Reply::Error {
                code: ErrorCode::BadRequest,
                message: "server accepts no late points (started with --lateness 0); \
                          use the backfill path"
                    .to_string(),
            },
            After::Continue,
        );
    }
    match submit_reordered(state, track, points, shared) {
        Ok(()) => {
            drop(guard);
            shared.appended_points.fetch_add(n, Ordering::Relaxed); // ordering: relaxed stat counter, read after join()
            if let Some(tr) = &shared.trace {
                tr.record(TraceEventKind::FleetSubmit, conn, n);
            }
            (Reply::LateAppended { track, points: n }, After::Continue)
        }
        Err(e) => {
            drop(guard);
            refused_too_late(n, shared);
            (
                Reply::Error {
                    code: ErrorCode::TooLate,
                    message: e.to_string(),
                },
                After::Continue,
            )
        }
    }
}

fn handle_request(
    request: Request,
    shared: &Shared,
    greeted: &mut bool,
    conn: u64,
) -> (Reply, After) {
    // The handshake gate: only `Hello` is served before it passes.
    if !*greeted && !matches!(request, Request::Hello { .. }) {
        return (
            Reply::Error {
                code: ErrorCode::BadRequest,
                message: "expected Hello as the first message on a connection".to_string(),
            },
            After::Close,
        );
    }
    match request {
        Request::Hello { protocol } => {
            if protocol != PROTOCOL_VERSION {
                return (
                    Reply::Error {
                        code: ErrorCode::Unsupported,
                        message: format!(
                            "protocol {protocol} not supported (server speaks {PROTOCOL_VERSION})"
                        ),
                    },
                    After::Close,
                );
            }
            *greeted = true;
            (
                Reply::HelloOk {
                    protocol: PROTOCOL_VERSION,
                    workers: shared.workers as u64,
                },
                After::Continue,
            )
        }
        Request::Append { track, points } => {
            // The row-decoded path — reachable only through direct
            // `Request` handling (the servers catch `Append` in the
            // columnar fast path); kept for exactness with it.
            let batch = ColumnarBatch::from_points(&points);
            handle_append_columns(track, &batch, shared, conn)
        }
        Request::Flush => {
            let mut guard = shared.lock_fleet();
            let Some(state) = guard.as_mut() else {
                return (shutting_down_error(), After::Close);
            };
            state.fleet.flush();
            (Reply::Flushed, After::Continue)
        }
        Request::Query(spec) => match run_query(&spec, shared) {
            Ok(report) => (Reply::QueryResult(report), After::Continue),
            Err(e) => (
                Reply::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                },
                After::Continue,
            ),
        },
        Request::Stats => {
            let mut guard = shared.lock_fleet();
            let Some(state) = guard.as_mut() else {
                return (shutting_down_error(), After::Close);
            };
            let stats = state.fleet.live_stats();
            let shards = state
                .fleet
                .shard_counters()
                .into_iter()
                .map(|c| ShardStat {
                    shard: c.shard as u64,
                    tracks: c.tracks as u64,
                    submitted_points: c.submitted_points,
                    dead: c.dead,
                })
                .collect();
            drop(guard);
            (
                Reply::StatsReply(StatsReport {
                    stats,
                    shards,
                    connections: shared.connections.load(Ordering::Relaxed), // ordering: relaxed snapshot read; Stats tolerates small skew
                    appended_points: shared.appended_points.load(Ordering::Relaxed), // ordering: relaxed snapshot read; Stats tolerates small skew
                    uptime_s: shared.started.elapsed().as_secs(),
                    live_connections: shared.active.load(Ordering::SeqCst) as u64, // ordering: seqcst matches the admission-path accesses of `active`
                    peak_connections: shared.peak_active.load(Ordering::Relaxed) as u64, // ordering: relaxed snapshot read of an approximate watermark
                    rejected_connections: shared.rejected.load(Ordering::Relaxed), // ordering: relaxed snapshot read; Stats tolerates small skew
                }),
                After::Continue,
            )
        }
        Request::Metrics { prom } => {
            // Renders the full catalog — native `name value` lines, or
            // the Prometheus text exposition when the client asked for
            // it. An unmetered server answers with the documented empty
            // exposition rather than an error, so scrapers need no
            // special case.
            let text = shared
                .metrics
                .as_ref()
                .map(|m| {
                    if prom {
                        m.registry.render_prometheus()
                    } else {
                        m.registry.render()
                    }
                })
                .unwrap_or_default();
            (Reply::MetricsReply { text }, After::Continue)
        }
        Request::TraceDump { last, conn: want } => {
            // A recorder-less server answers the documented empty dump;
            // filters apply oldest-first so `last` keeps the newest.
            let (dropped, mut events) = match &shared.trace {
                Some(tr) => {
                    let snap = tr.snapshot();
                    (snap.dropped, snap.events)
                }
                None => (0, Vec::new()),
            };
            if let Some(id) = want {
                events.retain(|e| e.conn == id);
            }
            if let Some(last) = last {
                let keep = last.min(events.len() as u64) as usize;
                events.drain(..events.len() - keep);
            }
            (Reply::TraceReply { dropped, events }, After::Continue)
        }
        Request::AppendLate {
            track,
            backfill,
            points,
        } => handle_append_late(track, backfill, &points, shared, conn),
        Request::Subscribe { track, bbox } => {
            // The acknowledgement is queued like any reply; the runtime
            // performs the actual handoff only after it flushes, so the
            // client never sees pushed frames before `Subscribed`.
            (Reply::Subscribed, After::Subscribe { track, bbox })
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst); // ordering: seqcst publishes shutdown before the wake-up connect below
                                                           // Unblock the acceptor so the run loop can start draining.
            drop(TcpStream::connect(wake_addr(shared.local_addr)));
            (
                Reply::ShuttingDown {
                    connections: shared.connections.load(Ordering::Relaxed), // ordering: relaxed snapshot read for the farewell reply
                    appended_points: shared.appended_points.load(Ordering::Relaxed), // ordering: relaxed snapshot read for the farewell reply
                },
                After::Close,
            )
        }
    }
}

fn shutting_down_error() -> Reply {
    Reply::Error {
        code: ErrorCode::ShuttingDown,
        message: "server is shutting down".to_string(),
    }
}

/// The address the shutdown wake-up connects to. A server bound to a
/// wildcard address (`0.0.0.0` / `::`) cannot be *connected* to at
/// that address on every platform, so the wake-up targets loopback on
/// the same port instead.
fn wake_addr(local: SocketAddr) -> SocketAddr {
    if local.ip().is_unspecified() {
        let ip: std::net::IpAddr = match local {
            SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
            SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
        };
        SocketAddr::new(ip, local.port())
    } else {
        local
    }
}

/// Serves one query: consistent live snapshot first, then the unified
/// engine over (snapshot + spill tree). The engine is opened per query;
/// its own revalidation logic makes a cached one no cheaper beside
/// live writers.
fn run_query(spec: &QuerySpec, shared: &Shared) -> Result<QueryReport, NetError> {
    let start = shared.metrics.as_ref().map(|_| bqs_obs::now());
    let snapshot = {
        let mut guard = shared.lock_fleet();
        let Some(state) = guard.as_mut() else {
            return Err(NetError::Server {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".to_string(),
            });
        };
        state.fleet.snapshot()
    };
    let mut engine = QueryEngine::open(&shared.spill)?.with_snapshot(snapshot);
    let range = TimeRange::new(spec.from, spec.to);
    let output = match spec.bbox {
        Some([x0, y0, x1, y1]) => {
            let area = bqs_geo::Rect::from_corners(
                bqs_geo::Point2::new(x0, y0),
                bqs_geo::Point2::new(x1, y1),
            );
            engine.query_bbox(spec.track, area, Some(range))?
        }
        None => engine.query_time_range(spec.track, range)?,
    };
    if let (Some(m), Some(t)) = (&shared.metrics, start) {
        m.query_us.record(elapsed_us(t));
        m.query_shards_pruned.add(output.shards_pruned as u64);
        m.query_shards_opened
            .add((output.shards.len() - output.shards_pruned) as u64);
    }
    Ok(QueryReport {
        slices: output.slices,
        shards_pruned: output.shards_pruned as u64,
        hot_points: output.hot_points as u64,
        candidate_records: output.stats.candidate_records as u64,
        decoded_records: output.stats.decoded_records as u64,
    })
}

enum ReadOutcome {
    Done,
    Closed,
    Drained,
}

/// `read_exact` that a shutdown flag can interrupt. At a frame boundary
/// (`at_boundary`, nothing read yet) shutdown closes the connection
/// immediately; mid-frame, the peer gets [`DRAIN_GRACE`] to finish the
/// frame before the server gives up on it.
fn read_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    at_boundary: bool,
) -> Result<ReadOutcome, NetError> {
    let mut filled = 0usize;
    let mut drain_deadline: Option<Instant> = None;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && at_boundary {
                    return Ok(ReadOutcome::Closed);
                }
                return Err(NetError::Wire(WireError::Torn {
                    needed: buf.len() - filled,
                    got: filled,
                }));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // ordering: seqcst so the reader observes the drain decision promptly
                if shutdown.load(Ordering::SeqCst) {
                    if at_boundary && filled == 0 {
                        return Ok(ReadOutcome::Drained);
                    }
                    let deadline =
                        *drain_deadline.get_or_insert_with(|| bqs_obs::now() + DRAIN_GRACE);
                    if bqs_obs::now() >= deadline {
                        return Ok(ReadOutcome::Drained);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::io("read frame", e)),
        }
    }
    Ok(ReadOutcome::Done)
}

/// Reads one frame, polling the shutdown flag between reads. `Ok(None)`
/// when the connection is done: clean EOF, or shutdown drained it.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Option<Vec<u8>>, NetError> {
    let mut header = [0u8; HEADER_BYTES];
    match read_interruptible(stream, &mut header, shutdown, true)? {
        ReadOutcome::Done => {}
        ReadOutcome::Closed | ReadOutcome::Drained => return Ok(None),
    }
    if header[..2] != FRAME_MAGIC {
        return Err(NetError::Wire(WireError::BadMagic {
            found: [header[0], header[1]],
        }));
    }
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(NetError::Wire(WireError::Oversized {
            len: len as u64,
            max: MAX_FRAME_BYTES as u64,
        }));
    }
    let mut body = vec![0u8; len + 4];
    match read_interruptible(stream, &mut body, shutdown, false)? {
        ReadOutcome::Done => {}
        ReadOutcome::Closed | ReadOutcome::Drained => return Ok(None),
    }
    let declared = u32::from_le_bytes([body[len], body[len + 1], body[len + 2], body[len + 3]]);
    body.truncate(len);
    let computed = crc32(&body);
    if computed != declared {
        return Err(NetError::Wire(WireError::BadCrc { computed, declared }));
    }
    Ok(Some(body))
}
