//! The serving runtime: an acceptor plus per-connection reader threads
//! feeding one shared [`ParallelFleet`] through the existing batched
//! submission path.
//!
//! ```text
//!  client ──TCP──► reader thread ─┐
//!  client ──TCP──► reader thread ─┼─► Mutex<ParallelFleet> ─► worker shards ─► spill logs
//!  client ──TCP──► reader thread ─┘         │
//!                                           └─ snapshot() ─► QueryEngine (hot + cold)
//! ```
//!
//! * **Backpressure end to end** — a reader thread pushes straight into
//!   the fleet while holding its lock; when a worker shard's bounded
//!   channel is full, [`ParallelFleet::push`] blocks, the reader stops
//!   reading, the kernel's TCP window fills, and the remote client's
//!   `append` blocks. No unbounded queue exists anywhere on the path.
//!   The granularity is deliberately coarse: submissions serialise on
//!   one fleet lock, so a saturated shard pauses ingest across *all*
//!   connections until its channel drains — a bounded-stall trade the
//!   thread-per-connection design makes for exact semantics.
//! * **Queries are hot + cold** — `Query` takes a consistent
//!   [`ParallelFleet::snapshot`] of the live fleet (every point
//!   submitted before the request is visible) and merges it with the
//!   spill tree through [`QueryEngine`], durable data winning on
//!   overlap; a mid-run answer for a closed track is exactly the
//!   answer the finished tree will give.
//! * **Graceful shutdown** — `Shutdown` stops the acceptor, drains
//!   every connection (in-flight frames complete; idle connections are
//!   closed), `finish_all`s the fleet via [`ParallelFleet::join`],
//!   spills every session, writes the tree `MANIFEST`, and leaves a
//!   directory `bqs log verify` accepts.
//!
//! The server is deliberately thread-per-connection over `std::net`:
//! the fleet's worker shards — not connection parsing — are the
//! throughput-bearing stage, and blocking reads give exact
//! backpressure semantics for free.

use crate::error::NetError;
use crate::wire::{
    write_frame, ErrorCode, QueryReport, QuerySpec, Reply, Request, ShardStat, StatsReport,
    WireError, FRAME_MAGIC, HEADER_BYTES, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use bqs_core::fleet::{FleetConfig, ParallelConfig, ParallelFleet};
use bqs_core::stream::DecisionStats;
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;
use bqs_tlog::crc::crc32;
use bqs_tlog::{
    prepare_spill_logs, LogConfig, Manifest, QueryEngine, SpillSink, TimeRange, TrajectoryLog,
};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long a connection may keep a frame in flight after shutdown
/// before the server stops waiting for it.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// The poll interval at which blocked reads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, `host:port` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Fleet worker shards; 1 spills a flat log, more a `shard-<k>/`
    /// tree.
    pub workers: usize,
    /// Directory the fleet spills closed sessions into. Must be empty
    /// or absent (the same rule as `bqs fleet --spill`).
    pub spill: PathBuf,
    /// Compression tolerance in metres.
    pub tolerance: f64,
    /// Session shards inside each worker's engine.
    pub shards: usize,
}

impl ServerConfig {
    /// A config with the workspace defaults (10 m tolerance, 16 engine
    /// shards) for the given bind address, worker count and spill dir.
    pub fn new(addr: impl Into<String>, workers: usize, spill: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            workers,
            spill: spill.into(),
            tolerance: 10.0,
            shards: 16,
        }
    }
}

/// What a completed serve run accomplished, returned by [`Server::run`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Frames processed across all connections.
    pub frames: u64,
    /// Points accepted into the fleet.
    pub appended_points: u64,
    /// Sessions made durable at shutdown (plus earlier evictions).
    pub spilled_sessions: usize,
    /// Compressed points in the spill tree.
    pub spilled_points: u64,
    /// Bytes the spilled records occupy on disk.
    pub spilled_bytes: u64,
    /// Decision statistics merged across all worker engines.
    pub stats: DecisionStats,
    /// Shards named in the written `MANIFEST` (0 for a flat log).
    pub manifest_shards: usize,
}

/// The ingest state behind the connection handlers: the fleet plus the
/// per-track time watermarks that guard it.
struct FleetState {
    fleet: ParallelFleet<SpillSink<TrajectoryLog>>,
    /// Highest accepted timestamp per track. The wire decoder cannot
    /// enforce time order (only the encoder does), so the server
    /// re-validates every batch against this watermark — a crafted
    /// frame with backwards or non-finite timestamps must never reach
    /// the fleet, where it would poison the track's spill at close.
    last_t: std::collections::HashMap<u64, f64>,
}

type FleetSlot = Mutex<Option<FleetState>>;

struct Shared {
    fleet: FleetSlot,
    spill: PathBuf,
    workers: usize,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    connections: AtomicU64,
    frames: AtomicU64,
    appended_points: AtomicU64,
}

impl Shared {
    /// Locks the fleet slot; a poisoned lock (a handler died mid-call)
    /// still yields the fleet — worst case a worker shard is dead,
    /// which `join` reports — instead of panicking every later caller.
    fn lock_fleet(&self) -> std::sync::MutexGuard<'_, Option<FleetState>> {
        self.fleet.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A bound-but-not-yet-running ingest/query server. Construct with
/// [`Server::bind`], read the actual address with
/// [`Server::local_addr`] (useful with port 0), then block in
/// [`Server::run`] until a client sends `Shutdown`.
///
/// # Examples
///
/// ```
/// use bqs_net::{BqsClient, Server, ServerConfig};
/// use bqs_geo::TimedPoint;
///
/// let dir = std::env::temp_dir().join(format!("bqs-net-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let server = Server::bind(ServerConfig::new("127.0.0.1:0", 2, &dir)).unwrap();
/// let addr = server.local_addr();
/// let handle = std::thread::spawn(move || server.run().unwrap());
///
/// let mut client = BqsClient::connect(addr).unwrap();
/// let points: Vec<TimedPoint> =
///     (0..100).map(|i| TimedPoint::new(i as f64 * 9.0, 0.0, i as f64 * 60.0)).collect();
/// client.append(7, &points).unwrap();
/// client.shutdown().unwrap();
///
/// let report = handle.join().unwrap();
/// assert_eq!(report.appended_points, 100);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Validates the config, prepares the spill layout (flat log for 1
    /// worker, `shard-<k>/` tree above), spawns the fleet workers and
    /// binds the listener. Refuses a non-empty or layout-incompatible
    /// spill directory up front, exactly like `bqs fleet --spill`.
    pub fn bind(config: ServerConfig) -> Result<Server, NetError> {
        if config.workers == 0 {
            return Err(NetError::Config("serve needs --workers ≥ 1, got 0".into()));
        }
        if !(config.tolerance.is_finite() && config.tolerance > 0.0) {
            return Err(NetError::Config(format!(
                "tolerance must be > 0, got {}",
                config.tolerance
            )));
        }
        // One shared guard + open path with `bqs fleet --spill`: the
        // layout rules and their messages cannot drift between the two
        // writers.
        let mut logs: Vec<Option<TrajectoryLog>> =
            prepare_spill_logs(&config.spill, config.workers, LogConfig::default())?
                .into_iter()
                .map(Some)
                .collect();
        let bqs_config = BqsConfig::new(config.tolerance)
            .map_err(|e| NetError::Config(format!("tolerance: {e}")))?;
        let fleet = ParallelFleet::new(
            ParallelConfig {
                workers: config.workers,
                fleet: FleetConfig {
                    shards: config.shards,
                    ..FleetConfig::default()
                },
                ..ParallelConfig::default()
            },
            move || FastBqsCompressor::new(bqs_config),
            |shard| SpillSink::new(logs[shard].take().expect("one log per shard")),
        );
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| NetError::io(format!("bind {}", config.addr), e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::io("local_addr", e))?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                fleet: Mutex::new(Some(FleetState {
                    fleet,
                    last_t: std::collections::HashMap::new(),
                })),
                spill: config.spill,
                workers: config.workers,
                local_addr,
                shutdown: AtomicBool::new(false),
                connections: AtomicU64::new(0),
                frames: AtomicU64::new(0),
                appended_points: AtomicU64::new(0),
            }),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Serves until a client sends `Shutdown`, then drains connections,
    /// finishes the fleet, spills every session, writes the `MANIFEST`
    /// (multi-worker trees) and reports what happened.
    ///
    /// Transient accept failures (a client resetting mid-handshake, fd
    /// pressure) are retried; only a *persistently* failing listener
    /// (≈10 s of consecutive errors) stops the server — and even then
    /// it drains, spills and reports instead of abandoning the fleet.
    pub fn run(self) -> Result<ServeReport, NetError> {
        const MAX_CONSECUTIVE_ACCEPT_FAILURES: u32 = 100;
        let mut handles = Vec::new();
        let mut accept_failures = 0u32;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    accept_failures = 0;
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        // The wake-up connection (or a late client):
                        // not served.
                        drop(stream);
                        break;
                    }
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    let shared = Arc::clone(&self.shared);
                    handles.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared)
                    }));
                }
                Err(_) if self.shared.shutdown.load(Ordering::SeqCst) => break,
                Err(_) => {
                    accept_failures += 1;
                    if accept_failures >= MAX_CONSECUTIVE_ACCEPT_FAILURES {
                        // The listener is gone for good: stop accepting
                        // but still drain and make everything durable.
                        self.shared.shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
            }
        }
        for handle in handles {
            // A handler panic poisons nothing we still need; keep
            // draining the rest and finish the fleet regardless.
            let _ = handle.join();
        }
        self.finalize()
    }

    fn finalize(&self) -> Result<ServeReport, NetError> {
        let state = self
            .shared
            .lock_fleet()
            .take()
            .expect("finalize runs once, after the accept loop");
        let join = state.fleet.join();
        if let Some(failure) = join.failures.first() {
            return Err(NetError::Fleet {
                shard: failure.shard,
                panic: failure.panic.clone(),
                sessions: failure.tracks.len(),
            });
        }
        let stats = join.stats;
        let mut spilled_sessions = 0usize;
        let mut spilled_points = 0u64;
        let mut spilled_bytes = 0u64;
        for shard in join.shards {
            let reports = shard
                .sink
                .finish()
                .map_err(|failure| NetError::Spill(failure.to_string()))?;
            spilled_sessions += reports.len();
            spilled_points += reports.iter().map(|r| r.points).sum::<u64>();
            spilled_bytes += reports.iter().map(|r| r.bytes).sum::<u64>();
        }
        let manifest_shards = if self.shared.workers > 1 {
            Manifest::rebuild(&self.shared.spill)?.shards.len()
        } else {
            0
        };
        Ok(ServeReport {
            connections: self.shared.connections.load(Ordering::Relaxed),
            frames: self.shared.frames.load(Ordering::Relaxed),
            appended_points: self.shared.appended_points.load(Ordering::Relaxed),
            spilled_sessions,
            spilled_points,
            spilled_bytes,
            stats,
            manifest_shards,
        })
    }
}

/// One reader's verdict after handling a frame.
enum After {
    /// Keep serving this connection.
    Continue,
    /// Close this connection (frame-level failure or shutdown).
    Close,
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // The protocol requires `Hello` to open every connection; nothing
    // else is served before the handshake succeeds.
    let mut greeted = false;
    loop {
        let payload = match read_frame_interruptible(&mut stream, &shared.shutdown) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF or drained shutdown
            Err(NetError::Wire(e)) => {
                // The stream cannot be resynchronised after a framing
                // violation: report and close.
                let reply = Reply::Error {
                    code: ErrorCode::BadFrame,
                    message: e.to_string(),
                };
                send_reply(&mut writer, &reply);
                return;
            }
            Err(_) => return, // transport died
        };
        shared.frames.fetch_add(1, Ordering::Relaxed);
        let (reply, after) = match Request::decode(&payload) {
            Ok(request) => handle_request(request, shared, &mut greeted),
            Err(e) => (
                Reply::Error {
                    code: ErrorCode::BadFrame,
                    message: e.to_string(),
                },
                After::Close,
            ),
        };
        if !send_reply(&mut writer, &reply) {
            return;
        }
        if matches!(after, After::Close) {
            return;
        }
    }
}

fn send_reply(writer: &mut TcpStream, reply: &Reply) -> bool {
    let payload = match reply.encode() {
        Ok(payload) => payload,
        // A reply that cannot be encoded (a codec invariant violated by
        // query output — never expected) degrades to a typed error.
        Err(e) => Reply::Error {
            code: ErrorCode::Internal,
            message: format!("cannot encode reply: {e}"),
        }
        .encode()
        .expect("error replies always encode"),
    };
    write_frame(writer, &payload).is_ok()
}

/// Validates an append batch against the codec's time invariant and
/// the track's accepted watermark. The wire *decoder* cannot enforce
/// this (only the encoder does), so without the check a crafted frame
/// would be acked, reach the fleet, and poison the track's spill at
/// session close — losing the whole shard's durable output.
fn validate_batch(points: &[TimedPoint], watermark: Option<f64>) -> Result<(), String> {
    let mut prev = watermark;
    for (i, p) in points.iter().enumerate() {
        if !p.t.is_finite() {
            return Err(format!("timestamp at index {i} is not finite"));
        }
        if let Some(prev) = prev {
            if p.t < prev {
                return Err(format!(
                    "timestamp at index {i} goes backwards: {} < {prev} \
                     (the track's accepted stream is time-ordered)",
                    p.t
                ));
            }
        }
        prev = Some(p.t);
    }
    Ok(())
}

fn handle_request(request: Request, shared: &Shared, greeted: &mut bool) -> (Reply, After) {
    // The handshake gate: only `Hello` is served before it passes.
    if !*greeted && !matches!(request, Request::Hello { .. }) {
        return (
            Reply::Error {
                code: ErrorCode::BadRequest,
                message: "expected Hello as the first message on a connection".to_string(),
            },
            After::Close,
        );
    }
    match request {
        Request::Hello { protocol } => {
            if protocol != PROTOCOL_VERSION {
                return (
                    Reply::Error {
                        code: ErrorCode::Unsupported,
                        message: format!(
                            "protocol {protocol} not supported (server speaks {PROTOCOL_VERSION})"
                        ),
                    },
                    After::Close,
                );
            }
            *greeted = true;
            (
                Reply::HelloOk {
                    protocol: PROTOCOL_VERSION,
                    workers: shared.workers as u64,
                },
                After::Continue,
            )
        }
        Request::Append { track, points } => {
            let mut guard = shared.lock_fleet();
            let Some(state) = guard.as_mut() else {
                return (shutting_down_error(), After::Close);
            };
            if let Err(message) = validate_batch(&points, state.last_t.get(&track).copied()) {
                // Semantically invalid but well-framed: the batch is
                // rejected whole and the connection survives.
                return (
                    Reply::Error {
                        code: ErrorCode::BadRequest,
                        message,
                    },
                    After::Continue,
                );
            }
            if let Some(last) = points.last() {
                state.last_t.insert(track, last.t);
            }
            // Backpressure: this push blocks (fleet lock held, socket
            // unread) when the track's worker shard is saturated.
            let n = points.len() as u64;
            for p in points {
                state.fleet.push(track, p);
            }
            drop(guard);
            shared.appended_points.fetch_add(n, Ordering::Relaxed);
            (Reply::Appended { track, points: n }, After::Continue)
        }
        Request::Flush => {
            let mut guard = shared.lock_fleet();
            let Some(state) = guard.as_mut() else {
                return (shutting_down_error(), After::Close);
            };
            state.fleet.flush();
            (Reply::Flushed, After::Continue)
        }
        Request::Query(spec) => match run_query(&spec, shared) {
            Ok(report) => (Reply::QueryResult(report), After::Continue),
            Err(e) => (
                Reply::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                },
                After::Continue,
            ),
        },
        Request::Stats => {
            let mut guard = shared.lock_fleet();
            let Some(state) = guard.as_mut() else {
                return (shutting_down_error(), After::Close);
            };
            let stats = state.fleet.live_stats();
            let shards = state
                .fleet
                .shard_counters()
                .into_iter()
                .map(|c| ShardStat {
                    shard: c.shard as u64,
                    tracks: c.tracks as u64,
                    submitted_points: c.submitted_points,
                    dead: c.dead,
                })
                .collect();
            drop(guard);
            (
                Reply::StatsReply(StatsReport {
                    stats,
                    shards,
                    connections: shared.connections.load(Ordering::Relaxed),
                    appended_points: shared.appended_points.load(Ordering::Relaxed),
                }),
                After::Continue,
            )
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the acceptor so the run loop can start draining.
            drop(TcpStream::connect(wake_addr(shared.local_addr)));
            (
                Reply::ShuttingDown {
                    connections: shared.connections.load(Ordering::Relaxed),
                    appended_points: shared.appended_points.load(Ordering::Relaxed),
                },
                After::Close,
            )
        }
    }
}

fn shutting_down_error() -> Reply {
    Reply::Error {
        code: ErrorCode::ShuttingDown,
        message: "server is shutting down".to_string(),
    }
}

/// The address the shutdown wake-up connects to. A server bound to a
/// wildcard address (`0.0.0.0` / `::`) cannot be *connected* to at
/// that address on every platform, so the wake-up targets loopback on
/// the same port instead.
fn wake_addr(local: SocketAddr) -> SocketAddr {
    if local.ip().is_unspecified() {
        let ip: std::net::IpAddr = match local {
            SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
            SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
        };
        SocketAddr::new(ip, local.port())
    } else {
        local
    }
}

/// Serves one query: consistent live snapshot first, then the unified
/// engine over (snapshot + spill tree). The engine is opened per query;
/// its own revalidation logic makes a cached one no cheaper beside
/// live writers.
fn run_query(spec: &QuerySpec, shared: &Shared) -> Result<QueryReport, NetError> {
    let snapshot = {
        let mut guard = shared.lock_fleet();
        let Some(state) = guard.as_mut() else {
            return Err(NetError::Server {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".to_string(),
            });
        };
        state.fleet.snapshot()
    };
    let mut engine = QueryEngine::open(&shared.spill)?.with_snapshot(snapshot);
    let range = TimeRange::new(spec.from, spec.to);
    let output = match spec.bbox {
        Some([x0, y0, x1, y1]) => {
            let area = bqs_geo::Rect::from_corners(
                bqs_geo::Point2::new(x0, y0),
                bqs_geo::Point2::new(x1, y1),
            );
            engine.query_bbox(spec.track, area, Some(range))?
        }
        None => engine.query_time_range(spec.track, range)?,
    };
    Ok(QueryReport {
        slices: output.slices,
        shards_pruned: output.shards_pruned as u64,
        hot_points: output.hot_points as u64,
        candidate_records: output.stats.candidate_records as u64,
        decoded_records: output.stats.decoded_records as u64,
    })
}

enum ReadOutcome {
    Done,
    Closed,
    Drained,
}

/// `read_exact` that a shutdown flag can interrupt. At a frame boundary
/// (`at_boundary`, nothing read yet) shutdown closes the connection
/// immediately; mid-frame, the peer gets [`DRAIN_GRACE`] to finish the
/// frame before the server gives up on it.
fn read_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    at_boundary: bool,
) -> Result<ReadOutcome, NetError> {
    let mut filled = 0usize;
    let mut drain_deadline: Option<Instant> = None;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && at_boundary {
                    return Ok(ReadOutcome::Closed);
                }
                return Err(NetError::Wire(WireError::Torn {
                    needed: buf.len() - filled,
                    got: filled,
                }));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    if at_boundary && filled == 0 {
                        return Ok(ReadOutcome::Drained);
                    }
                    let deadline =
                        *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
                    if Instant::now() >= deadline {
                        return Ok(ReadOutcome::Drained);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::io("read frame", e)),
        }
    }
    Ok(ReadOutcome::Done)
}

/// Reads one frame, polling the shutdown flag between reads. `Ok(None)`
/// when the connection is done: clean EOF, or shutdown drained it.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Option<Vec<u8>>, NetError> {
    let mut header = [0u8; HEADER_BYTES];
    match read_interruptible(stream, &mut header, shutdown, true)? {
        ReadOutcome::Done => {}
        ReadOutcome::Closed | ReadOutcome::Drained => return Ok(None),
    }
    if header[..2] != FRAME_MAGIC {
        return Err(NetError::Wire(WireError::BadMagic {
            found: [header[0], header[1]],
        }));
    }
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(NetError::Wire(WireError::Oversized {
            len: len as u64,
            max: MAX_FRAME_BYTES as u64,
        }));
    }
    let mut body = vec![0u8; len + 4];
    match read_interruptible(stream, &mut body, shutdown, false)? {
        ReadOutcome::Done => {}
        ReadOutcome::Closed | ReadOutcome::Drained => return Ok(None),
    }
    let declared = u32::from_le_bytes([body[len], body[len + 1], body[len + 2], body[len + 3]]);
    body.truncate(len);
    let computed = crc32(&body);
    if computed != declared {
        return Err(NetError::Wire(WireError::BadCrc { computed, declared }));
    }
    Ok(Some(body))
}
