//! End-to-end loopback tests of the serving runtime: concurrent
//! connections, mid-run unified queries, stats, protocol violations and
//! graceful shutdown to a verified spill tree.

use bqs_core::stream::compress_all;
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_net::wire::{frame_to_vec, read_frame, write_frame, ErrorCode, Reply};
use bqs_net::{BqsClient, NetError, Server, ServerConfig};
use bqs_tlog::{LogConfig, TrajectoryLog};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_root(tag: &str) -> PathBuf {
    // ordering: relaxed unique-id ticket — only atomicity matters for distinct temp dirs
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("bqs-net-loopback")
        .join(format!("{tag}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wave(track: u64, n: usize) -> Vec<bqs_geo::TimedPoint> {
    (0..n)
        .map(|i| {
            let a = i as f64;
            bqs_geo::TimedPoint::new(
                a * 8.0 + track as f64,
                (a * 0.21 + track as f64).sin() * 25.0,
                a * 60.0,
            )
        })
        .collect()
}

fn start(
    workers: usize,
    root: &PathBuf,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<bqs_net::ServeReport>,
) {
    let server = Server::bind(ServerConfig::new("127.0.0.1:0", workers, root)).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

#[test]
fn concurrent_clients_ingest_and_the_spilled_tree_matches_solo_compression() {
    let root = temp_root("ingest");
    let (addr, server) = start(4, &root);

    // Three clients, four tracks each, batches interleaved per client.
    std::thread::scope(|scope| {
        for c in 0u64..3 {
            scope.spawn(move || {
                let mut client = BqsClient::connect(addr).expect("connect");
                assert_eq!(client.workers(), 4);
                let tracks: Vec<u64> = (0..12).filter(|t| t % 3 == c).collect();
                let traces: Vec<(u64, Vec<_>)> =
                    tracks.iter().map(|&t| (t, wave(t, 120))).collect();
                for chunk in 0..(120 / 30) {
                    for (track, trace) in &traces {
                        let sent = client
                            .append(*track, &trace[chunk * 30..(chunk + 1) * 30])
                            .expect("append");
                        assert_eq!(sent, 30);
                    }
                }
                client.flush().expect("flush");
            });
        }
    });

    // Stats reflect every submitted point, per shard and merged.
    let mut probe = BqsClient::connect(addr).expect("connect");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.stats.points, 12 * 120);
    assert_eq!(stats.shards.len(), 4);
    assert_eq!(
        stats.shards.iter().map(|s| s.submitted_points).sum::<u64>(),
        12 * 120
    );
    assert_eq!(stats.appended_points, 12 * 120);
    assert!(stats.shards.iter().all(|s| !s.dead));

    // A mid-run query sees every live session (nothing spilled yet).
    let report = probe
        .query_time_range(None, f64::NEG_INFINITY, f64::INFINITY)
        .expect("query");
    assert_eq!(report.slices.len(), 12);
    assert!(report.hot_points > 0);
    let config = BqsConfig::new(10.0).unwrap();
    for slice in &report.slices {
        let expected = compress_all(&mut FastBqsCompressor::new(config), wave(slice.track, 120));
        assert_eq!(slice.points, expected, "track {}", slice.track);
    }

    let ack = probe.shutdown().expect("shutdown");
    assert_eq!(ack.appended_points, 12 * 120);
    let report = server.join().expect("server thread");
    assert_eq!(report.appended_points, 12 * 120);
    assert_eq!(report.spilled_sessions, 12);
    assert_eq!(report.manifest_shards, 4);
    assert_eq!(report.stats.points, 12 * 120);

    // The tree verifies, and every track reads back byte-identical to
    // solo compression.
    bqs_tlog::verify_sharded(&root).expect("tree verifies");
    for t in 0..12u64 {
        let shard = bqs_core::fleet::worker_of(t, 4);
        let (log, _) =
            TrajectoryLog::open(bqs_tlog::shard_dir(&root, shard), LogConfig::default()).unwrap();
        let expected = compress_all(&mut FastBqsCompressor::new(config), wave(t, 120));
        assert_eq!(log.read_track(t).unwrap(), expected, "track {t}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn single_worker_spills_a_flat_log() {
    let root = temp_root("flat");
    let (addr, server) = start(1, &root);
    let mut client = BqsClient::connect(addr).expect("connect");
    client.append(3, &wave(3, 80)).expect("append");
    client.shutdown().expect("shutdown");
    let report = server.join().expect("server thread");
    assert_eq!(report.spilled_sessions, 1);
    assert_eq!(report.manifest_shards, 0);
    let (log, _) = TrajectoryLog::open(&root, LogConfig::default()).unwrap();
    let config = BqsConfig::new(10.0).unwrap();
    let expected = compress_all(&mut FastBqsCompressor::new(config), wave(3, 80));
    assert_eq!(log.read_track(3).unwrap(), expected);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn bad_batches_and_bad_frames_get_typed_errors() {
    let root = temp_root("errors");
    let (addr, server) = start(2, &root);

    // A well-formed frame whose append batch decodes to garbage points
    // is an application-level error; the connection survives.
    let mut client = BqsClient::connect(addr).expect("connect");
    let backwards = [
        bqs_geo::TimedPoint::new(0.0, 0.0, 10.0),
        bqs_geo::TimedPoint::new(1.0, 0.0, 5.0),
    ];
    match client.append(1, &backwards) {
        Err(NetError::Wire(_)) => {} // rejected client-side at encode
        other => panic!("expected a wire error, got {other:?}"),
    }
    client.append(1, &wave(1, 10)).expect("connection survives");

    // Raw garbage after the handshake: the server answers a typed
    // bad-frame error and closes the connection.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    write_frame(
        &mut raw,
        &bqs_net::Request::Hello {
            protocol: bqs_net::PROTOCOL_VERSION,
        }
        .encode()
        .unwrap(),
    )
    .unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let hello = read_frame(&mut reader).unwrap().expect("hello reply");
    assert!(matches!(
        Reply::decode(&hello).unwrap(),
        Reply::HelloOk { .. }
    ));
    // Corrupt a frame's payload byte: CRC mismatch on the server.
    let mut framed = frame_to_vec(&bqs_net::Request::Stats.encode().unwrap());
    let last = framed.len() - 5; // inside the payload
    framed[last] ^= 0xFF;
    raw.write_all(&framed).unwrap();
    raw.flush().unwrap();
    let reply = read_frame(&mut reader).unwrap().expect("error reply");
    match Reply::decode(&reply).unwrap() {
        Reply::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("checksum"), "{message}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // The server closed the unsynced connection.
    assert!(read_frame(&mut reader).unwrap().is_none());

    // An unsupported protocol version is refused at handshake.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    write_frame(
        &mut raw,
        &bqs_net::Request::Hello { protocol: 99 }.encode().unwrap(),
    )
    .unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let reply = read_frame(&mut reader).unwrap().expect("reply");
    match Reply::decode(&reply).unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Unsupported),
        other => panic!("expected Error, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shutdown_drains_idle_connections() {
    let root = temp_root("drain");
    let (addr, server) = start(2, &root);
    // An idle client that never sends anything must not wedge shutdown.
    let idle = BqsClient::connect(addr).expect("idle connect");
    let mut active = BqsClient::connect(addr).expect("active connect");
    active.append(1, &wave(1, 50)).expect("append");
    active.shutdown().expect("shutdown");
    let report = server
        .join()
        .expect("server drains despite the idle client");
    assert_eq!(report.connections, 2);
    assert_eq!(report.spilled_sessions, 1);
    drop(idle);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_used_spill_directory_is_refused_up_front() {
    let root = temp_root("used");
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(root.join("junk.txt"), b"x").unwrap();
    match Server::bind(ServerConfig::new("127.0.0.1:0", 2, &root)) {
        Err(e) => assert!(e.to_string().contains("fresh directory"), "{e}"),
        Ok(_) => panic!("expected the spill guard to fire"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn batches_violating_the_track_watermark_are_rejected_without_poisoning_the_spill() {
    let root = temp_root("watermark");
    let (addr, server) = start(2, &root);
    let mut client = BqsClient::connect(addr).expect("connect");

    // Establish a watermark at t = 60·49, then try to rewind the track.
    client.append(5, &wave(5, 50)).expect("append");
    let rewind = [bqs_geo::TimedPoint::new(1.0, 1.0, 3.0)];
    match client.append(5, &rewind) {
        Err(NetError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("backwards"), "{message}");
        }
        other => panic!("expected a bad-request rejection, got {other:?}"),
    }
    // The connection survives, the track keeps working past the
    // watermark, and shutdown spills cleanly (nothing was poisoned).
    let more: Vec<bqs_geo::TimedPoint> = wave(5, 60).split_off(50);
    client.append(5, &more).expect("append past the watermark");
    client.shutdown().expect("shutdown");
    let report = server.join().expect("server thread");
    // 50 accepted + 10 accepted past the watermark; the rewind batch
    // contributed nothing.
    assert_eq!(report.appended_points, 60);
    assert_eq!(report.spilled_sessions, 1);
    bqs_tlog::verify_sharded(&root).expect("tree verifies");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn over_capacity_accepts_get_a_typed_error_and_a_graceful_close() {
    // Both runtimes share the admission gate: the multiplexed pool and
    // the legacy thread-per-connection mode.
    for io_threads in [2usize, 0] {
        let root = temp_root(&format!("capacity-{io_threads}"));
        let mut config = ServerConfig::new("127.0.0.1:0", 2, &root);
        config.io_threads = io_threads;
        config.max_connections = 2;
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("serve"));

        // Fill the table.
        let mut first = BqsClient::connect(addr).expect("connect 1");
        let second = BqsClient::connect(addr).expect("connect 2");

        // The next connection is answered with one typed error frame,
        // then closed — not hung, not silently dropped.
        match BqsClient::connect(addr) {
            Err(NetError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::OverCapacity);
                assert!(message.contains("connection table full"), "{message}");
            }
            Err(other) => panic!("expected an over-capacity rejection, got {other:?}"),
            Ok(_) => panic!("expected an over-capacity rejection, got a connection"),
        }

        // The admitted connections still work, and closing one frees a
        // slot (the pool notices the EOF asynchronously: retry briefly).
        first.append(1, &wave(1, 30)).expect("admitted still works");
        drop(second);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut readmitted = loop {
            match BqsClient::connect(addr) {
                Ok(client) => break client,
                Err(NetError::Server {
                    code: ErrorCode::OverCapacity,
                    ..
                }) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Err(other) => panic!("expected a freed slot, got {other:?}"),
            }
        };
        readmitted.append(2, &wave(2, 30)).expect("append");
        drop(first);
        readmitted.shutdown().expect("shutdown");

        let report = handle.join().expect("server thread");
        assert!(
            report.rejected_connections >= 1,
            "rejections are counted: {report:?}"
        );
        assert_eq!(report.appended_points, 60);
        bqs_tlog::verify_sharded(&root).expect("tree verifies");
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn requests_before_the_handshake_are_refused() {
    let root = temp_root("no-hello");
    let (addr, server) = start(1, &root);
    // Skip Hello entirely: the first real request must be refused and
    // the connection closed.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    write_frame(&mut raw, &bqs_net::Request::Stats.encode().unwrap()).unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let reply = read_frame(&mut reader).unwrap().expect("reply");
    match Reply::decode(&reply).unwrap() {
        Reply::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("Hello"), "{message}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    assert!(read_frame(&mut reader).unwrap().is_none(), "closed");

    BqsClient::connect(addr)
        .expect("handshaking clients still work")
        .shutdown()
        .expect("shutdown");
    server.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&root);
}
