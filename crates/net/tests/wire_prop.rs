//! Property tests for the wire codec: every message type round-trips
//! through encode → frame → deframe → decode for arbitrary contents,
//! and every way a frame can be damaged in transit — torn anywhere,
//! truncated length prefix, corrupted payload or checksum — is a typed
//! rejection, never a panic or silent acceptance.

use bqs_geo::{ColumnarBatch, TimedPoint};
use bqs_net::wire::{
    decode_append_columns, decode_frame, encode_append_columns, frame_to_vec, ErrorCode,
    QueryReport, QuerySpec, Reply, Request, ShardStat, StatsReport, WireError, HEADER_BYTES,
    PROTOCOL_VERSION,
};
use bqs_tlog::codec::{encode_columns, encode_points};
use bqs_tlog::TrackSlice;
use proptest::prelude::*;

/// A deterministic pseudo-random point stream with non-decreasing
/// timestamps (what the codec embedded in `Append`/`QueryResult`
/// requires).
fn points(seed: u64, n: usize) -> Vec<TimedPoint> {
    let mut s = seed | 1;
    let mut rnd = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / ((1u64 << 31) as f64) - 1.0
    };
    let mut x = rnd() * 1_000.0;
    let mut y = rnd() * 1_000.0;
    let mut t = rnd().abs() * 100.0;
    (0..n)
        .map(|_| {
            x += rnd() * 40.0;
            y += rnd() * 40.0;
            t += rnd().abs() * 30.0;
            TimedPoint::new(x, y, t)
        })
        .collect()
}

/// One of each request kind, parameterised by the generated inputs.
fn requests(seed: u64, track: u64, n: usize) -> Vec<Request> {
    vec![
        Request::Hello {
            protocol: PROTOCOL_VERSION,
        },
        Request::Append {
            track,
            points: points(seed, n),
        },
        Request::Flush,
        Request::Query(QuerySpec {
            track: track.is_multiple_of(2).then_some(track),
            from: if track.is_multiple_of(3) {
                f64::NEG_INFINITY
            } else {
                seed as f64 * 0.25
            },
            to: seed as f64 + n as f64,
            bbox: (!track.is_multiple_of(2))
                .then(|| [-(seed as f64), 0.5, track as f64 * 3.0, n as f64 * 7.0]),
        }),
        Request::Stats,
        Request::Metrics {
            prom: track.is_multiple_of(2),
        },
        Request::TraceDump {
            last: track.is_multiple_of(2).then_some(seed % 4096),
            conn: track.is_multiple_of(3).then_some(track),
        },
        Request::Shutdown,
    ]
}

/// One of each reply kind, parameterised by the generated inputs.
fn replies(seed: u64, track: u64, n: usize) -> Vec<Reply> {
    vec![
        Reply::HelloOk {
            protocol: PROTOCOL_VERSION,
            workers: track + 1,
        },
        Reply::Appended {
            track,
            points: n as u64,
        },
        Reply::Flushed,
        Reply::QueryResult(QueryReport {
            slices: vec![
                TrackSlice {
                    track,
                    points: points(seed, n),
                },
                TrackSlice {
                    track: track + 9,
                    points: points(seed ^ 7, n / 2),
                },
            ],
            shards_pruned: track % 8,
            hot_points: seed % 1_000,
            candidate_records: seed % 500,
            decoded_records: seed % 100,
        }),
        Reply::StatsReply(StatsReport {
            stats: Default::default(),
            shards: (0..(track % 5))
                .map(|k| ShardStat {
                    shard: k,
                    tracks: k * 3,
                    submitted_points: seed.wrapping_mul(k + 1),
                    dead: k % 2 == 1,
                })
                .collect(),
            connections: track,
            appended_points: seed,
            uptime_s: seed % 86_400,
            live_connections: track % 64,
            peak_connections: track % 64 + 1,
            rejected_connections: seed % 17,
        }),
        Reply::ShuttingDown {
            connections: track,
            appended_points: seed,
        },
        Reply::MetricsReply {
            text: format!("net_frames_total {seed}\nfleet_submitted_points_total {track}\n"),
        },
        Reply::TraceReply {
            dropped: seed % 100,
            events: (0..(n as u64 % 17))
                .map(|i| bqs_obs::TraceEvent {
                    seq: seed.wrapping_add(i),
                    at_us: seed.wrapping_mul(i + 1),
                    kind: match i % 7 {
                        0 => bqs_obs::TraceEventKind::Accept,
                        1 => bqs_obs::TraceEventKind::FrameDecode,
                        2 => bqs_obs::TraceEventKind::FleetSubmit,
                        3 => bqs_obs::TraceEventKind::Spill,
                        4 => bqs_obs::TraceEventKind::ReplyFlush,
                        5 => bqs_obs::TraceEventKind::Reject,
                        _ => bqs_obs::TraceEventKind::Evict,
                    },
                    conn: track.wrapping_add(i),
                    value: seed ^ i,
                })
                .collect(),
        },
        Reply::Error {
            code: ErrorCode::Internal,
            message: format!("seed {seed} track {track} × {n} — tüv ✓"),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every message type survives encode → frame → deframe → decode
    /// bit-exactly, for arbitrary tracks, batch sizes and bounds.
    #[test]
    fn every_message_round_trips_through_a_frame(
        seed in 0u64..1_000_000,
        track in 0u64..10_000,
        n in 1usize..200,
    ) {
        for request in requests(seed, track, n) {
            let payload = request.encode().expect("encode request");
            let framed = frame_to_vec(&payload);
            let (deframed, consumed) = decode_frame(&framed).expect("deframe");
            prop_assert_eq!(consumed, framed.len());
            prop_assert_eq!(Request::decode(&deframed).expect("decode"), request);
        }
        for reply in replies(seed, track, n) {
            let payload = reply.encode().expect("encode reply");
            let framed = frame_to_vec(&payload);
            let (deframed, _) = decode_frame(&framed).expect("deframe");
            prop_assert_eq!(Reply::decode(&deframed).expect("decode"), reply);
        }
    }

    /// A frame cut anywhere — inside the length prefix, the payload or
    /// the checksum trailer — is a typed torn-frame error.
    #[test]
    fn torn_frames_are_typed_errors_at_every_cut(
        seed in 0u64..1_000_000,
        track in 0u64..10_000,
        n in 1usize..60,
        cut_pct in 0usize..100,
    ) {
        let payload = Request::Append { track, points: points(seed, n) }
            .encode()
            .expect("encode");
        let framed = frame_to_vec(&payload);
        // Cuts spanning all three regions, the length prefix included.
        let cuts = [
            cut_pct % HEADER_BYTES,                  // inside magic + length prefix
            HEADER_BYTES + (framed.len() - HEADER_BYTES) * cut_pct / 100,
            framed.len() - 1,
        ];
        for cut in cuts {
            let cut = cut.min(framed.len() - 1);
            // A cut inside the header reports the header shortfall (the
            // length prefix is not yet readable); past it, the shortfall
            // of the whole frame.
            let expected_needed = if cut < HEADER_BYTES {
                HEADER_BYTES - cut
            } else {
                framed.len() - cut
            };
            match decode_frame(&framed[..cut]) {
                Err(WireError::Torn { needed, got }) => {
                    prop_assert_eq!(got, cut);
                    prop_assert_eq!(needed, expected_needed);
                }
                other => prop_assert!(false, "cut {}: {:?}", cut, other),
            }
        }
    }

    /// Flipping any payload or checksum bit is a CRC mismatch; the
    /// damaged frame never decodes to a different message.
    #[test]
    fn corrupted_frames_fail_the_checksum(
        seed in 0u64..1_000_000,
        track in 0u64..10_000,
        n in 1usize..60,
        victim_pct in 0usize..100,
        bit in 0u8..8,
    ) {
        let payload = Request::Append { track, points: points(seed, n) }
            .encode()
            .expect("encode");
        let mut framed = frame_to_vec(&payload);
        // Corrupt a byte anywhere past the header: payload or trailer.
        let body = framed.len() - HEADER_BYTES;
        let victim = HEADER_BYTES + body * victim_pct / 100;
        let victim = victim.min(framed.len() - 1);
        framed[victim] ^= 1 << bit;
        prop_assert!(
            matches!(decode_frame(&framed), Err(WireError::BadCrc { .. })),
            "flip at byte {} bit {} went undetected", victim, bit
        );
    }

    /// Random garbage never panics the deframer or the decoders: every
    /// outcome is `Ok` or a typed error.
    #[test]
    fn random_bytes_never_panic_the_decoders(
        bytes in proptest::collection::vec(0u8..=255, 0..400),
    ) {
        let _ = decode_frame(&bytes);
        let _ = Request::decode(&bytes);
        let _ = Reply::decode(&bytes);
        let _ = decode_append_columns(&bytes, &mut ColumnarBatch::new());
    }

    /// The columnar fast path is byte-for-byte the row path, end to
    /// end: codec blob, `Append` payload, and the decoded batch — for
    /// arbitrary tracks and batch sizes (empty included).
    #[test]
    fn columnar_append_path_is_byte_identical_to_the_row_path(
        seed in 0u64..1_000_000,
        track in 0u64..10_000,
        n in 0usize..200,
    ) {
        let pts = points(seed, n);
        let batch = ColumnarBatch::from_points(&pts);

        // Codec layer: identical bytes.
        let mut row = Vec::new();
        encode_points(&pts, &mut row).expect("row encode");
        let mut col = Vec::new();
        encode_columns(&batch, &mut col).expect("columnar encode");
        prop_assert_eq!(&row, &col);

        // Wire layer: identical `Append` payloads...
        let row_payload = Request::Append { track, points: pts.clone() }
            .encode()
            .expect("row payload");
        let col_payload = encode_append_columns(track, &batch).expect("columnar payload");
        prop_assert_eq!(&row_payload, &col_payload);

        // ...and the fast-path decoder recovers exactly the batch.
        let mut decoded = ColumnarBatch::new();
        let got_track = decode_append_columns(&row_payload, &mut decoded)
            .expect("fast-path decode")
            .expect("payload is an Append");
        prop_assert_eq!(got_track, track);
        prop_assert_eq!(decoded, batch);
    }
}
