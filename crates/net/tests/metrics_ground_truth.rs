//! The metrics layer's acceptance property: server-side counters are
//! *exact*, not approximate. A seeded loadgen run keeps its own ground
//! truth (frames written, bytes written framing included, points
//! acknowledged), and the server's registry must equal it to the byte
//! on both runtimes — the multiplexed I/O pool and the legacy
//! thread-per-connection mode. The flight recorder is held to the same
//! bar: event counts equal the client-side frame counts with zero
//! slack, and ring overflow drops oldest-first with an exact
//! `trace_events_dropped_total`.

use bqs_net::loadgen::{self, LoadgenConfig};
use bqs_net::wire::frame_to_vec;
use bqs_net::{BqsClient, Request, Server, ServerConfig, PROTOCOL_VERSION};
use bqs_obs::{FlightRecorder, MetricsRegistry, TraceEventKind};
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bqs-net-metrics")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn counter(registry: &MetricsRegistry, name: &str) -> u64 {
    registry.counter(name).get()
}

#[test]
fn server_counters_equal_loadgen_ground_truth_on_both_runtimes() {
    for io_threads in [2usize, 0] {
        let root = temp_root(&format!("truth-{io_threads}"));
        let registry = MetricsRegistry::new();
        let recorder = FlightRecorder::with_counters(
            4096,
            registry.counter("trace_events_recorded_total"),
            registry.counter("trace_events_dropped_total"),
        );
        let mut config = ServerConfig::new("127.0.0.1:0", 2, &root);
        config.io_threads = io_threads;
        config.metrics = Some(registry.clone());
        config.trace = Some(recorder.clone());
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("serve"));

        // 6 sessions × 80 points over 2 connections in 16-point batches:
        // each connection writes 1 Hello + 15 Appends + 1 Flush.
        let report = loadgen::run(&LoadgenConfig {
            addr: addr.to_string(),
            sessions: 6,
            points: 80,
            seed: 3,
            connections: 2,
            batch: 16,
            shutdown: false,
            disorder: 0.0,
            backfill: false,
        })
        .expect("loadgen");
        assert_eq!(report.points_sent, 480);
        assert_eq!(report.frames_sent, 34);
        assert_eq!(report.append_latency.count(), 30);
        assert_eq!(report.flush_latency.count(), 2);

        // Every loadgen reply has been received, so every loadgen
        // request byte has been read and counted: exact equality, no
        // slack, no retries.
        let tag = format!("io_threads={io_threads}");
        assert_eq!(
            counter(&registry, "net_frames_total"),
            report.frames_sent,
            "{tag}"
        );
        assert_eq!(
            counter(&registry, "net_bytes_in_total"),
            report.bytes_sent,
            "{tag}"
        );
        assert_eq!(
            counter(&registry, "fleet_submitted_points_total"),
            report.points_sent,
            "{tag}"
        );
        assert_eq!(counter(&registry, "net_frames_append_total"), 30, "{tag}");
        assert_eq!(counter(&registry, "net_frames_flush_total"), 2, "{tag}");

        // The wire exposition agrees with the registry handles.
        let mut probe = BqsClient::connect(addr).expect("connect probe");
        let text = probe.metrics().expect("metrics");
        for line in [
            "net_frames_append_total 30".to_string(),
            "net_frames_flush_total 2".to_string(),
            format!("fleet_submitted_points_total {}", report.points_sent),
        ] {
            assert!(text.contains(&line), "{tag}: missing {line:?} in:\n{text}");
        }

        // The flight recorder over the wire, mid-run: by the time the
        // `TraceDump` snapshot is taken its own frame has been decoded
        // (events record before dispatch) but its reply has not yet
        // flushed — loadgen's 34 frames plus the probe's Hello, Metrics
        // and TraceDump, with exactly the first two replies flushed.
        let (dropped, events) = probe.trace_dump(None, None).expect("trace dump");
        assert_eq!(dropped, 0, "{tag}: nothing may overflow a 4096 ring");
        let kind_count = |events: &[bqs_obs::TraceEvent], kind: TraceEventKind| {
            events.iter().filter(|e| e.kind == kind).count() as u64
        };
        assert_eq!(
            kind_count(&events, TraceEventKind::FrameDecode),
            report.frames_sent + 3,
            "{tag}"
        );
        assert_eq!(kind_count(&events, TraceEventKind::Accept), 3, "{tag}");
        assert_eq!(
            kind_count(&events, TraceEventKind::ReplyFlush),
            report.frames_sent + 2,
            "{tag}"
        );
        assert_eq!(kind_count(&events, TraceEventKind::Reject), 0, "{tag}");
        // 30 accepted append batches summing to every point sent.
        let submits: Vec<&bqs_obs::TraceEvent> = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::FleetSubmit)
            .collect();
        assert_eq!(submits.len(), 30, "{tag}");
        assert_eq!(
            submits.iter().map(|e| e.value).sum::<u64>(),
            report.points_sent,
            "{tag}"
        );
        // Filtering by connection partitions the conn-tied events.
        let probe_conn = events
            .iter()
            .rfind(|e| e.kind == TraceEventKind::FrameDecode)
            .expect("probe decoded frames")
            .conn;
        let (_, probe_events) = probe
            .trace_dump(None, Some(probe_conn))
            .expect("filtered dump");
        assert!(probe_events.iter().all(|e| e.conn == probe_conn), "{tag}");
        // Hello + Metrics + first TraceDump decoded; this second dump's
        // own decode event postdates the first snapshot but predates its
        // own, so it contributes 4 decodes for the probe connection.
        assert_eq!(
            kind_count(&probe_events, TraceEventKind::FrameDecode),
            4,
            "{tag}"
        );
        // And `last` keeps exactly the most recent events.
        let (_, tail) = probe.trace_dump(Some(5), None).expect("tail dump");
        assert_eq!(tail.len(), 5, "{tag}");
        let mut seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        let sorted = seqs.clone();
        seqs.sort_unstable();
        assert_eq!(seqs, sorted, "{tag}: dump must stay oldest-first");

        // The probe's own traffic is deterministic too: Hello, Metrics,
        // three TraceDumps, Shutdown — six frames whose encodings we
        // can price exactly.
        let probe_bytes: u64 = [
            Request::Hello {
                protocol: PROTOCOL_VERSION,
            }
            .encode()
            .expect("encode"),
            Request::Metrics { prom: false }.encode().expect("encode"),
            Request::TraceDump {
                last: None,
                conn: None,
            }
            .encode()
            .expect("encode"),
            Request::TraceDump {
                last: None,
                conn: Some(probe_conn),
            }
            .encode()
            .expect("encode"),
            Request::TraceDump {
                last: Some(5),
                conn: None,
            }
            .encode()
            .expect("encode"),
            Request::Shutdown.encode().expect("encode"),
        ]
        .iter()
        .map(|payload| frame_to_vec(payload).len() as u64)
        .sum();
        probe.shutdown().expect("shutdown");
        handle.join().expect("server thread");

        // After a drained shutdown nothing is in flight: totals cover
        // loadgen plus the probe exactly, every request latency has
        // been recorded, and the connection gauge is back to zero.
        assert_eq!(
            counter(&registry, "net_frames_total"),
            report.frames_sent + 6,
            "{tag}"
        );
        assert_eq!(
            counter(&registry, "net_bytes_in_total"),
            report.bytes_sent + probe_bytes,
            "{tag}"
        );
        assert_eq!(
            registry
                .histogram("net_request_us_append")
                .snapshot()
                .count(),
            30,
            "{tag}"
        );
        assert_eq!(
            counter(&registry, "net_connections_admitted_total"),
            3,
            "{tag}"
        );
        assert_eq!(
            counter(&registry, "net_connections_closed_total"),
            3,
            "{tag}"
        );
        assert_eq!(registry.gauge("net_connections_live").get(), 0, "{tag}");
        // Both loadgen connections were concurrent; whether the probe
        // overlapped their teardown is scheduling-dependent.
        let peak = registry.gauge("net_connections_live").peak();
        assert!((2..=3).contains(&peak), "{tag}: peak {peak}");

        // With the server drained the recorder is final and exact:
        // every decoded frame produced one FrameDecode and one
        // ReplyFlush, every admitted connection one Accept, every
        // accepted batch one FleetSubmit, every spilled session one
        // Spill — and the registry counters agree with the ring.
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.dropped, 0, "{tag}");
        assert_eq!(
            snapshot.events.len() as u64,
            counter(&registry, "trace_events_recorded_total"),
            "{tag}"
        );
        assert_eq!(counter(&registry, "trace_events_dropped_total"), 0, "{tag}");
        let total =
            |kind: TraceEventKind| snapshot.events.iter().filter(|e| e.kind == kind).count() as u64;
        assert_eq!(
            total(TraceEventKind::FrameDecode),
            report.frames_sent + 6,
            "{tag}"
        );
        assert_eq!(
            total(TraceEventKind::ReplyFlush),
            report.frames_sent + 6,
            "{tag}"
        );
        assert_eq!(total(TraceEventKind::Accept), 3, "{tag}");
        assert_eq!(total(TraceEventKind::FleetSubmit), 30, "{tag}");
        assert_eq!(total(TraceEventKind::Spill), 6, "{tag}");
        assert_eq!(total(TraceEventKind::Reject), 0, "{tag}");
        assert_eq!(total(TraceEventKind::Evict), 0, "{tag}");

        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn ring_overflow_drops_oldest_first_with_exact_counters() {
    let registry = MetricsRegistry::new();
    let recorder = FlightRecorder::with_counters(
        16,
        registry.counter("trace_events_recorded_total"),
        registry.counter("trace_events_dropped_total"),
    );
    for i in 0..100u64 {
        recorder.record(TraceEventKind::FrameDecode, i, i * 10);
    }
    let snapshot = recorder.snapshot();
    // Exactly the capacity survives, the overwritten prefix is counted.
    assert_eq!(snapshot.events.len(), 16);
    assert_eq!(snapshot.dropped, 84);
    assert_eq!(counter(&registry, "trace_events_recorded_total"), 100);
    assert_eq!(counter(&registry, "trace_events_dropped_total"), 84);
    // Oldest-first: the survivors are the last 16 records, in order,
    // payloads intact.
    let seqs: Vec<u64> = snapshot.events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (84..100).collect::<Vec<u64>>());
    for e in &snapshot.events {
        assert_eq!(e.conn, e.seq);
        assert_eq!(e.value, e.seq * 10);
    }
}
