//! The metrics layer's acceptance property: server-side counters are
//! *exact*, not approximate. A seeded loadgen run keeps its own ground
//! truth (frames written, bytes written framing included, points
//! acknowledged), and the server's registry must equal it to the byte
//! on both runtimes — the multiplexed I/O pool and the legacy
//! thread-per-connection mode.

use bqs_net::loadgen::{self, LoadgenConfig};
use bqs_net::wire::frame_to_vec;
use bqs_net::{BqsClient, Request, Server, ServerConfig, PROTOCOL_VERSION};
use bqs_obs::MetricsRegistry;
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bqs-net-metrics")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn counter(registry: &MetricsRegistry, name: &str) -> u64 {
    registry.counter(name).get()
}

#[test]
fn server_counters_equal_loadgen_ground_truth_on_both_runtimes() {
    for io_threads in [2usize, 0] {
        let root = temp_root(&format!("truth-{io_threads}"));
        let registry = MetricsRegistry::new();
        let mut config = ServerConfig::new("127.0.0.1:0", 2, &root);
        config.io_threads = io_threads;
        config.metrics = Some(registry.clone());
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("serve"));

        // 6 sessions × 80 points over 2 connections in 16-point batches:
        // each connection writes 1 Hello + 15 Appends + 1 Flush.
        let report = loadgen::run(&LoadgenConfig {
            addr: addr.to_string(),
            sessions: 6,
            points: 80,
            seed: 3,
            connections: 2,
            batch: 16,
            shutdown: false,
            disorder: 0.0,
            backfill: false,
        })
        .expect("loadgen");
        assert_eq!(report.points_sent, 480);
        assert_eq!(report.frames_sent, 34);
        assert_eq!(report.append_latency.count(), 30);
        assert_eq!(report.flush_latency.count(), 2);

        // Every loadgen reply has been received, so every loadgen
        // request byte has been read and counted: exact equality, no
        // slack, no retries.
        let tag = format!("io_threads={io_threads}");
        assert_eq!(
            counter(&registry, "net_frames_total"),
            report.frames_sent,
            "{tag}"
        );
        assert_eq!(
            counter(&registry, "net_bytes_in_total"),
            report.bytes_sent,
            "{tag}"
        );
        assert_eq!(
            counter(&registry, "fleet_submitted_points_total"),
            report.points_sent,
            "{tag}"
        );
        assert_eq!(counter(&registry, "net_frames_append_total"), 30, "{tag}");
        assert_eq!(counter(&registry, "net_frames_flush_total"), 2, "{tag}");

        // The wire exposition agrees with the registry handles.
        let mut probe = BqsClient::connect(addr).expect("connect probe");
        let text = probe.metrics().expect("metrics");
        for line in [
            "net_frames_append_total 30".to_string(),
            "net_frames_flush_total 2".to_string(),
            format!("fleet_submitted_points_total {}", report.points_sent),
        ] {
            assert!(text.contains(&line), "{tag}: missing {line:?} in:\n{text}");
        }

        // The probe's own traffic is deterministic too: Hello, Metrics,
        // Shutdown — three frames whose encodings we can price exactly.
        let probe_bytes: u64 = [
            Request::Hello {
                protocol: PROTOCOL_VERSION,
            }
            .encode()
            .expect("encode"),
            Request::Metrics.encode().expect("encode"),
            Request::Shutdown.encode().expect("encode"),
        ]
        .iter()
        .map(|payload| frame_to_vec(payload).len() as u64)
        .sum();
        probe.shutdown().expect("shutdown");
        handle.join().expect("server thread");

        // After a drained shutdown nothing is in flight: totals cover
        // loadgen plus the probe exactly, every request latency has
        // been recorded, and the connection gauge is back to zero.
        assert_eq!(
            counter(&registry, "net_frames_total"),
            report.frames_sent + 3,
            "{tag}"
        );
        assert_eq!(
            counter(&registry, "net_bytes_in_total"),
            report.bytes_sent + probe_bytes,
            "{tag}"
        );
        assert_eq!(
            registry
                .histogram("net_request_us_append")
                .snapshot()
                .count(),
            30,
            "{tag}"
        );
        assert_eq!(
            counter(&registry, "net_connections_admitted_total"),
            3,
            "{tag}"
        );
        assert_eq!(
            counter(&registry, "net_connections_closed_total"),
            3,
            "{tag}"
        );
        assert_eq!(registry.gauge("net_connections_live").get(), 0, "{tag}");
        // Both loadgen connections were concurrent; whether the probe
        // overlapped their teardown is scheduling-dependent.
        let peak = registry.gauge("net_connections_live").peak();
        assert!((2..=3).contains(&peak), "{tag}: peak {peak}");

        let _ = std::fs::remove_dir_all(&root);
    }
}
