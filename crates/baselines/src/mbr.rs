//! The MBR method (Liu, Iwai & Sezaki 2013) — online trajectory
//! simplification under GPS uncertainty via bounding rectangles.
//!
//! The original maintains, divides and merges minimum bounding rectangles
//! that represent runs of the trajectory; the paper's §II cites it as too
//! heavy for the Camazotz class of device. This adaptation keeps its core
//! idea behind the common streaming interface: grow an oriented run while
//! all buffered points stay within `tolerance` of the line through the
//! run's anchor in its dominant direction (i.e. the run's bounding
//! rectangle stays thin); emit the run's endpoints when it would thicken.
//!
//! The deviation guarantee is the same `ε` family as BQS, measured against
//! the run chord, so it slots directly into the comparative harness.

use bqs_core::metrics::DeviationMetric;
use bqs_core::stream::{Sink, StreamCompressor};
use bqs_geo::{Point2, TimedPoint};

/// The MBR-style run compressor.
#[derive(Debug, Clone)]
pub struct MbrCompressor {
    tolerance: f64,
    /// Interior points of the current run.
    run: Vec<Point2>,
    start: Option<TimedPoint>,
    last: Option<TimedPoint>,
    emitted_last: Option<TimedPoint>,
    /// Maximum run length before a forced emit (the division rule — keeps
    /// per-point cost bounded like the original's rectangle budget).
    max_run: usize,
}

impl MbrCompressor {
    /// Creates an MBR compressor. `max_run` bounds the run buffer (the
    /// original's per-rectangle point budget); 64 matches its defaults.
    ///
    /// # Panics
    /// Panics on a non-positive tolerance or `max_run < 2`.
    pub fn new(tolerance: f64, max_run: usize) -> MbrCompressor {
        assert!(tolerance.is_finite() && tolerance > 0.0);
        assert!(max_run >= 2);
        MbrCompressor {
            tolerance,
            run: Vec::with_capacity(max_run),
            start: None,
            last: None,
            emitted_last: None,
            max_run,
        }
    }

    fn emit(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        out.push(p);
        self.emitted_last = Some(p);
    }

    fn restart(&mut self, anchor: TimedPoint) {
        self.start = Some(anchor);
        self.run.clear();
    }
}

impl StreamCompressor for MbrCompressor {
    fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        let Some(start) = self.start else {
            self.emit(p, out);
            self.restart(p);
            self.last = Some(p);
            return;
        };

        // Thinness test: the run's rectangle oriented along start→p must
        // stay within the tolerance — equivalently, max deviation of the
        // run against the chord.
        let deviation = DeviationMetric::PointToLine.max_deviation(&self.run, start.pos, p.pos);
        if deviation > self.tolerance {
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: run has an anchor
            let key = self.last.expect("run has an anchor");
            self.emit(key, out);
            self.restart(key);
            self.run.push(p.pos);
            self.last = Some(p);
            return;
        }

        self.run.push(p.pos);
        self.last = Some(p);
        if self.run.len() >= self.max_run {
            // Division rule: cap the rectangle's point budget.
            self.emit(p, out);
            self.restart(p);
        }
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        if let Some(last) = self.last {
            if self.emitted_last != Some(last) {
                out.push(last);
            }
        }
        self.start = None;
        self.last = None;
        self.emitted_last = None;
        self.run.clear();
    }

    fn name(&self) -> &'static str {
        "MBR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::stream::compress_all;

    #[test]
    fn straight_line_compresses_to_run_anchors() {
        let pts: Vec<TimedPoint> = (0..200)
            .map(|i| TimedPoint::new(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        let mut mbr = MbrCompressor::new(5.0, 64);
        let out = compress_all(&mut mbr, pts);
        assert!(out.len() <= 200 / 64 + 2);
    }

    #[test]
    fn error_bound_holds() {
        let pts: Vec<TimedPoint> = (0..400)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 6.0, (a * 0.28).sin() * 20.0, a)
            })
            .collect();
        let tolerance = 5.0;
        let mut mbr = MbrCompressor::new(tolerance, 64);
        let kept = compress_all(&mut mbr, pts.iter().copied());
        for w in kept.windows(2) {
            let i = pts.iter().position(|p| p == &w[0]).unwrap();
            let j = pts.iter().position(|p| p == &w[1]).unwrap();
            for p in &pts[i + 1..j] {
                let d = DeviationMetric::PointToLine.distance(p.pos, w[0].pos, w[1].pos);
                assert!(d <= tolerance + 1e-9);
            }
        }
    }

    #[test]
    fn tiny_streams() {
        let mut mbr = MbrCompressor::new(5.0, 8);
        assert!(compress_all(&mut mbr, std::iter::empty()).is_empty());
        let one = compress_all(&mut mbr, [TimedPoint::new(0.0, 0.0, 0.0)]);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn corner_is_kept() {
        let mut pts: Vec<TimedPoint> = (0..30)
            .map(|i| TimedPoint::new(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        pts.extend((1..30).map(|i| TimedPoint::new(290.0, i as f64 * 10.0, 30.0 + i as f64)));
        let mut mbr = MbrCompressor::new(5.0, 128);
        let out = compress_all(&mut mbr, pts);
        assert!(out
            .iter()
            .any(|p| p.pos.distance(Point2::new(290.0, 0.0)) <= 5.0));
    }

    #[test]
    #[should_panic(expected = "max_run >= 2")]
    fn rejects_tiny_run() {
        let _ = MbrCompressor::new(5.0, 1);
    }
}
