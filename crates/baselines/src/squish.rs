//! SQUISH and SQUISH-E (Muckell et al., COM.Geo '11 / GeoInformatica '13).
//!
//! Priority-queue trajectory compression over the **synchronized Euclidean
//! distance** (SED): each interior point's priority estimates the error its
//! removal would introduce; the lowest-priority point is removed and its
//! priority is carried over to the neighbours.
//!
//! * [`SquishCompressor`] — the original SQUISH: a fixed-capacity buffer
//!   gives bounded memory and an online-friendly profile, but **no error
//!   guarantee** (the paper's §II criticism).
//! * [`SquishECompressor`] — SQUISH-E(ε): removes points only while the
//!   carried priority stays within the SED tolerance, guaranteeing the
//!   error bound; the error-bounded flavour runs offline (paper §II), so
//!   this implementation compresses at `finish`.

use bqs_core::stream::{Sink, StreamCompressor};
use bqs_geo::TimedPoint;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Synchronized Euclidean distance: the gap between `p` and the position
/// linearly interpolated at `p.t` between `a` and `b`.
pub fn sed(p: TimedPoint, a: TimedPoint, b: TimedPoint) -> f64 {
    let span = b.t - a.t;
    let u = if span <= 0.0 {
        1.0
    } else {
        ((p.t - a.t) / span).clamp(0.0, 1.0)
    };
    p.pos.distance(a.pos.lerp(b.pos, u))
}

/// Ordered f64 wrapper for the heap (priorities are finite by
/// construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Doubly-linked buffer with lazily invalidated heap entries, shared by
/// both SQUISH variants.
#[derive(Debug, Clone, Default)]
struct PriorityBuffer {
    points: Vec<TimedPoint>,
    prev: Vec<usize>,
    next: Vec<usize>,
    alive: Vec<bool>,
    /// Priority carried over from removed neighbours.
    carry: Vec<f64>,
    /// Current priority (SED + carry); heap entries older than this value
    /// are ignored when popped.
    priority: Vec<f64>,
    heap: BinaryHeap<Reverse<(OrdF64, usize)>>,
    live_count: usize,
}

const NIL: usize = usize::MAX;

impl PriorityBuffer {
    fn clear(&mut self) {
        *self = PriorityBuffer::default();
    }

    fn push(&mut self, p: TimedPoint) {
        let i = self.points.len();
        self.points.push(p);
        self.alive.push(true);
        self.carry.push(0.0);
        self.priority.push(f64::INFINITY);
        self.prev.push(NIL);
        self.next.push(NIL);
        self.live_count += 1;
        if i > 0 {
            // Find the previous live point (the tail).
            let mut tail = i - 1;
            while !self.alive[tail] {
                tail = self.prev[tail];
            }
            self.prev[i] = tail;
            self.next[tail] = i;
            // The old tail becomes interior: give it a real priority.
            self.refresh_priority(tail);
        }
    }

    fn refresh_priority(&mut self, i: usize) {
        let (p, n) = (self.prev[i], self.next[i]);
        if p == NIL || n == NIL {
            self.priority[i] = f64::INFINITY; // endpoints are immovable
            return;
        }
        let pri = sed(self.points[i], self.points[p], self.points[n]) + self.carry[i];
        self.priority[i] = pri;
        self.heap.push(Reverse((OrdF64(pri), i)));
    }

    /// Lowest current priority among interior points, if any.
    fn peek_min(&mut self) -> Option<(f64, usize)> {
        while let Some(&Reverse((OrdF64(pri), i))) = self.heap.peek() {
            if self.alive[i] && self.priority[i] == pri {
                return Some((pri, i));
            }
            self.heap.pop(); // stale entry
        }
        None
    }

    /// Removes interior point `i`, carrying its priority to the neighbours.
    fn remove(&mut self, i: usize) {
        debug_assert!(self.alive[i]);
        let (p, n) = (self.prev[i], self.next[i]);
        debug_assert!(p != NIL && n != NIL, "endpoints cannot be removed");
        self.alive[i] = false;
        self.live_count -= 1;
        self.next[p] = n;
        self.prev[n] = p;
        let carried = self.priority[i];
        for k in [p, n] {
            if self.prev[k] != NIL && self.next[k] != NIL {
                self.carry[k] = self.carry[k].max(carried);
                self.refresh_priority(k);
            }
        }
    }

    fn survivors(&self) -> Vec<TimedPoint> {
        self.points
            .iter()
            .zip(self.alive.iter())
            .filter_map(|(p, a)| a.then_some(*p))
            .collect()
    }
}

/// SQUISH: fixed-capacity priority-queue compression (no error guarantee).
#[derive(Debug, Clone)]
pub struct SquishCompressor {
    capacity: usize,
    buffer: PriorityBuffer,
}

impl SquishCompressor {
    /// Creates a SQUISH compressor keeping at most `capacity` points.
    ///
    /// # Panics
    /// Panics when `capacity < 2`.
    pub fn new(capacity: usize) -> SquishCompressor {
        assert!(capacity >= 2, "SQUISH needs capacity ≥ 2");
        SquishCompressor {
            capacity,
            buffer: PriorityBuffer::default(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl StreamCompressor for SquishCompressor {
    fn push(&mut self, p: TimedPoint, _out: &mut dyn Sink) {
        self.buffer.push(p);
        while self.buffer.live_count > self.capacity {
            let Some((_, i)) = self.buffer.peek_min() else {
                break;
            };
            self.buffer.remove(i);
        }
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        for p in self.buffer.survivors() {
            out.push(p);
        }
        self.buffer.clear();
    }

    fn name(&self) -> &'static str {
        "SQUISH"
    }
}

/// SQUISH-E(ε): removes points only while the (carried) SED stays within
/// the tolerance, guaranteeing the SED error bound. Offline: the stream is
/// buffered and compressed at `finish` (the paper notes the error-bounded
/// flavour "runs offline only").
#[derive(Debug, Clone)]
pub struct SquishECompressor {
    tolerance: f64,
    buffer: PriorityBuffer,
}

impl SquishECompressor {
    /// Creates a SQUISH-E(ε) compressor with an SED tolerance.
    ///
    /// # Panics
    /// Panics when the tolerance is not positive and finite.
    pub fn new(tolerance: f64) -> SquishECompressor {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be finite and > 0"
        );
        SquishECompressor {
            tolerance,
            buffer: PriorityBuffer::default(),
        }
    }

    /// The SED tolerance in use.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }
}

impl StreamCompressor for SquishECompressor {
    fn push(&mut self, p: TimedPoint, _out: &mut dyn Sink) {
        self.buffer.push(p);
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        while let Some((pri, i)) = self.buffer.peek_min() {
            if pri > self.tolerance {
                break;
            }
            self.buffer.remove(i);
        }
        for p in self.buffer.survivors() {
            out.push(p);
        }
        self.buffer.clear();
    }

    fn name(&self) -> &'static str {
        "SQUISH-E"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::stream::compress_all;

    fn wavy(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 10.0, (a * 0.4).sin() * 15.0, a * 60.0)
            })
            .collect()
    }

    #[test]
    fn sed_basics() {
        let a = TimedPoint::new(0.0, 0.0, 0.0);
        let b = TimedPoint::new(10.0, 0.0, 10.0);
        // On the synchronized position: zero error.
        assert_eq!(sed(TimedPoint::new(5.0, 0.0, 5.0), a, b), 0.0);
        // Offset vertically: full offset is the error.
        assert_eq!(sed(TimedPoint::new(5.0, 3.0, 5.0), a, b), 3.0);
        // Ahead of schedule: compared against the synchronized point.
        assert_eq!(sed(TimedPoint::new(8.0, 0.0, 5.0), a, b), 3.0);
    }

    #[test]
    fn squish_respects_capacity() {
        let mut squish = SquishCompressor::new(10);
        let out = compress_all(&mut squish, wavy(200));
        assert!(out.len() <= 10);
        assert!(out.len() >= 2);
        assert_eq!(out.first().unwrap().t, 0.0);
        assert_eq!(out.last().unwrap().t, 199.0 * 60.0);
        for w in out.windows(2) {
            assert!(w[0].t < w[1].t);
        }
    }

    #[test]
    fn squish_keeps_everything_under_capacity() {
        let mut squish = SquishCompressor::new(100);
        let pts = wavy(50);
        let out = compress_all(&mut squish, pts.clone());
        assert_eq!(out, pts);
    }

    #[test]
    fn squish_e_guarantees_sed_bound() {
        let pts = wavy(300);
        let tolerance = 5.0;
        let mut squish_e = SquishECompressor::new(tolerance);
        let kept = compress_all(&mut squish_e, pts.iter().copied());
        assert!(kept.len() < pts.len());
        // Every dropped point's SED against its bracketing kept pair is
        // within the tolerance.
        for w in kept.windows(2) {
            let i = pts.iter().position(|p| p == &w[0]).unwrap();
            let j = pts.iter().position(|p| p == &w[1]).unwrap();
            for p in &pts[i + 1..j] {
                let e = sed(*p, w[0], w[1]);
                assert!(e <= tolerance + 1e-9, "SED {e} > {tolerance}");
            }
        }
    }

    #[test]
    fn squish_e_monotone_in_tolerance() {
        let pts = wavy(300);
        let mut prev = usize::MAX;
        for tol in [1.0, 5.0, 20.0] {
            let mut c = SquishECompressor::new(tol);
            let n = compress_all(&mut c, pts.iter().copied()).len();
            assert!(n <= prev);
            prev = n;
        }
    }

    #[test]
    fn squish_e_straight_line_collapses() {
        let pts: Vec<TimedPoint> = (0..100)
            .map(|i| TimedPoint::new(i as f64 * 5.0, 0.0, i as f64))
            .collect();
        let mut c = SquishECompressor::new(1.0);
        let out = compress_all(&mut c, pts);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn tiny_streams() {
        let mut squish = SquishCompressor::new(4);
        assert!(compress_all(&mut squish, std::iter::empty()).is_empty());
        let one = compress_all(&mut squish, [TimedPoint::new(1.0, 1.0, 0.0)]);
        assert_eq!(one.len(), 1);
        let mut e = SquishECompressor::new(3.0);
        let two = compress_all(
            &mut e,
            [
                TimedPoint::new(0.0, 0.0, 0.0),
                TimedPoint::new(9.0, 9.0, 1.0),
            ],
        );
        assert_eq!(two.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn squish_rejects_capacity_one() {
        let _ = SquishCompressor::new(1);
    }
}
