//! STTrace (Potamias, Patroumpas & Sellis, SSDBM 2006) — sampling
//! trajectory streams with spatiotemporal criteria.
//!
//! The paper's §II places it among the methods "outside the capabilities of
//! our target hardware platform"; it is included here so the comparison is
//! complete. STTrace keeps a fixed-size sample of the stream: each buffered
//! point carries the synchronized-Euclidean-distance (SED) information loss
//! its removal would cause given its *current* neighbours; when the buffer
//! overflows, the point of minimum loss is evicted and its neighbours'
//! priorities are recomputed (unlike SQUISH, which carries the evicted
//! priority forward — that difference is what distinguishes the two).

use crate::squish::sed;
use bqs_core::stream::{Sink, StreamCompressor};
use bqs_geo::TimedPoint;

/// The STTrace compressor.
#[derive(Debug, Clone)]
pub struct StTraceCompressor {
    capacity: usize,
    /// Kept points in time order (the sample).
    buffer: Vec<TimedPoint>,
}

impl StTraceCompressor {
    /// Creates an STTrace compressor with a fixed sample capacity.
    ///
    /// # Panics
    /// Panics when `capacity < 2`.
    pub fn new(capacity: usize) -> StTraceCompressor {
        assert!(capacity >= 2, "STTrace needs capacity ≥ 2");
        StTraceCompressor {
            capacity,
            buffer: Vec::with_capacity(capacity + 1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Index of the interior point whose removal loses the least
    /// information right now.
    fn min_loss_index(&self) -> Option<usize> {
        if self.buffer.len() < 3 {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for i in 1..self.buffer.len() - 1 {
            let loss = sed(self.buffer[i], self.buffer[i - 1], self.buffer[i + 1]);
            match best {
                Some((_, b)) if b <= loss => {}
                _ => best = Some((i, loss)),
            }
        }
        best.map(|(i, _)| i)
    }
}

impl StreamCompressor for StTraceCompressor {
    fn push(&mut self, p: TimedPoint, _out: &mut dyn Sink) {
        self.buffer.push(p);
        if self.buffer.len() > self.capacity {
            if let Some(i) = self.min_loss_index() {
                self.buffer.remove(i);
            }
        }
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        for p in self.buffer.drain(..) {
            out.push(p);
        }
    }

    fn name(&self) -> &'static str {
        "STTrace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::stream::compress_all;

    fn wavy(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 10.0, (a * 0.3).sin() * 20.0, a * 30.0)
            })
            .collect()
    }

    #[test]
    fn respects_capacity_and_keeps_endpoints() {
        let mut st = StTraceCompressor::new(16);
        let pts = wavy(300);
        let out = compress_all(&mut st, pts.iter().copied());
        assert!(out.len() <= 16);
        assert_eq!(out.first(), pts.first());
        assert_eq!(out.last(), pts.last());
        for w in out.windows(2) {
            assert!(w[0].t < w[1].t);
        }
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut st = StTraceCompressor::new(50);
        let pts = wavy(20);
        assert_eq!(compress_all(&mut st, pts.iter().copied()), pts);
    }

    #[test]
    fn prefers_informative_points() {
        // Straight run with one sharp corner: the corner must survive heavy
        // eviction pressure.
        let mut pts: Vec<TimedPoint> = (0..50)
            .map(|i| TimedPoint::new(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        pts.extend((1..50).map(|i| TimedPoint::new(490.0, i as f64 * 10.0, 50.0 + i as f64)));
        let mut st = StTraceCompressor::new(8);
        let out = compress_all(&mut st, pts);
        assert!(
            out.iter()
                .any(|p| p.pos.distance(bqs_geo::Point2::new(490.0, 0.0)) < 15.0),
            "corner evicted: {out:?}"
        );
    }

    #[test]
    fn tiny_streams() {
        let mut st = StTraceCompressor::new(4);
        assert!(compress_all(&mut st, std::iter::empty()).is_empty());
        assert_eq!(compress_all(&mut st, wavy(1)).len(), 1);
        assert_eq!(compress_all(&mut st, wavy(2)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_capacity_one() {
        let _ = StTraceCompressor::new(1);
    }
}
