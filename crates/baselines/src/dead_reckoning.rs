//! Error-bounded Dead Reckoning (Trajcevski et al., MobiDE '06 — the
//! paper's Fig. 8b comparison).
//!
//! The sender keeps the last transmitted point and its instantaneous
//! velocity; the receiver extrapolates linearly. A new point is kept only
//! when the extrapolated position misses the actual one by more than the
//! tolerance. Constant time and space per point — the same complexity class
//! as FBQS — but no convex-hull reasoning, so the paper shows it needs
//! 40–50 % more points (Fig. 8b).
//!
//! Note the different error model: DR bounds the *extrapolation* error at
//! sample times, not the chord deviation; both are `ε`-style guarantees but
//! they are not interchangeable, which is why the paper compares point
//! counts rather than mixing it into Fig. 7.

use bqs_core::stream::{Sink, StreamCompressor};
use bqs_geo::{TimedPoint, Vec2};

/// The Dead Reckoning compressor.
#[derive(Debug, Clone)]
pub struct DeadReckoningCompressor {
    tolerance: f64,
    /// Last kept (transmitted) point.
    anchor: Option<TimedPoint>,
    /// Velocity estimate fixed at the anchor, in m/s.
    velocity: Vec2,
    /// Most recent raw point, used to estimate instantaneous velocity when
    /// a new anchor is taken.
    prev: Option<TimedPoint>,
    emitted_last: Option<TimedPoint>,
    last: Option<TimedPoint>,
}

impl DeadReckoningCompressor {
    /// Creates a DR compressor.
    ///
    /// # Panics
    /// Panics when the tolerance is not positive and finite.
    pub fn new(tolerance: f64) -> DeadReckoningCompressor {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be finite and > 0"
        );
        DeadReckoningCompressor {
            tolerance,
            anchor: None,
            velocity: Vec2::ZERO,
            prev: None,
            emitted_last: None,
            last: None,
        }
    }

    /// The tolerance in use.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    fn take_anchor(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        out.push(p);
        self.emitted_last = Some(p);
        // Instantaneous velocity from the latest raw sample interval — the
        // "speed and heading readings" the protocol assumes the device has.
        self.velocity = match self.prev {
            Some(prev) if p.t > prev.t => (p.pos - prev.pos) / (p.t - prev.t),
            _ => Vec2::ZERO,
        };
        self.anchor = Some(p);
    }
}

impl StreamCompressor for DeadReckoningCompressor {
    fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        match self.anchor {
            None => self.take_anchor(p, out),
            Some(anchor) => {
                let predicted = anchor.pos + self.velocity * (p.t - anchor.t);
                if predicted.distance(p.pos) > self.tolerance {
                    self.take_anchor(p, out);
                }
            }
        }
        self.prev = Some(p);
        self.last = Some(p);
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        // Keep the true end of the trace so reconstruction can clamp.
        if let Some(last) = self.last {
            if self.emitted_last != Some(last) {
                out.push(last);
            }
        }
        self.anchor = None;
        self.velocity = Vec2::ZERO;
        self.prev = None;
        self.emitted_last = None;
        self.last = None;
    }

    fn name(&self) -> &'static str {
        "DR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::stream::compress_all;
    use bqs_geo::Point2;

    /// Uniform-speed straight line: after the second point fixes the
    /// velocity, prediction is exact and nothing more is kept.
    #[test]
    fn uniform_motion_keeps_first_two_ish_points() {
        let pts: Vec<TimedPoint> = (0..100)
            .map(|i| TimedPoint::new(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        let mut dr = DeadReckoningCompressor::new(5.0);
        let out = compress_all(&mut dr, pts);
        // First anchor has zero velocity, so the second sample breaks the
        // prediction once displacement exceeds the tolerance; from then on
        // prediction is exact. Plus the flushed final point.
        assert!(out.len() <= 4, "got {}", out.len());
    }

    #[test]
    fn speed_change_forces_updates() {
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(TimedPoint::new(i as f64 * 10.0, 0.0, i as f64));
        }
        // Sudden stop: predictions overshoot until re-anchored.
        for i in 50..100 {
            pts.push(TimedPoint::new(490.0, 0.0, i as f64));
        }
        let mut dr = DeadReckoningCompressor::new(5.0);
        let out = compress_all(&mut dr, pts);
        assert!(
            out.iter().any(|p| (p.t - 50.0).abs() <= 1.0),
            "the stop must be re-anchored: {out:?}"
        );
    }

    #[test]
    fn prediction_error_bounded_at_sample_times() {
        // Verify the DR guarantee directly: replaying anchors + velocities
        // reproduces every sample within the tolerance.
        let pts: Vec<TimedPoint> = (0..300)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 8.0 + (a * 0.31).sin() * 3.0, (a * 0.17).sin() * 40.0, a)
            })
            .collect();
        let tolerance = 10.0;
        let mut dr = DeadReckoningCompressor::new(tolerance);

        // Re-run the protocol manually to capture anchor velocities.
        let mut anchor: Option<(TimedPoint, Vec2)> = None;
        let mut prev: Option<TimedPoint> = None;
        for p in &pts {
            match anchor {
                None => {
                    anchor = Some((*p, Vec2::ZERO));
                }
                Some((a, v)) => {
                    let predicted = a.pos + v * (p.t - a.t);
                    if predicted.distance(p.pos) > tolerance {
                        let vel = match prev {
                            Some(q) if p.t > q.t => (p.pos - q.pos) / (p.t - q.t),
                            _ => Vec2::ZERO,
                        };
                        anchor = Some((*p, vel));
                    } else {
                        // The receiver's reconstruction error is bounded.
                        assert!(predicted.distance(p.pos) <= tolerance);
                    }
                }
            }
            prev = Some(*p);
        }

        // And the compressor agrees on the kept count.
        let out = compress_all(&mut dr, pts);
        assert!(!out.is_empty());
    }

    #[test]
    fn tiny_streams() {
        let mut dr = DeadReckoningCompressor::new(5.0);
        assert!(compress_all(&mut dr, std::iter::empty()).is_empty());
        let one = compress_all(&mut dr, [TimedPoint::new(1.0, 2.0, 0.0)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].pos, Point2::new(1.0, 2.0));
    }

    #[test]
    fn smaller_tolerance_keeps_more_points() {
        let pts: Vec<TimedPoint> = (0..500)
            .map(|i| {
                let a = i as f64 * 0.05;
                TimedPoint::new(a.cos() * 400.0, a.sin() * 400.0, i as f64)
            })
            .collect();
        let tight = {
            let mut dr = DeadReckoningCompressor::new(2.0);
            compress_all(&mut dr, pts.iter().copied()).len()
        };
        let loose = {
            let mut dr = DeadReckoningCompressor::new(20.0);
            compress_all(&mut dr, pts.iter().copied()).len()
        };
        assert!(tight > loose);
    }
}
