//! # bqs-baselines — comparison algorithms for the BQS evaluation
//!
//! Every algorithm the paper compares against (§III-B, §VI), implemented
//! from scratch behind the same [`StreamCompressor`] interface as the BQS
//! family so the evaluation harness can run them head-to-head:
//!
//! * [`dp`] — Douglas–Peucker, the classic offline simplifier (worst-case
//!   O(n²); the paper's offline reference).
//! * [`bdp`] — Buffered Douglas–Peucker: DP over a fixed-size buffer,
//!   the paper's first straw-man online adaptation (§III-B-1).
//! * [`bgd`] — Buffered Greedy Deviation: the generic sliding-window
//!   algorithm (§III-B-2).
//! * [`dead_reckoning`] — error-bounded Dead Reckoning (Trajcevski et al.,
//!   the paper's Fig. 8b comparison).
//! * [`squish`] — SQUISH and the error-bounded SQUISH-E(ε) (Muckell et
//!   al.), the related-work priority-queue compressors.
//! * [`sttrace`] — STTrace (Potamias et al.), fixed-sample SED eviction.
//! * [`mbr`] — the bounding-rectangle method (Liu, Iwai & Sezaki),
//!   adapted behind the streaming interface.
//! * [`sampling`] — uniform temporal and distance-threshold sampling, the
//!   naive floors every lossy compressor must beat.
//!
//! All error-bounded algorithms guarantee the same deviation bound as BQS,
//! so compression rate (Fig. 7) and run time (Table III) are the
//! differentiators.

#![deny(missing_docs)]

pub mod bdp;
pub mod bgd;
pub mod dead_reckoning;
pub mod dp;
pub mod mbr;
pub mod sampling;
pub mod squish;
pub mod sttrace;

pub use bdp::BufferedDpCompressor;
pub use bgd::BufferedGreedyCompressor;
pub use bqs_core::stream::StreamCompressor;
pub use dead_reckoning::DeadReckoningCompressor;
pub use dp::{douglas_peucker, douglas_peucker_indices, DpCompressor};
pub use mbr::MbrCompressor;
pub use sampling::{DistanceThresholdCompressor, UniformSamplingCompressor};
pub use squish::{SquishCompressor, SquishECompressor};
pub use sttrace::StTraceCompressor;
