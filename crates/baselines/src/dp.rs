//! Douglas–Peucker line simplification (Douglas & Peucker 1973).
//!
//! The classic offline, error-bounded simplifier: starting from the chord
//! between the first and last points, recursively keep the point of maximum
//! deviation until every point lies within the tolerance of its local
//! chord. Worst-case O(n²) time; the paper uses it as the offline reference
//! whose compression rate online algorithms should approach (Fig. 7).

use bqs_core::metrics::DeviationMetric;
use bqs_core::stream::{Sink, StreamCompressor};
use bqs_geo::{Point2, TimedPoint};

/// Computes the kept indices of a Douglas–Peucker simplification.
///
/// The result always contains the first and last indices, is strictly
/// increasing, and guarantees that every dropped point deviates at most
/// `tolerance` from the chord of the kept pair bracketing it. Inputs of
/// fewer than 3 points are returned whole. Implemented iteratively (explicit
/// work stack) so adversarial inputs cannot overflow the call stack.
pub fn douglas_peucker_indices(
    points: &[Point2],
    tolerance: f64,
    metric: DeviationMetric,
) -> Vec<usize> {
    let n = points.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut keep = vec![false; n];
    keep[0] = true;
    keep[n - 1] = true;

    let mut stack: Vec<(usize, usize)> = vec![(0, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (a, b) = (points[lo], points[hi]);
        let mut worst = 0.0f64;
        let mut worst_idx = lo;
        for (i, p) in points[lo + 1..hi].iter().enumerate() {
            let d = metric.distance(*p, a, b);
            if d > worst {
                worst = d;
                worst_idx = lo + 1 + i;
            }
        }
        if worst > tolerance {
            keep[worst_idx] = true;
            stack.push((lo, worst_idx));
            stack.push((worst_idx, hi));
        }
    }
    keep.iter()
        .enumerate()
        .filter_map(|(i, k)| k.then_some(i))
        .collect()
}

/// Simplifies a polyline, returning the kept points.
pub fn douglas_peucker(points: &[Point2], tolerance: f64, metric: DeviationMetric) -> Vec<Point2> {
    douglas_peucker_indices(points, tolerance, metric)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

/// Offline Douglas–Peucker behind the streaming interface: buffers the whole
/// stream and simplifies at [`StreamCompressor::finish`]. This is the
/// paper's "DP" series — an *offline* reference, so its buffering is
/// intentional and unbounded.
#[derive(Debug, Clone)]
pub struct DpCompressor {
    tolerance: f64,
    metric: DeviationMetric,
    buffer: Vec<TimedPoint>,
}

impl DpCompressor {
    /// Creates an offline DP compressor with the paper's point-to-line
    /// metric.
    pub fn new(tolerance: f64) -> DpCompressor {
        DpCompressor {
            tolerance,
            metric: DeviationMetric::PointToLine,
            buffer: Vec::new(),
        }
    }

    /// Replaces the deviation metric.
    pub fn with_metric(mut self, metric: DeviationMetric) -> Self {
        self.metric = metric;
        self
    }

    /// The tolerance in use.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }
}

impl StreamCompressor for DpCompressor {
    fn push(&mut self, p: TimedPoint, _out: &mut dyn Sink) {
        self.buffer.push(p);
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        let positions: Vec<Point2> = self.buffer.iter().map(|p| p.pos).collect();
        for i in douglas_peucker_indices(&positions, self.tolerance, self.metric) {
            out.push(self.buffer[i]);
        }
        self.buffer.clear();
    }

    fn name(&self) -> &'static str {
        "DP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_geo::verify_error_bound;

    fn metric() -> DeviationMetric {
        DeviationMetric::PointToLine
    }

    fn zigzag(n: usize, amplitude: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(i as f64 * 10.0, if i % 2 == 0 { 0.0 } else { amplitude }))
            .collect()
    }

    #[test]
    fn straight_line_keeps_endpoints_only() {
        let pts: Vec<Point2> = (0..50)
            .map(|i| Point2::new(i as f64, 2.0 * i as f64))
            .collect();
        let kept = douglas_peucker_indices(&pts, 0.5, metric());
        assert_eq!(kept, vec![0, 49]);
    }

    #[test]
    fn zigzag_below_tolerance_collapses() {
        let pts = zigzag(20, 1.0);
        let kept = douglas_peucker_indices(&pts, 5.0, metric());
        assert_eq!(kept, vec![0, 19]);
    }

    #[test]
    fn zigzag_above_tolerance_keeps_extremes() {
        let pts = zigzag(20, 50.0);
        let kept = douglas_peucker_indices(&pts, 5.0, metric());
        assert!(kept.len() > 2);
        let worst = verify_error_bound(&pts, &kept, false).unwrap();
        assert!(worst <= 5.0 + 1e-9);
    }

    #[test]
    fn error_bound_holds_on_pseudorandom_input() {
        let mut pts = Vec::new();
        let mut x = 0.0f64;
        let mut y = 0.0f64;
        for i in 0..500 {
            let a = i as f64;
            x += 5.0 + (a * 0.37).sin() * 4.0;
            y += (a * 0.11).cos() * 9.0;
            pts.push(Point2::new(x, y));
        }
        for tol in [1.0, 5.0, 25.0] {
            let kept = douglas_peucker_indices(&pts, tol, metric());
            let worst = verify_error_bound(&pts, &kept, false).unwrap();
            assert!(worst <= tol + 1e-9, "tolerance {tol}: worst {worst}");
            assert_eq!(*kept.first().unwrap(), 0);
            assert_eq!(*kept.last().unwrap(), pts.len() - 1);
        }
    }

    #[test]
    fn tiny_inputs_returned_whole() {
        assert!(douglas_peucker_indices(&[], 1.0, metric()).is_empty());
        assert_eq!(
            douglas_peucker_indices(&[Point2::ORIGIN], 1.0, metric()),
            vec![0]
        );
        assert_eq!(
            douglas_peucker_indices(&[Point2::ORIGIN, Point2::new(1.0, 1.0)], 1.0, metric()),
            vec![0, 1]
        );
    }

    #[test]
    fn monotone_in_tolerance() {
        let pts = zigzag(100, 30.0);
        let mut prev = usize::MAX;
        for tol in [1.0, 5.0, 15.0, 40.0] {
            let kept = douglas_peucker_indices(&pts, tol, metric()).len();
            assert!(kept <= prev, "tolerance {tol} kept {kept} > {prev}");
            prev = kept;
        }
    }

    #[test]
    fn duplicate_points_do_not_break() {
        let pts = vec![Point2::new(1.0, 1.0); 10];
        let kept = douglas_peucker_indices(&pts, 0.1, metric());
        assert_eq!(kept, vec![0, 9]);
    }

    #[test]
    fn streaming_wrapper_matches_direct_call() {
        let pts = zigzag(60, 20.0);
        let timed: Vec<TimedPoint> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| TimedPoint::at(*p, i as f64))
            .collect();
        let mut dp = DpCompressor::new(5.0);
        let out = bqs_core::stream::compress_all(&mut dp, timed);
        let direct = douglas_peucker(&pts, 5.0, metric());
        assert_eq!(out.len(), direct.len());
        assert!(out.iter().map(|p| p.pos).eq(direct));
        // The compressor resets after finish.
        let mut out2 = Vec::new();
        dp.finish(&mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn segment_metric_variant() {
        let pts = zigzag(40, 20.0);
        let kept = douglas_peucker_indices(&pts, 5.0, DeviationMetric::PointToSegment);
        let worst = verify_error_bound(&pts, &kept, true).unwrap();
        assert!(worst <= 5.0 + 1e-9);
    }
}
