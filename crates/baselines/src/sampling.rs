//! Naive sampling baselines.
//!
//! Neither bounds the deviation error; they exist as the floor every
//! error-bounded compressor must beat in the evaluation, and as honest
//! representations of what fielded trackers often do (fixed-rate logging).

use bqs_core::stream::{Sink, StreamCompressor};
use bqs_geo::TimedPoint;

/// Keeps the first point and every `k`-th point thereafter, plus the final
/// point of the stream.
#[derive(Debug, Clone)]
pub struct UniformSamplingCompressor {
    every: usize,
    index: usize,
    last: Option<TimedPoint>,
    emitted_last: Option<TimedPoint>,
}

impl UniformSamplingCompressor {
    /// Creates a sampler keeping every `every`-th point (`every ≥ 1`).
    ///
    /// # Panics
    /// Panics when `every == 0`.
    pub fn new(every: usize) -> UniformSamplingCompressor {
        assert!(every >= 1, "sampling interval must be ≥ 1");
        UniformSamplingCompressor {
            every,
            index: 0,
            last: None,
            emitted_last: None,
        }
    }
}

impl StreamCompressor for UniformSamplingCompressor {
    fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        if self.index.is_multiple_of(self.every) {
            out.push(p);
            self.emitted_last = Some(p);
        }
        self.index += 1;
        self.last = Some(p);
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        if let Some(last) = self.last {
            if self.emitted_last != Some(last) {
                out.push(last);
            }
        }
        self.index = 0;
        self.last = None;
        self.emitted_last = None;
    }

    fn name(&self) -> &'static str {
        "UNIFORM"
    }
}

/// Keeps a point whenever it has moved at least `threshold` metres from the
/// last kept point, plus the final point.
#[derive(Debug, Clone)]
pub struct DistanceThresholdCompressor {
    threshold: f64,
    anchor: Option<TimedPoint>,
    last: Option<TimedPoint>,
    emitted_last: Option<TimedPoint>,
}

impl DistanceThresholdCompressor {
    /// Creates a distance-threshold sampler.
    ///
    /// # Panics
    /// Panics when the threshold is not positive and finite.
    pub fn new(threshold: f64) -> DistanceThresholdCompressor {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be finite and > 0"
        );
        DistanceThresholdCompressor {
            threshold,
            anchor: None,
            last: None,
            emitted_last: None,
        }
    }
}

impl StreamCompressor for DistanceThresholdCompressor {
    fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        let keep = match self.anchor {
            None => true,
            Some(a) => a.pos.distance(p.pos) >= self.threshold,
        };
        if keep {
            out.push(p);
            self.emitted_last = Some(p);
            self.anchor = Some(p);
        }
        self.last = Some(p);
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        if let Some(last) = self.last {
            if self.emitted_last != Some(last) {
                out.push(last);
            }
        }
        self.anchor = None;
        self.last = None;
        self.emitted_last = None;
    }

    fn name(&self) -> &'static str {
        "DIST"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::stream::compress_all;

    fn line(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| TimedPoint::new(i as f64 * 10.0, 0.0, i as f64))
            .collect()
    }

    #[test]
    fn uniform_keeps_every_kth_plus_last() {
        let mut s = UniformSamplingCompressor::new(10);
        let out = compress_all(&mut s, line(95));
        // Indices 0, 10, ..., 90 plus the final point 94.
        assert_eq!(out.len(), 11);
        assert_eq!(out.last().unwrap().t, 94.0);
    }

    #[test]
    fn uniform_every_one_keeps_all() {
        let mut s = UniformSamplingCompressor::new(1);
        let pts = line(7);
        assert_eq!(compress_all(&mut s, pts.clone()), pts);
    }

    #[test]
    fn distance_threshold_skips_small_moves() {
        let mut s = DistanceThresholdCompressor::new(25.0);
        let out = compress_all(&mut s, line(10)); // 10 m steps
                                                  // Kept at 0, 30, 60, 90 (every 3rd step ≥ 25 m) + final.
        assert!(out.len() < 10);
        assert_eq!(out.first().unwrap().t, 0.0);
        assert_eq!(out.last().unwrap().t, 9.0);
    }

    #[test]
    fn stationary_object_keeps_two_points() {
        let pts: Vec<TimedPoint> = (0..50)
            .map(|i| TimedPoint::new(1.0, 1.0, i as f64))
            .collect();
        let mut s = DistanceThresholdCompressor::new(5.0);
        let out = compress_all(&mut s, pts);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_streams() {
        let mut u = UniformSamplingCompressor::new(3);
        assert!(compress_all(&mut u, std::iter::empty()).is_empty());
        let mut d = DistanceThresholdCompressor::new(3.0);
        assert!(compress_all(&mut d, std::iter::empty()).is_empty());
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn uniform_rejects_zero() {
        let _ = UniformSamplingCompressor::new(0);
    }
}
