//! Buffered Greedy Deviation (paper §III-B-2) — the generic sliding-window
//! algorithm in the style of Keogh et al.
//!
//! On every arrival the whole window is re-scanned against the chord from
//! the segment start to the newest point: O(L) work per point, O(nL) total,
//! where L is the window capacity. When the deviation breaks the tolerance
//! the segment ends at the *previous* point; when the window fills first,
//! the newest point is forcibly kept — the buffer-dependence the paper
//! criticises.

use bqs_core::metrics::DeviationMetric;
use bqs_core::stream::{Sink, StreamCompressor};
use bqs_geo::{Point2, TimedPoint};

/// The sliding-window greedy compressor.
#[derive(Debug, Clone)]
pub struct BufferedGreedyCompressor {
    tolerance: f64,
    metric: DeviationMetric,
    buffer_size: usize,
    /// Interior points of the current segment (start excluded).
    window: Vec<Point2>,
    start: Option<TimedPoint>,
    last: Option<TimedPoint>,
    emitted_last: Option<TimedPoint>,
}

impl BufferedGreedyCompressor {
    /// Creates a BGD compressor with a window capacity of `buffer_size`
    /// interior points.
    ///
    /// # Panics
    /// Panics when `buffer_size < 1` or the tolerance is not positive.
    pub fn new(tolerance: f64, buffer_size: usize) -> BufferedGreedyCompressor {
        assert!(buffer_size >= 1, "BGD needs a window of at least 1 point");
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be finite and > 0"
        );
        BufferedGreedyCompressor {
            tolerance,
            metric: DeviationMetric::PointToLine,
            buffer_size,
            window: Vec::with_capacity(buffer_size),
            start: None,
            last: None,
            emitted_last: None,
        }
    }

    /// Replaces the deviation metric.
    pub fn with_metric(mut self, metric: DeviationMetric) -> Self {
        self.metric = metric;
        self
    }

    /// The configured window capacity.
    pub fn buffer_size(&self) -> usize {
        self.buffer_size
    }

    fn emit(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        out.push(p);
        self.emitted_last = Some(p);
    }

    fn restart_at(&mut self, anchor: TimedPoint) {
        self.start = Some(anchor);
        self.window.clear();
    }
}

impl StreamCompressor for BufferedGreedyCompressor {
    fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        let Some(start) = self.start else {
            self.emit(p, out);
            self.restart_at(p);
            self.last = Some(p);
            return;
        };

        let deviation = self.metric.max_deviation(&self.window, start.pos, p.pos);
        if deviation > self.tolerance {
            // Segment ends at the previous point; p opens the next one.
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: a segment has at least its start
            let key = self.last.expect("a segment has at least its start");
            self.emit(key, out);
            self.restart_at(key);
            // p is the first interior candidate of the new segment.
            self.window.push(p.pos);
            self.last = Some(p);
            return;
        }

        self.window.push(p.pos);
        self.last = Some(p);
        if self.window.len() >= self.buffer_size {
            // Window exhausted: forcibly keep the newest point (the paper's
            // "extra points taken when the buffer is repeatedly full").
            self.emit(p, out);
            self.restart_at(p);
        }
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        if let Some(last) = self.last {
            if self.emitted_last != Some(last) {
                out.push(last);
            }
        }
        self.start = None;
        self.last = None;
        self.emitted_last = None;
        self.window.clear();
    }

    fn name(&self) -> &'static str {
        "BGD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::stream::compress_all;

    fn line(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| TimedPoint::new(i as f64 * 10.0, 0.0, i as f64))
            .collect()
    }

    #[test]
    fn straight_line_pays_window_overhead() {
        let mut bgd = BufferedGreedyCompressor::new(5.0, 32);
        let out = compress_all(&mut bgd, line(100));
        // Forced keeps every 32 interior points.
        assert!(out.len() > 2);
        assert!(out.len() <= 100 / 32 + 2);
    }

    #[test]
    fn error_bound_holds() {
        let pts: Vec<TimedPoint> = (0..400)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 5.0, (a * 0.21).sin() * 18.0, a)
            })
            .collect();
        let tolerance = 4.0;
        let mut bgd = BufferedGreedyCompressor::new(tolerance, 64);
        let kept = compress_all(&mut bgd, pts.iter().copied());
        for w in kept.windows(2) {
            let i = pts.iter().position(|p| p == &w[0]).unwrap();
            let j = pts.iter().position(|p| p == &w[1]).unwrap();
            assert!(i < j);
            for p in &pts[i + 1..j] {
                let d = DeviationMetric::PointToLine.distance(p.pos, w[0].pos, w[1].pos);
                assert!(d <= tolerance + 1e-9, "segment {i}..{j}");
            }
        }
    }

    #[test]
    fn sharp_corner_is_kept() {
        let mut pts = line(20);
        pts.extend((1..20).map(|i| TimedPoint::new(190.0, i as f64 * 10.0, 20.0 + i as f64)));
        let mut bgd = BufferedGreedyCompressor::new(5.0, 64);
        let out = compress_all(&mut bgd, pts);
        assert!(out
            .iter()
            .any(|p| p.pos.distance(Point2::new(190.0, 0.0)) <= 5.0));
    }

    #[test]
    fn larger_windows_compress_better_on_compressible_input() {
        let pts = line(512);
        let small = {
            let mut c = BufferedGreedyCompressor::new(5.0, 16);
            compress_all(&mut c, pts.iter().copied()).len()
        };
        let large = {
            let mut c = BufferedGreedyCompressor::new(5.0, 256);
            compress_all(&mut c, pts.iter().copied()).len()
        };
        assert!(large < small);
    }

    #[test]
    fn tiny_streams() {
        let mut bgd = BufferedGreedyCompressor::new(5.0, 8);
        assert_eq!(compress_all(&mut bgd, line(0)).len(), 0);
        assert_eq!(compress_all(&mut bgd, line(1)).len(), 1);
        assert_eq!(compress_all(&mut bgd, line(2)).len(), 2);
    }

    #[test]
    fn output_is_strictly_ordered() {
        let pts: Vec<TimedPoint> = (0..200)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 3.0, (a * 0.9).sin() * 12.0, a)
            })
            .collect();
        let mut bgd = BufferedGreedyCompressor::new(3.0, 10);
        let out = compress_all(&mut bgd, pts);
        for w in out.windows(2) {
            assert!(w[0].t < w[1].t);
        }
    }

    #[test]
    #[should_panic(expected = "window of at least 1")]
    fn rejects_zero_window() {
        let _ = BufferedGreedyCompressor::new(5.0, 0);
    }
}
