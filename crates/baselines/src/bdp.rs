//! Buffered Douglas–Peucker (paper §III-B-1).
//!
//! The straw-man online adaptation of DP: accumulate points into a
//! fixed-size buffer and run DP on the buffer whenever it fills. Both the
//! first and last buffered points are kept at every flush — even when they
//! could have been discarded — which is exactly the overhead the paper
//! criticises: a straight line of `N` points costs `⌊N/M⌋ + 1` output
//! points instead of 2.

use crate::dp::douglas_peucker_indices;
use bqs_core::metrics::DeviationMetric;
use bqs_core::stream::{Sink, StreamCompressor};
use bqs_geo::{Point2, TimedPoint};

/// Douglas–Peucker over a fixed-size sliding buffer.
#[derive(Debug, Clone)]
pub struct BufferedDpCompressor {
    tolerance: f64,
    metric: DeviationMetric,
    buffer_size: usize,
    buffer: Vec<TimedPoint>,
    /// Most recent point emitted this stream — the sink interface is
    /// write-only, so the duplicate-anchor check in `finish` tracks it
    /// here instead of peeking at the output.
    last_emitted: Option<TimedPoint>,
}

impl BufferedDpCompressor {
    /// Creates a BDP compressor. `buffer_size` must be at least 2; the
    /// paper's default working set is 32 points (matching the FBQS
    /// significant-point budget).
    ///
    /// # Panics
    /// Panics when `buffer_size < 2` or the tolerance is not positive.
    pub fn new(tolerance: f64, buffer_size: usize) -> BufferedDpCompressor {
        assert!(buffer_size >= 2, "BDP needs a buffer of at least 2 points");
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be finite and > 0"
        );
        BufferedDpCompressor {
            tolerance,
            metric: DeviationMetric::PointToLine,
            buffer_size,
            buffer: Vec::with_capacity(buffer_size),
            last_emitted: None,
        }
    }

    /// Replaces the deviation metric.
    pub fn with_metric(mut self, metric: DeviationMetric) -> Self {
        self.metric = metric;
        self
    }

    /// The configured buffer size.
    pub fn buffer_size(&self) -> usize {
        self.buffer_size
    }

    /// Runs DP on the buffer; emits every kept point except the final one,
    /// which seeds the next buffer so consecutive windows share an anchor.
    fn flush(&mut self, out: &mut dyn Sink, last_too: bool) {
        if self.buffer.is_empty() {
            return;
        }
        let positions: Vec<Point2> = self.buffer.iter().map(|p| p.pos).collect();
        let kept = douglas_peucker_indices(&positions, self.tolerance, self.metric);
        let emit_until = if last_too {
            kept.len()
        } else {
            kept.len().saturating_sub(1)
        };
        for &i in &kept[..emit_until] {
            out.push(self.buffer[i]);
            self.last_emitted = Some(self.buffer[i]);
        }
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: non-empty buffer
        let tail = *self.buffer.last().expect("non-empty buffer");
        self.buffer.clear();
        if !last_too {
            self.buffer.push(tail);
        }
    }
}

impl StreamCompressor for BufferedDpCompressor {
    fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        self.buffer.push(p);
        if self.buffer.len() >= self.buffer_size {
            self.flush(out, false);
        }
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        // Emit the remaining window completely. A lone carried-over anchor
        // was already emitted by the previous flush.
        if !(self.buffer.len() == 1 && self.last_emitted.as_ref() == self.buffer.first()) {
            self.flush(out, true);
        }
        self.buffer.clear();
        self.last_emitted = None;
    }

    fn name(&self) -> &'static str {
        "BDP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::stream::compress_all;

    fn line(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| TimedPoint::new(i as f64 * 10.0, 0.0, i as f64))
            .collect()
    }

    #[test]
    fn straight_line_pays_the_window_overhead() {
        // 100 points, window 32: the paper predicts ⌊N/M⌋ + 1 ≈ 4 points,
        // strictly more than the optimal 2.
        let mut bdp = BufferedDpCompressor::new(5.0, 32);
        let out = compress_all(&mut bdp, line(100));
        assert!(
            out.len() > 2,
            "BDP must keep window anchors, got {}",
            out.len()
        );
        assert!(out.len() <= 100 / 32 + 2);
        assert_eq!(out.first().unwrap().t, 0.0);
        assert_eq!(out.last().unwrap().t, 99.0);
    }

    #[test]
    fn error_bound_holds_within_each_window() {
        let pts: Vec<TimedPoint> = (0..300)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 6.0, (a * 0.35).sin() * 25.0, a)
            })
            .collect();
        let tolerance = 5.0;
        let mut bdp = BufferedDpCompressor::new(tolerance, 32);
        let kept = compress_all(&mut bdp, pts.iter().copied());
        // Validate against the original stream.
        for w in kept.windows(2) {
            let i = pts.iter().position(|p| p == &w[0]).unwrap();
            let j = pts.iter().position(|p| p == &w[1]).unwrap();
            assert!(i < j, "kept points must be a subsequence");
            for p in &pts[i + 1..j] {
                let d = DeviationMetric::PointToLine.distance(p.pos, w[0].pos, w[1].pos);
                assert!(d <= tolerance + 1e-9);
            }
        }
    }

    #[test]
    fn output_has_no_duplicates() {
        let mut bdp = BufferedDpCompressor::new(5.0, 16);
        let out = compress_all(&mut bdp, line(64));
        for w in out.windows(2) {
            assert!(w[0].t < w[1].t, "duplicate or out-of-order output: {out:?}");
        }
    }

    #[test]
    fn stream_shorter_than_buffer() {
        let mut bdp = BufferedDpCompressor::new(5.0, 32);
        let out = compress_all(&mut bdp, line(5));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn stream_exactly_buffer_size() {
        let mut bdp = BufferedDpCompressor::new(5.0, 32);
        let out = compress_all(&mut bdp, line(32));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn single_point_stream() {
        let mut bdp = BufferedDpCompressor::new(5.0, 8);
        let out = compress_all(&mut bdp, line(1));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn smaller_buffers_compress_worse() {
        let pts = line(256);
        let small = {
            let mut c = BufferedDpCompressor::new(5.0, 8);
            compress_all(&mut c, pts.iter().copied()).len()
        };
        let large = {
            let mut c = BufferedDpCompressor::new(5.0, 128);
            compress_all(&mut c, pts.iter().copied()).len()
        };
        assert!(small > large, "small {small} should exceed large {large}");
    }

    #[test]
    #[should_panic(expected = "buffer of at least 2")]
    fn rejects_tiny_buffer() {
        let _ = BufferedDpCompressor::new(5.0, 1);
    }

    #[test]
    fn accessors() {
        let bdp = BufferedDpCompressor::new(5.0, 64);
        assert_eq!(bdp.buffer_size(), 64);
        assert_eq!(bdp.name(), "BDP");
    }
}
