//! # bqs-geo — geometry substrate for the BQS trajectory-compression library
//!
//! This crate provides every geometric primitive the Bounded Quadrant System
//! (Liu et al., ICDE 2015) builds on:
//!
//! * planar and 3-D vectors/points ([`Vec2`], [`Point2`], [`Point3`],
//!   [`TimedPoint`], [`LocationPoint`]),
//! * point-to-line and point-to-segment distances ([`mod@line`]),
//! * angles, quadrants and rotations ([`angle`], [`rotation`]),
//! * axis-aligned bounding boxes in 2-D and 3-D ([`rect`], [`prism`]),
//! * planes and plane/prism intersections for the 3-D BQS ([`plane`]),
//! * exact convex hulls used to cross-check the BQS bounding hulls ([`hull`]),
//! * the WGS-84 ↔ UTM transverse-Mercator projection the paper uses to map GPS
//!   fixes into a metric coordinate frame ([`proj`]),
//! * polyline utilities (path length, brute-force deviation scans) ([`polyline`]).
//!
//! Everything here is deliberately dependency-free (`serde` aside) and
//! allocation-conscious: the BQS fast path must run on a 4 KB-RAM class device,
//! so the primitives avoid hidden heap usage.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod angle;
pub mod columnar;
pub mod frechet;
pub mod geodesic;
pub mod hull;
pub mod line;
pub mod plane;
pub mod point;
pub mod point4;
pub mod polyline;
pub mod prism;
pub mod proj;
pub mod rect;
pub mod rotation;
pub mod vec2;

pub use angle::{normalize_angle, Quadrant};
pub use columnar::ColumnarBatch;
pub use frechet::{discrete_frechet, frechet_similar};
pub use geodesic::{destination, haversine_m, initial_bearing_deg};
pub use hull::convex_hull;
pub use line::{point_to_line_distance, point_to_segment_distance, Line2, Line3, Segment2};
pub use plane::Plane;
pub use point::{LocationPoint, Point2, Point3, TimedPoint};
pub use point4::{Box4, Line4, Point4};
pub use polyline::{
    max_deviation, max_deviation_segment, max_deviation_to_chord, max_deviation_to_chord_segment,
    path_length, verify_error_bound,
};
pub use prism::Prism;
pub use proj::{utm_from_wgs84, wgs84_from_utm, UtmCoord, UtmZone};
pub use rect::Rect;
pub use rotation::Rot2;
pub use vec2::Vec2;

/// Convenient result alias for fallible geometry operations.
pub type GeoResult<T> = Result<T, GeoError>;

/// Errors produced by geometry routines.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A coordinate was not finite (NaN or infinite).
    NonFiniteCoordinate {
        /// Human-readable description of the offending value.
        what: &'static str,
    },
    /// A latitude outside the transverse-Mercator validity band was supplied.
    LatitudeOutOfRange {
        /// The offending latitude in degrees.
        latitude: f64,
    },
    /// A longitude outside [-180, 180) was supplied.
    LongitudeOutOfRange {
        /// The offending longitude in degrees.
        longitude: f64,
    },
    /// A degenerate geometric object (zero-length line, empty hull, ...) was
    /// used where a non-degenerate one is required.
    Degenerate {
        /// Human-readable description of the degeneracy.
        what: &'static str,
    },
}

impl std::fmt::Display for GeoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoError::NonFiniteCoordinate { what } => {
                write!(f, "non-finite coordinate: {what}")
            }
            GeoError::LatitudeOutOfRange { latitude } => {
                write!(f, "latitude {latitude} out of UTM range [-80, 84]")
            }
            GeoError::LongitudeOutOfRange { longitude } => {
                write!(f, "longitude {longitude} out of range [-180, 180)")
            }
            GeoError::Degenerate { what } => write!(f, "degenerate geometry: {what}"),
        }
    }
}

impl std::error::Error for GeoError {}
