//! Angles and quadrants.
//!
//! The BQS splits the plane around the segment start point into four
//! quadrants (paper §V-A step 1). The appendix relies on the quadrant split
//! for the convex-hull properties of the bounding structure, and Theorems
//! 5.3–5.5 dispatch on whether the current path line is "in" a quadrant and
//! whether it lies between the two angular bounding lines. All of that angle
//! bookkeeping lives here.

use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_2, PI};

/// One of the four quadrants of a planar coordinate system.
///
/// Quadrants are closed on their start axis and open on their end axis, so
/// every direction belongs to exactly one quadrant: `Q1 = [0, π/2)`,
/// `Q2 = [π/2, π)`, `Q3 = [−π, −π/2)`, `Q4 = [−π/2, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quadrant {
    /// x ≥ 0, y ≥ 0 — angles in `[0, π/2)`.
    Q1,
    /// x < 0, y ≥ 0 — angles in `[π/2, π)`.
    Q2,
    /// x < 0, y < 0 — angles in `[−π, −π/2)`.
    Q3,
    /// x ≥ 0, y < 0 — angles in `[−π/2, 0)`.
    Q4,
}

impl Quadrant {
    /// All four quadrants in index order.
    pub const ALL: [Quadrant; 4] = [Quadrant::Q1, Quadrant::Q2, Quadrant::Q3, Quadrant::Q4];

    /// Classifies a displacement `(x, y)` from the origin.
    ///
    /// Points on a positive axis go to the quadrant that is closed on that
    /// axis (e.g. `(1, 0)` → Q1, `(0, -1)` → Q4); the origin itself
    /// conventionally classifies as Q1 (the BQS never stores the origin in a
    /// quadrant because of the Theorem 5.1 pre-filter).
    #[inline]
    pub fn of(x: f64, y: f64) -> Quadrant {
        if y >= 0.0 {
            if x >= 0.0 {
                Quadrant::Q1
            } else {
                Quadrant::Q2
            }
        } else if x < 0.0 {
            Quadrant::Q3
        } else {
            Quadrant::Q4
        }
    }

    /// Classifies a direction angle in radians (any range; normalised
    /// internally).
    #[inline]
    pub fn of_angle(theta: f64) -> Quadrant {
        let t = normalize_angle(theta);
        if t >= FRAC_PI_2 {
            Quadrant::Q2
        } else if t >= 0.0 {
            Quadrant::Q1
        } else if t >= -FRAC_PI_2 {
            Quadrant::Q4
        } else {
            Quadrant::Q3
        }
    }

    /// Contiguous index 0–3 for array storage.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Quadrant::Q1 => 0,
            Quadrant::Q2 => 1,
            Quadrant::Q3 => 2,
            Quadrant::Q4 => 3,
        }
    }

    /// Inverse of [`Quadrant::index`]. Panics for `i > 3`.
    #[inline]
    pub fn from_index(i: usize) -> Quadrant {
        Quadrant::ALL[i]
    }

    /// The angle range `[start, end)` of this quadrant, in radians within
    /// `(-π, π]` normalisation.
    #[inline]
    pub fn angle_range(self) -> (f64, f64) {
        match self {
            Quadrant::Q1 => (0.0, FRAC_PI_2),
            Quadrant::Q2 => (FRAC_PI_2, PI),
            Quadrant::Q3 => (-PI, -FRAC_PI_2),
            Quadrant::Q4 => (-FRAC_PI_2, 0.0),
        }
    }

    /// The quadrant diagonally opposite.
    #[inline]
    pub fn opposite(self) -> Quadrant {
        match self {
            Quadrant::Q1 => Quadrant::Q3,
            Quadrant::Q2 => Quadrant::Q4,
            Quadrant::Q3 => Quadrant::Q1,
            Quadrant::Q4 => Quadrant::Q2,
        }
    }

    /// Whether an (undirected) line with direction angle `theta` is "in" this
    /// quadrant per the paper's definition below Theorem 5.3: a line is in
    /// quadrant Q if `θ`, `θ + π` or `θ − π` falls in Q's angle range. Since
    /// we use point-to-line distance, every line is "in" exactly two
    /// (opposite) quadrants.
    #[inline]
    pub fn contains_line_angle(self, theta: f64) -> bool {
        let (lo, hi) = self.angle_range();
        // Quadrant ranges are half-open within [-π, π); fold the +π
        // representative of the seam angle onto -π so horizontal-left lines
        // classify consistently.
        let fold = |a: f64| if a >= PI { a - 2.0 * PI } else { a };
        let t = fold(normalize_angle(theta));
        let in_range = |a: f64| a >= lo && a < hi;
        in_range(t) || in_range(fold(normalize_angle(t + PI)))
    }

    /// The signs `(sign_x, sign_y)` of coordinates in this quadrant, using
    /// `+1` for the closed (≥ 0) axis side.
    #[inline]
    pub fn signs(self) -> (f64, f64) {
        match self {
            Quadrant::Q1 => (1.0, 1.0),
            Quadrant::Q2 => (-1.0, 1.0),
            Quadrant::Q3 => (-1.0, -1.0),
            Quadrant::Q4 => (1.0, -1.0),
        }
    }
}

/// Normalises an angle to `(-π, π]`.
#[inline]
pub fn normalize_angle(theta: f64) -> f64 {
    if theta.is_nan() {
        return theta;
    }
    let two_pi = 2.0 * PI;
    let mut t = theta % two_pi;
    if t <= -PI {
        t += two_pi;
    } else if t > PI {
        t -= two_pi;
    }
    t
}

/// Smallest absolute difference between two angles, in `[0, π]`.
#[inline]
pub fn angle_difference(a: f64, b: f64) -> f64 {
    normalize_angle(a - b).abs()
}

/// Whether `theta` lies within the closed angular interval `[lo, hi]`
/// measured counter-clockwise from `lo` to `hi` (all radians; interval span
/// must be ≤ 2π).
#[inline]
pub fn angle_in_ccw_interval(theta: f64, lo: f64, hi: f64) -> bool {
    let span = normalize_positive(hi - lo);
    let off = normalize_positive(theta - lo);
    off <= span
}

/// Normalises an angle to `[0, 2π)`.
#[inline]
pub fn normalize_positive(theta: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let t = theta % two_pi;
    if t < 0.0 {
        t + two_pi
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_of_points() {
        assert_eq!(Quadrant::of(1.0, 1.0), Quadrant::Q1);
        assert_eq!(Quadrant::of(-1.0, 1.0), Quadrant::Q2);
        assert_eq!(Quadrant::of(-1.0, -1.0), Quadrant::Q3);
        assert_eq!(Quadrant::of(1.0, -1.0), Quadrant::Q4);
        // Axis conventions.
        assert_eq!(Quadrant::of(1.0, 0.0), Quadrant::Q1);
        assert_eq!(Quadrant::of(0.0, 1.0), Quadrant::Q1);
        assert_eq!(Quadrant::of(-1.0, 0.0), Quadrant::Q2);
        assert_eq!(Quadrant::of(0.0, -1.0), Quadrant::Q4);
        assert_eq!(Quadrant::of(0.0, 0.0), Quadrant::Q1);
    }

    #[test]
    fn quadrant_of_angle_agrees_with_quadrant_of_point() {
        for deg in (-180..180).step_by(7) {
            let a = (deg as f64).to_radians();
            let (x, y) = (a.cos(), a.sin());
            // Skip angles that land exactly on an axis where cos/sin produce
            // tiny non-zero values with ambiguous sign.
            if x.abs() < 1e-12 || y.abs() < 1e-12 {
                continue;
            }
            assert_eq!(Quadrant::of_angle(a), Quadrant::of(x, y), "angle {deg}°");
        }
    }

    #[test]
    fn index_round_trip() {
        for q in Quadrant::ALL {
            assert_eq!(Quadrant::from_index(q.index()), q);
        }
    }

    #[test]
    fn opposite_is_involution() {
        for q in Quadrant::ALL {
            assert_eq!(q.opposite().opposite(), q);
            assert_ne!(q.opposite(), q);
        }
    }

    #[test]
    fn normalize_angle_range() {
        for k in -5..=5 {
            for deg in [-179.0f64, -90.0, 0.0, 45.0, 90.0, 179.0, 180.0] {
                let theta = deg.to_radians() + (k as f64) * 2.0 * PI;
                let n = normalize_angle(theta);
                assert!(n > -PI - 1e-12 && n <= PI + 1e-12, "{theta} → {n}");
                // Same direction.
                assert!((n.sin() - theta.sin()).abs() < 1e-9);
                assert!((n.cos() - theta.cos()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn line_in_exactly_two_quadrants() {
        for deg in (-180..180).step_by(3) {
            let theta = (deg as f64).to_radians();
            let count = Quadrant::ALL
                .iter()
                .filter(|q| q.contains_line_angle(theta))
                .count();
            assert_eq!(count, 2, "line at {deg}° should be in exactly 2 quadrants");
        }
    }

    #[test]
    fn line_in_opposite_quadrants() {
        let theta = 30f64.to_radians();
        assert!(Quadrant::Q1.contains_line_angle(theta));
        assert!(Quadrant::Q3.contains_line_angle(theta));
        assert!(!Quadrant::Q2.contains_line_angle(theta));
        assert!(!Quadrant::Q4.contains_line_angle(theta));
    }

    #[test]
    fn angle_difference_wraps() {
        assert!(
            (angle_difference(179f64.to_radians(), -179f64.to_radians()) - 2f64.to_radians()).abs()
                < 1e-12
        );
        assert_eq!(angle_difference(1.0, 1.0), 0.0);
    }

    #[test]
    fn ccw_interval_membership() {
        let lo = -0.1;
        let hi = 0.4;
        assert!(angle_in_ccw_interval(0.0, lo, hi));
        assert!(angle_in_ccw_interval(lo, lo, hi));
        assert!(angle_in_ccw_interval(hi, lo, hi));
        assert!(!angle_in_ccw_interval(0.5, lo, hi));
        assert!(!angle_in_ccw_interval(-0.2, lo, hi));
        // Interval crossing the ±π seam.
        assert!(angle_in_ccw_interval(PI, PI - 0.1, -PI + 0.1));
        assert!(!angle_in_ccw_interval(0.0, PI - 0.1, -PI + 0.1));
    }

    #[test]
    fn signs_match_quadrant_membership() {
        for q in Quadrant::ALL {
            let (sx, sy) = q.signs();
            assert_eq!(Quadrant::of(sx, sy), q);
        }
    }
}
