//! Exact planar convex hulls.
//!
//! The BQS never computes an exact hull on the hot path — its whole point is
//! to get away with an 8-significant-point over-approximation. This module
//! exists so tests and ablations can *verify* that claim: the hull of the
//! significant points must contain every buffered point, and the exact hull
//! gives the tightest possible deviation bounds to compare against.

use crate::point::Point2;

/// Computes the convex hull of a point set using Andrew's monotone chain.
///
/// Returns the hull vertices in counter-clockwise order without repeating
/// the first vertex. Collinear points on the hull boundary are dropped.
/// Degenerate inputs return what is left: empty input → empty hull, one
/// point → that point, all-collinear input → the two extreme points.
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
    });
    pts.dedup();

    if pts.len() <= 2 {
        return pts;
    }

    let cross = |o: Point2, a: Point2, b: Point2| (a - o).cross(b - o);

    let mut hull: Vec<Point2> = Vec::with_capacity(pts.len() + 1);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    hull
}

/// Whether `p` lies inside or on the boundary of the convex polygon `hull`
/// (vertices in counter-clockwise order). `tol` loosens the boundary test to
/// absorb floating-point error; distances up to `tol` outside an edge still
/// count as inside.
pub fn point_in_convex_hull(p: Point2, hull: &[Point2], tol: f64) -> bool {
    match hull.len() {
        0 => false,
        1 => p.distance(hull[0]) <= tol,
        2 => crate::line::point_to_segment_distance(p, hull[0], hull[1]) <= tol,
        n => {
            for i in 0..n {
                let a = hull[i];
                let b = hull[(i + 1) % n];
                let edge = b - a;
                let scale = edge.norm().max(1.0);
                // Signed area negative beyond tolerance → p is outside edge ab.
                if edge.cross(p - a) < -tol * scale {
                    return false;
                }
            }
            true
        }
    }
}

/// Area of a simple polygon given in counter-clockwise order (shoelace).
pub fn polygon_area(poly: &[Point2]) -> f64 {
    if poly.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..poly.len() {
        let a = poly[i];
        let b = poly[(i + 1) % poly.len()];
        acc += a.x * b.y - b.x * a.y;
    }
    acc * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(4.0, 4.0),
            Point2::new(0.0, 4.0),
            Point2::new(2.0, 2.0),
            Point2::new(1.0, 3.0),
            Point2::new(2.0, 0.0), // collinear boundary point, dropped
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(polygon_area(&hull) - 16.0 < 1e-12);
        for p in pts {
            assert!(point_in_convex_hull(p, &hull, 1e-9), "{p:?}");
        }
    }

    #[test]
    fn hull_is_ccw() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 1.0),
            Point2::new(1.0, 3.0),
            Point2::new(-1.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        assert!(
            polygon_area(&hull) > 0.0,
            "hull should be counter-clockwise"
        );
    }

    #[test]
    fn degenerate_hulls() {
        assert!(convex_hull(&[]).is_empty());
        let single = convex_hull(&[Point2::new(1.0, 1.0)]);
        assert_eq!(single, vec![Point2::new(1.0, 1.0)]);
        // All collinear → two extreme points.
        let collinear: Vec<Point2> = (0..5)
            .map(|i| Point2::new(i as f64, 2.0 * i as f64))
            .collect();
        let hull = convex_hull(&collinear);
        assert_eq!(hull.len(), 2);
        assert!(hull.contains(&Point2::new(0.0, 0.0)));
        assert!(hull.contains(&Point2::new(4.0, 8.0)));
    }

    #[test]
    fn duplicates_are_removed() {
        let p = Point2::new(3.0, 3.0);
        let hull = convex_hull(&[p, p, p]);
        assert_eq!(hull, vec![p]);
    }

    #[test]
    fn outside_point_detected() {
        let hull = convex_hull(&[
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(4.0, 4.0),
            Point2::new(0.0, 4.0),
        ]);
        assert!(!point_in_convex_hull(Point2::new(5.0, 2.0), &hull, 1e-9));
        assert!(!point_in_convex_hull(Point2::new(-0.1, 2.0), &hull, 1e-9));
        assert!(point_in_convex_hull(Point2::new(4.0, 4.0), &hull, 1e-9));
    }

    #[test]
    fn segment_hull_membership() {
        let hull = vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)];
        assert!(point_in_convex_hull(Point2::new(5.0, 0.0), &hull, 1e-9));
        assert!(!point_in_convex_hull(Point2::new(5.0, 1.0), &hull, 1e-9));
    }
}
