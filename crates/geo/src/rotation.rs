//! Planar rotations, used by the BQS data-centric rotation step (paper §V-D).

use crate::point::Point2;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A rotation about the origin, stored as the cosine/sine pair so repeated
/// application costs four multiplications and no trigonometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rot2 {
    cos: f64,
    sin: f64,
}

impl Rot2 {
    /// The identity rotation.
    pub const IDENTITY: Rot2 = Rot2 { cos: 1.0, sin: 0.0 };

    /// Rotation by `angle` radians counter-clockwise.
    #[inline]
    pub fn from_angle(angle: f64) -> Rot2 {
        Rot2 {
            cos: angle.cos(),
            sin: angle.sin(),
        }
    }

    /// Rotation that maps the direction of `v` onto the +x axis (i.e. by
    /// `-v.angle()`), or identity for the zero vector.
    ///
    /// This is exactly what data-centric rotation needs: align the
    /// start-to-centroid direction with +x so buffered points straddle the
    /// axis and split into two quadrants.
    #[inline]
    pub fn aligning_to_x(v: Vec2) -> Rot2 {
        match v.normalized() {
            Some(u) => Rot2 {
                cos: u.x,
                sin: -u.y,
            },
            None => Rot2::IDENTITY,
        }
    }

    /// The rotation angle in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.sin.atan2(self.cos)
    }

    /// The inverse rotation.
    #[inline]
    pub fn inverse(self) -> Rot2 {
        Rot2 {
            cos: self.cos,
            sin: -self.sin,
        }
    }

    /// Applies the rotation to a vector.
    #[inline]
    pub fn apply_vec(self, v: Vec2) -> Vec2 {
        Vec2::new(
            self.cos * v.x - self.sin * v.y,
            self.sin * v.x + self.cos * v.y,
        )
    }

    /// Rotates `p` about `center`.
    #[inline]
    pub fn apply_about(self, center: Point2, p: Point2) -> Point2 {
        center + self.apply_vec(p - center)
    }

    /// Rotates `p` about the origin.
    #[inline]
    pub fn apply(self, p: Point2) -> Point2 {
        Point2::from_vec(self.apply_vec(p.to_vec()))
    }

    /// Composes two rotations (`self` after `other`).
    #[inline]
    pub fn compose(self, other: Rot2) -> Rot2 {
        Rot2 {
            cos: self.cos * other.cos - self.sin * other.sin,
            sin: self.sin * other.cos + self.cos * other.sin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn quarter_turn() {
        let r = Rot2::from_angle(FRAC_PI_2);
        let v = r.apply_vec(Vec2::UNIT_X);
        assert!((v.x).abs() < 1e-15 && (v.y - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rotation_preserves_norm() {
        let r = Rot2::from_angle(1.234);
        let v = Vec2::new(3.0, -7.0);
        assert!((r.apply_vec(v).norm() - v.norm()).abs() < 1e-12);
    }

    #[test]
    fn inverse_undoes() {
        let r = Rot2::from_angle(0.7);
        let p = Point2::new(2.0, 5.0);
        let q = r.inverse().apply(r.apply(p));
        assert!(p.distance(q) < 1e-12);
    }

    #[test]
    fn aligning_to_x_puts_vector_on_axis() {
        let v = Vec2::new(3.0, 4.0);
        let r = Rot2::aligning_to_x(v);
        let w = r.apply_vec(v);
        assert!(w.y.abs() < 1e-12);
        assert!((w.x - 5.0).abs() < 1e-12);
    }

    #[test]
    fn aligning_zero_vector_is_identity() {
        assert_eq!(Rot2::aligning_to_x(Vec2::ZERO), Rot2::IDENTITY);
    }

    #[test]
    fn apply_about_center_fixes_center() {
        let c = Point2::new(10.0, -3.0);
        let r = Rot2::from_angle(PI / 3.0);
        assert!(c.distance(r.apply_about(c, c)) < 1e-15);
        let p = Point2::new(11.0, -3.0);
        assert!((r.apply_about(c, p).distance(c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compose_equals_sum_of_angles() {
        let a = Rot2::from_angle(0.4);
        let b = Rot2::from_angle(-1.1);
        let c = a.compose(b);
        assert!((c.angle() - (0.4 - 1.1)).abs() < 1e-12);
    }

    #[test]
    fn angle_round_trip() {
        for deg in [-170.0f64, -90.0, -30.0, 0.0, 60.0, 120.0, 180.0] {
            let a = deg.to_radians();
            let r = Rot2::from_angle(a);
            let diff = (r.angle() - a).abs();
            assert!(diff < 1e-12 || (diff - 2.0 * PI).abs() < 1e-12);
        }
    }
}
