//! Great-circle utilities: haversine distance, initial bearing, and
//! destination points on the WGS-84 mean sphere.
//!
//! The UTM projection ([`crate::proj`]) is what the compressors run on; the
//! haversine functions are the cross-check (projected distances must agree
//! with great-circle distances locally) and the convenience layer for users
//! whose data never leaves latitude/longitude.

use crate::GeoError;
use crate::GeoResult;

/// Mean Earth radius (IUGG), metres.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

fn check(lat: f64, lon: f64) -> GeoResult<()> {
    if !lat.is_finite() || !lon.is_finite() {
        return Err(GeoError::NonFiniteCoordinate { what: "lat/lon" });
    }
    if !(-90.0..=90.0).contains(&lat) {
        return Err(GeoError::LatitudeOutOfRange { latitude: lat });
    }
    Ok(())
}

/// Great-circle distance between two WGS-84 coordinates, metres
/// (haversine formulation — numerically stable for small separations).
pub fn haversine_m(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> GeoResult<f64> {
    check(lat1, lon1)?;
    check(lat2, lon2)?;
    let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
    let dp = (lat2 - lat1).to_radians();
    let dl = (lon2 - lon1).to_radians();
    let a = (dp / 2.0).sin().powi(2) + p1.cos() * p2.cos() * (dl / 2.0).sin().powi(2);
    Ok(2.0 * EARTH_RADIUS_M * a.sqrt().min(1.0).asin())
}

/// Initial great-circle bearing from point 1 towards point 2, degrees
/// clockwise from north in `[0, 360)`.
pub fn initial_bearing_deg(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> GeoResult<f64> {
    check(lat1, lon1)?;
    check(lat2, lon2)?;
    let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
    let dl = (lon2 - lon1).to_radians();
    let y = dl.sin() * p2.cos();
    let x = p1.cos() * p2.sin() - p1.sin() * p2.cos() * dl.cos();
    let bearing = y.atan2(x).to_degrees();
    Ok((bearing + 360.0) % 360.0)
}

/// Destination point after travelling `distance_m` from `(lat, lon)` on the
/// initial bearing `bearing_deg`. Returns `(lat, lon)` in degrees.
pub fn destination(lat: f64, lon: f64, bearing_deg: f64, distance_m: f64) -> GeoResult<(f64, f64)> {
    check(lat, lon)?;
    if !distance_m.is_finite() || distance_m < 0.0 {
        return Err(GeoError::NonFiniteCoordinate { what: "distance" });
    }
    let delta = distance_m / EARTH_RADIUS_M;
    let theta = bearing_deg.to_radians();
    let p1 = lat.to_radians();
    let l1 = lon.to_radians();
    let p2 = (p1.sin() * delta.cos() + p1.cos() * delta.sin() * theta.cos()).asin();
    let l2 = l1 + (theta.sin() * delta.sin() * p1.cos()).atan2(delta.cos() - p1.sin() * p2.sin());
    let lon2 = (l2.to_degrees() + 540.0) % 360.0 - 180.0;
    Ok((p2.to_degrees(), lon2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_on_identical_points() {
        assert_eq!(haversine_m(-27.47, 153.02, -27.47, 153.02).unwrap(), 0.0);
    }

    #[test]
    fn one_degree_of_latitude_is_about_111km() {
        let d = haversine_m(0.0, 0.0, 1.0, 0.0).unwrap();
        assert!((d - 111_195.0).abs() < 100.0, "{d}");
    }

    #[test]
    fn agrees_with_utm_locally() {
        // 1 km apart near the Brisbane field site: haversine and projected
        // UTM distance agree within the UTM scale factor (≤ 0.04 %) plus
        // the sphere-vs-ellipsoid difference (≤ 0.3 %).
        let (a, b) = ((-27.4698, 153.0251), (-27.4788, 153.0251));
        let hav = haversine_m(a.0, a.1, b.0, b.1).unwrap();
        let pa = crate::proj::utm_from_wgs84(a.0, a.1).unwrap().to_point();
        let pb = crate::proj::utm_from_wgs84(b.0, b.1).unwrap().to_point();
        let utm = pa.distance(pb);
        assert!(
            (utm / hav - 1.0).abs() < 0.005,
            "utm {utm} vs haversine {hav}"
        );
    }

    #[test]
    fn bearings_cardinal_directions() {
        assert!((initial_bearing_deg(0.0, 0.0, 1.0, 0.0).unwrap() - 0.0).abs() < 1e-9);
        assert!((initial_bearing_deg(0.0, 0.0, 0.0, 1.0).unwrap() - 90.0).abs() < 1e-9);
        assert!((initial_bearing_deg(1.0, 0.0, 0.0, 0.0).unwrap() - 180.0).abs() < 1e-9);
        assert!((initial_bearing_deg(0.0, 1.0, 0.0, 0.0).unwrap() - 270.0).abs() < 1e-9);
    }

    #[test]
    fn destination_round_trips_with_haversine_and_bearing() {
        let (lat, lon) = (-27.4698, 153.0251);
        for (bearing, dist) in [(0.0, 5_000.0), (90.0, 12_000.0), (217.0, 800.0)] {
            let (lat2, lon2) = destination(lat, lon, bearing, dist).unwrap();
            let back = haversine_m(lat, lon, lat2, lon2).unwrap();
            assert!(
                (back - dist).abs() < 0.5,
                "bearing {bearing}: {back} vs {dist}"
            );
            let b = initial_bearing_deg(lat, lon, lat2, lon2).unwrap();
            assert!((b - bearing).abs() < 0.1, "bearing {b} vs {bearing}");
        }
    }

    #[test]
    fn rejects_invalid_coordinates() {
        assert!(haversine_m(95.0, 0.0, 0.0, 0.0).is_err());
        assert!(haversine_m(f64::NAN, 0.0, 0.0, 0.0).is_err());
        assert!(destination(0.0, 0.0, 0.0, -1.0).is_err());
    }
}
