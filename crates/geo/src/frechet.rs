//! Discrete Fréchet distance between polylines.
//!
//! The store's merging procedure compares single chords; whole *paths*
//! (multi-segment compressed trajectories) need a kinder similarity than
//! pointwise equality. The discrete Fréchet distance — the classic
//! "dog-walking" metric of Eiter & Mannila (1994) — is the standard choice
//! and is what "could represent the same path with a minor error" (paper
//! §V-F) means for polylines: two paths within Fréchet distance `ε` can be
//! traversed in lock-step while never being more than `ε` apart.

use crate::point::Point2;

/// Discrete Fréchet distance between two non-empty polylines, O(n·m) time
/// and O(m) space. Returns `None` when either polyline is empty.
pub fn discrete_frechet(a: &[Point2], b: &[Point2]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    // Rolling dynamic program over the coupling matrix.
    let m = b.len();
    let mut prev = vec![0.0f64; m];
    let mut curr = vec![0.0f64; m];

    prev[0] = a[0].distance(b[0]);
    for j in 1..m {
        prev[j] = prev[j - 1].max(a[0].distance(b[j]));
    }
    for ai in a.iter().skip(1) {
        curr[0] = prev[0].max(ai.distance(b[0]));
        for j in 1..m {
            let best_prior = prev[j].min(prev[j - 1]).min(curr[j - 1]);
            curr[j] = best_prior.max(ai.distance(b[j]));
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    Some(prev[m - 1])
}

/// Whether two polylines stay within `epsilon` of each other under the
/// Fréchet coupling, in either direction of traversal (a commute is the
/// same path both ways).
pub fn frechet_similar(a: &[Point2], b: &[Point2], epsilon: f64) -> bool {
    let forward = discrete_frechet(a, b);
    if matches!(forward, Some(d) if d <= epsilon) {
        return true;
    }
    let reversed: Vec<Point2> = b.iter().rev().copied().collect();
    matches!(discrete_frechet(a, &reversed), Some(d) if d <= epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(y: f64, n: usize) -> Vec<Point2> {
        (0..n).map(|i| Point2::new(i as f64 * 10.0, y)).collect()
    }

    #[test]
    fn identical_polylines_have_zero_distance() {
        let a = line(0.0, 10);
        assert_eq!(discrete_frechet(&a, &a), Some(0.0));
    }

    #[test]
    fn parallel_lines_measure_the_offset() {
        let a = line(0.0, 10);
        let b = line(7.0, 10);
        assert!((discrete_frechet(&a, &b).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = line(0.0, 8);
        let b: Vec<Point2> = (0..12).map(|i| Point2::new(i as f64 * 7.0, 3.0)).collect();
        assert!(
            (discrete_frechet(&a, &b).unwrap() - discrete_frechet(&b, &a).unwrap()).abs() < 1e-12
        );
    }

    #[test]
    fn detour_is_detected_where_hausdorff_would_miss_it() {
        // Same point set, opposite traversal order in the middle: Fréchet
        // sees the back-and-forth, pointwise distances would not.
        let a = vec![
            Point2::new(0.0, 0.0),
            Point2::new(50.0, 0.0),
            Point2::new(100.0, 0.0),
        ];
        let b = vec![
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 0.0),
            Point2::new(50.0, 0.0),
            Point2::new(100.0, 0.0),
        ];
        let d = discrete_frechet(&a, &b).unwrap();
        assert!(d >= 50.0 - 1e-9, "backtracking must cost: {d}");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(discrete_frechet(&[], &line(0.0, 3)), None);
        assert_eq!(discrete_frechet(&line(0.0, 3), &[]), None);
    }

    #[test]
    fn single_points() {
        let d = discrete_frechet(&[Point2::new(0.0, 0.0)], &[Point2::new(3.0, 4.0)]).unwrap();
        assert_eq!(d, 5.0);
    }

    #[test]
    fn reversed_commute_is_similar() {
        let out: Vec<Point2> = (0..20)
            .map(|i| Point2::new(i as f64 * 50.0, (i as f64 * 0.3).sin() * 5.0))
            .collect();
        let back: Vec<Point2> = out.iter().rev().copied().collect();
        assert!(frechet_similar(&out, &back, 1.0));
        // But a genuinely different road is not.
        let other: Vec<Point2> = (0..20)
            .map(|i| Point2::new(i as f64 * 50.0, 400.0))
            .collect();
        assert!(!frechet_similar(&out, &other, 50.0));
    }

    #[test]
    fn frechet_dominates_endpoint_distance() {
        let a = vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)];
        let b = vec![Point2::new(0.0, 2.0), Point2::new(40.0, 0.0)];
        let d = discrete_frechet(&a, &b).unwrap();
        assert!(d >= 30.0 - 1e-9);
    }
}
