//! Polyline utilities: path length and brute-force deviation scans.
//!
//! The deviation scan here is the "ground truth" every compressor and every
//! BQS bound is tested against, and is also what the buffered BQS variant
//! falls back to when its bounds are inconclusive (Algorithm 1 line 11).

use crate::line::{point_to_line_distance, point_to_segment_distance};
use crate::point::Point2;

/// Total length of the polyline through `points`.
pub fn path_length(points: &[Point2]) -> f64 {
    points.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// The paper's deviation `â(τ)` under the **point-to-line** metric: largest
/// distance from any interior point of `points` to the infinite line through
/// the first and last points (§IV). Returns 0 for fewer than 3 points.
pub fn max_deviation(points: &[Point2]) -> f64 {
    match points {
        [] | [_] | [_, _] => 0.0,
        [first, mid @ .., last] => mid
            .iter()
            .map(|p| point_to_line_distance(*p, *first, *last))
            .fold(0.0, f64::max),
    }
}

/// Deviation under the **point-to-line-segment** metric (§V-G, Eq. 11
/// context). Returns 0 for fewer than 3 points.
pub fn max_deviation_segment(points: &[Point2]) -> f64 {
    match points {
        [] | [_] | [_, _] => 0.0,
        [first, mid @ .., last] => mid
            .iter()
            .map(|p| point_to_segment_distance(*p, *first, *last))
            .fold(0.0, f64::max),
    }
}

/// Deviation of interior points `buffer` against an explicit chord from
/// `start` to `end` (the form the compressors need: the buffer usually
/// excludes both anchors).
pub fn max_deviation_to_chord(buffer: &[Point2], start: Point2, end: Point2) -> f64 {
    buffer
        .iter()
        .map(|p| point_to_line_distance(*p, start, end))
        .fold(0.0, f64::max)
}

/// Segment-metric version of [`max_deviation_to_chord`].
pub fn max_deviation_to_chord_segment(buffer: &[Point2], start: Point2, end: Point2) -> f64 {
    buffer
        .iter()
        .map(|p| point_to_segment_distance(*p, start, end))
        .fold(0.0, f64::max)
}

/// Verifies that a compressed polyline is an error-bounded representation of
/// `original`: every original point must lie within `tolerance` of the chord
/// of the compressed segment that covers it (by index). The compressed
/// polyline must be a subsequence of `original` given by `kept_indices`
/// (strictly increasing, starting at 0, ending at `original.len() - 1`).
///
/// Returns the worst observed deviation, or `None` if the index structure is
/// invalid.
pub fn verify_error_bound(
    original: &[Point2],
    kept_indices: &[usize],
    metric_segment: bool,
) -> Option<f64> {
    if original.is_empty() {
        return if kept_indices.is_empty() {
            Some(0.0)
        } else {
            None
        };
    }
    if kept_indices.first() != Some(&0) || kept_indices.last() != Some(&(original.len() - 1)) {
        return None;
    }
    let mut worst = 0.0f64;
    for w in kept_indices.windows(2) {
        let (i, j) = (w[0], w[1]);
        if j <= i || j >= original.len() {
            return None;
        }
        let (a, b) = (original[i], original[j]);
        for p in &original[i + 1..j] {
            let d = if metric_segment {
                point_to_segment_distance(*p, a, b)
            } else {
                point_to_line_distance(*p, a, b)
            };
            worst = worst.max(d);
        }
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zigzag() -> Vec<Point2> {
        vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, -1.0),
            Point2::new(3.0, 2.0),
            Point2::new(4.0, 0.0),
        ]
    }

    #[test]
    fn path_length_of_unit_steps() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
        ];
        assert_eq!(path_length(&pts), 2.0);
        assert_eq!(path_length(&[]), 0.0);
        assert_eq!(path_length(&[Point2::ORIGIN]), 0.0);
    }

    #[test]
    fn deviation_of_short_polylines_is_zero() {
        assert_eq!(max_deviation(&[]), 0.0);
        assert_eq!(max_deviation(&[Point2::ORIGIN]), 0.0);
        assert_eq!(max_deviation(&[Point2::ORIGIN, Point2::new(5.0, 5.0)]), 0.0);
    }

    #[test]
    fn deviation_of_zigzag() {
        // Chord is the x axis; the largest |y| among interior points is 2.
        assert_eq!(max_deviation(&zigzag()), 2.0);
    }

    #[test]
    fn segment_metric_at_least_line_metric() {
        let pts = zigzag();
        assert!(max_deviation_segment(&pts) >= max_deviation(&pts));
        // A point beyond the chord end exaggerates the segment metric.
        let pts2 = vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.1),
            Point2::new(5.0, 0.0),
        ];
        assert!(max_deviation_segment(&pts2) > max_deviation(&pts2));
    }

    #[test]
    fn chord_deviation_matches_full_scan() {
        let pts = zigzag();
        let full = max_deviation(&pts);
        let chord = max_deviation_to_chord(&pts[1..4], pts[0], pts[4]);
        assert_eq!(full, chord);
    }

    #[test]
    fn verify_error_bound_accepts_valid_compression() {
        let pts = zigzag();
        // Keep everything: zero deviation.
        let all: Vec<usize> = (0..pts.len()).collect();
        assert_eq!(verify_error_bound(&pts, &all, false), Some(0.0));
        // Keep only endpoints: worst deviation equals the full scan.
        let ends = vec![0, pts.len() - 1];
        assert_eq!(verify_error_bound(&pts, &ends, false), Some(2.0));
    }

    #[test]
    fn verify_error_bound_rejects_bad_indices() {
        let pts = zigzag();
        assert_eq!(verify_error_bound(&pts, &[1, 4], false), None); // must start at 0
        assert_eq!(verify_error_bound(&pts, &[0, 3], false), None); // must end at last
        assert_eq!(verify_error_bound(&pts, &[0, 2, 2, 4], false), None); // strictly increasing
        assert_eq!(verify_error_bound(&[], &[], false), Some(0.0));
    }
}
