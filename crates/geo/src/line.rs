//! Lines, segments and the distance kernels at the heart of every deviation
//! computation in the paper.
//!
//! The paper's deviation definition (§IV) uses **point-to-line** distance by
//! default and notes that **point-to-line-segment** distance "can easily be
//! used within BQS too" (with the Eq. 11 modification). Both kernels live
//! here so the compressors and the bound theorems can be parameterised over
//! them.

use crate::point::{Point2, Point3};
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// An infinite line through two (distinct) anchor points in the plane.
///
/// Degenerate lines (coincident anchors) are permitted and fall back to
/// point distance, matching the behaviour every compressor needs when a
/// segment's start and end coincide (e.g. a stationary animal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Line2 {
    /// First anchor (the segment start point `s` in the paper).
    pub a: Point2,
    /// Second anchor (the tentative end point `e`).
    pub b: Point2,
}

impl Line2 {
    /// Creates a line through `a` and `b`.
    #[inline]
    pub const fn new(a: Point2, b: Point2) -> Self {
        Line2 { a, b }
    }

    /// Direction vector `b - a` (not normalised).
    #[inline]
    pub fn direction(self) -> Vec2 {
        self.b - self.a
    }

    /// Length of the anchor span.
    #[inline]
    pub fn anchor_span(self) -> f64 {
        self.a.distance(self.b)
    }

    /// True when the two anchors coincide (within `f64` exactness).
    #[inline]
    pub fn is_degenerate(self) -> bool {
        self.a == self.b
    }

    /// Perpendicular distance from `p` to this infinite line.
    ///
    /// Falls back to `d(p, a)` when the line is degenerate.
    #[inline]
    pub fn distance_to(self, p: Point2) -> f64 {
        point_to_line_distance(p, self.a, self.b)
    }

    /// Distance from `p` to the **segment** `[a, b]`.
    #[inline]
    pub fn segment_distance_to(self, p: Point2) -> f64 {
        point_to_segment_distance(p, self.a, self.b)
    }

    /// Signed perpendicular offset of `p`: positive on the left of `a → b`.
    ///
    /// Zero for degenerate lines.
    #[inline]
    pub fn signed_offset(self, p: Point2) -> f64 {
        let d = self.direction();
        let n = d.norm();
        if n <= f64::EPSILON {
            0.0
        } else {
            d.cross(p - self.a) / n
        }
    }

    /// Angle of the line direction from the +x axis, in `(-pi, pi]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.direction().angle()
    }
}

/// A finite segment; a thin wrapper distinguishing segment semantics from
/// line semantics at the type level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment2 {
    /// Start point.
    pub a: Point2,
    /// End point.
    pub b: Point2,
}

impl Segment2 {
    /// Creates a segment from `a` to `b`.
    #[inline]
    pub const fn new(a: Point2, b: Point2) -> Self {
        Segment2 { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(self) -> f64 {
        self.a.distance(self.b)
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn distance_to(self, p: Point2) -> f64 {
        point_to_segment_distance(p, self.a, self.b)
    }

    /// The supporting infinite line.
    #[inline]
    pub fn line(self) -> Line2 {
        Line2::new(self.a, self.b)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn point_at(self, t: f64) -> Point2 {
        self.a.lerp(self.b, t)
    }
}

/// Perpendicular distance from point `p` to the infinite line through `a`
/// and `b`. Falls back to `d(p, a)` when `a == b` (degenerate line).
///
/// This is the paper's deviation kernel `d(p, l_{s,e})`.
#[inline]
pub fn point_to_line_distance(p: Point2, a: Point2, b: Point2) -> f64 {
    let d = b - a;
    let n = d.norm();
    if n <= f64::EPSILON {
        p.distance(a)
    } else {
        (d.cross(p - a) / n).abs()
    }
}

/// Distance from point `p` to the closed segment `[a, b]`.
///
/// Clamps the projection parameter to `[0, 1]`, so points "behind" an
/// endpoint are measured to that endpoint.
#[inline]
pub fn point_to_segment_distance(p: Point2, a: Point2, b: Point2) -> f64 {
    let ab = b - a;
    let len_sq = ab.norm_sq();
    if len_sq <= f64::EPSILON * f64::EPSILON {
        return p.distance(a);
    }
    let t = ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0);
    p.distance(a + ab * t)
}

/// Parameter of the orthogonal projection of `p` onto the line through `a`
/// and `b` (unclamped; 0 at `a`, 1 at `b`). `None` for degenerate lines.
#[inline]
pub fn project_parameter(p: Point2, a: Point2, b: Point2) -> Option<f64> {
    let ab = b - a;
    let len_sq = ab.norm_sq();
    if len_sq <= f64::EPSILON * f64::EPSILON {
        None
    } else {
        Some((p - a).dot(ab) / len_sq)
    }
}

/// An infinite line in 3-D through two anchor points, used by the 3-D BQS
/// deviation metric (§V-G).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Line3 {
    /// First anchor.
    pub a: Point3,
    /// Second anchor.
    pub b: Point3,
}

impl Line3 {
    /// Creates a 3-D line through `a` and `b`.
    #[inline]
    pub const fn new(a: Point3, b: Point3) -> Self {
        Line3 { a, b }
    }

    /// Distance from `p` to this infinite 3-D line (point distance to `a`
    /// when degenerate).
    #[inline]
    pub fn distance_to(self, p: Point3) -> f64 {
        let d = self.b.sub(self.a);
        let len = d.norm();
        if len <= f64::EPSILON {
            p.distance(self.a)
        } else {
            let ap = p.sub(self.a);
            ap.cross(d).norm() / len
        }
    }

    /// Distance from `p` to the 3-D segment `[a, b]`.
    #[inline]
    pub fn segment_distance_to(self, p: Point3) -> f64 {
        let ab = self.b.sub(self.a);
        let len_sq = ab.dot(ab);
        if len_sq <= f64::EPSILON * f64::EPSILON {
            return p.distance(self.a);
        }
        let t = (p.sub(self.a).dot(ab) / len_sq).clamp(0.0, 1.0);
        p.distance(self.a.add(ab.scale(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distance_basic() {
        // Horizontal line y = 0.
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 0.0);
        assert_eq!(point_to_line_distance(Point2::new(5.0, 3.0), a, b), 3.0);
        assert_eq!(point_to_line_distance(Point2::new(-100.0, -2.0), a, b), 2.0);
        assert_eq!(point_to_line_distance(Point2::new(4.0, 0.0), a, b), 0.0);
    }

    #[test]
    fn line_distance_degenerate_falls_back_to_point_distance() {
        let a = Point2::new(1.0, 1.0);
        assert_eq!(point_to_line_distance(Point2::new(4.0, 5.0), a, a), 5.0);
    }

    #[test]
    fn segment_distance_clamps_to_endpoints() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 0.0);
        // Beyond b: distance to b.
        assert_eq!(point_to_segment_distance(Point2::new(13.0, 4.0), a, b), 5.0);
        // Before a: distance to a.
        assert_eq!(point_to_segment_distance(Point2::new(-3.0, 4.0), a, b), 5.0);
        // Inside: perpendicular.
        assert_eq!(point_to_segment_distance(Point2::new(5.0, 2.0), a, b), 2.0);
    }

    #[test]
    fn segment_distance_never_below_line_distance() {
        let a = Point2::new(-3.0, 2.0);
        let b = Point2::new(7.0, -1.0);
        for p in [
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 100.0),
            Point2::new(-50.0, 3.0),
            Point2::new(2.0, 0.5),
        ] {
            assert!(point_to_segment_distance(p, a, b) >= point_to_line_distance(p, a, b) - 1e-12);
        }
    }

    #[test]
    fn signed_offset_sides() {
        let l = Line2::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        assert!(l.signed_offset(Point2::new(0.5, 1.0)) > 0.0);
        assert!(l.signed_offset(Point2::new(0.5, -1.0)) < 0.0);
        assert_eq!(l.signed_offset(Point2::new(0.5, 0.0)), 0.0);
    }

    #[test]
    fn project_parameter_values() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 0.0);
        assert_eq!(project_parameter(a, a, b), Some(0.0));
        assert_eq!(project_parameter(b, a, b), Some(1.0));
        assert_eq!(project_parameter(Point2::new(5.0, 7.0), a, b), Some(0.5));
        assert_eq!(project_parameter(Point2::new(20.0, 0.0), a, b), Some(2.0));
        assert_eq!(project_parameter(Point2::new(1.0, 1.0), a, a), None);
    }

    #[test]
    fn line3_distance() {
        // Line along the x axis.
        let l = Line3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0));
        assert!((l.distance_to(Point3::new(5.0, 3.0, 4.0)) - 5.0).abs() < 1e-12);
        assert_eq!(l.distance_to(Point3::new(7.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn line3_segment_distance_clamps() {
        let l = Line3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(10.0, 0.0, 0.0));
        assert!((l.segment_distance_to(Point3::new(13.0, 0.0, 4.0)) - 5.0).abs() < 1e-12);
        assert!((l.segment_distance_to(Point3::new(5.0, 0.0, 4.0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_line3() {
        let p = Point3::new(1.0, 1.0, 1.0);
        let l = Line3::new(p, p);
        assert!((l.distance_to(Point3::new(1.0, 1.0, 3.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn segment2_point_at() {
        let s = Segment2::new(Point2::new(0.0, 0.0), Point2::new(4.0, 8.0));
        assert_eq!(s.point_at(0.25), Point2::new(1.0, 2.0));
        assert_eq!(s.length(), (16.0f64 + 64.0).sqrt());
    }
}
