//! Planes and plane/prism intersections for the 3-D BQS (paper §V-G).
//!
//! The 3-D BQS bounds each octant's points with a prism plus two pairs of
//! bounding planes ("vertical" Θ planes containing the z axis, and
//! "inclined" Φ planes through two fixed anchor points). The significant
//! points of the resulting convex polyhedron are the intersections of those
//! planes with the prism edges — computed here.

use crate::point::Point3;
use crate::prism::Prism;
use serde::{Deserialize, Serialize};

/// A plane in Hessian normal form: the set of points `p` with
/// `n · p = d`, where `n` is a unit normal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plane {
    /// Unit normal.
    pub normal: Point3,
    /// Signed offset along the normal.
    pub d: f64,
}

impl Plane {
    /// Builds a plane from a (not necessarily unit) normal and a point on the
    /// plane. Returns `None` for a zero normal.
    pub fn from_normal_and_point(normal: Point3, point: Point3) -> Option<Plane> {
        let len = normal.norm();
        if len <= f64::EPSILON {
            return None;
        }
        let n = normal.scale(1.0 / len);
        Some(Plane {
            normal: n,
            d: n.dot(point),
        })
    }

    /// Builds the plane through three points. Returns `None` when the points
    /// are (numerically) collinear.
    pub fn from_points(a: Point3, b: Point3, c: Point3) -> Option<Plane> {
        let n = b.sub(a).cross(c.sub(a));
        Plane::from_normal_and_point(n, a)
    }

    /// The "vertical" Θ plane of the 3-D BQS: contains the z axis and makes
    /// angle `theta` with the YZ plane — equivalently, the plane through the
    /// origin whose horizontal trace is the direction `(cos θ, sin θ)`.
    pub fn vertical_through_z(theta: f64) -> Plane {
        // Normal is horizontal and perpendicular to the trace direction.
        let normal = Point3::new(-theta.sin(), theta.cos(), 0.0);
        Plane { normal, d: 0.0 }
    }

    /// Signed distance from `p` to the plane (positive on the normal side).
    #[inline]
    pub fn signed_distance(&self, p: Point3) -> f64 {
        self.normal.dot(p) - self.d
    }

    /// Absolute distance from `p` to the plane.
    #[inline]
    pub fn distance(&self, p: Point3) -> f64 {
        self.signed_distance(p).abs()
    }

    /// Intersection of the segment `[a, b]` with the plane, if any.
    pub fn intersect_segment(&self, a: Point3, b: Point3) -> Option<Point3> {
        let da = self.signed_distance(a);
        let db = self.signed_distance(b);
        if da == 0.0 {
            return Some(a);
        }
        if db == 0.0 {
            return Some(b);
        }
        if (da > 0.0) == (db > 0.0) {
            return None;
        }
        let t = da / (da - db);
        Some(a.add(b.sub(a).scale(t)))
    }

    /// The line where two planes meet, as `(point_on_line, direction)`.
    /// `None` for (numerically) parallel planes.
    pub fn intersect_plane(&self, other: &Plane) -> Option<(Point3, Point3)> {
        let dir = self.normal.cross(other.normal);
        let len = dir.norm();
        if len <= 1e-12 {
            return None;
        }
        // Solve for a point on both planes: p = (d1·(n2×dir) + d2·(dir×n1)) / |dir|².
        let p = other
            .normal
            .cross(dir)
            .scale(self.d)
            .add(dir.cross(self.normal).scale(other.d))
            .scale(1.0 / (len * len));
        Some((p, dir.scale(1.0 / len)))
    }

    /// All intersection points of this plane with the edges of `prism`.
    ///
    /// The paper caps these at 4 per bounding plane; a plane can cross at
    /// most 6 edges of a box in general, but the BQS planes (axis-anchored)
    /// cross at most 4. We return whatever exists; callers treat the result
    /// as significant points.
    pub fn intersect_prism_edges(&self, prism: &Prism) -> Vec<Point3> {
        let corners = prism.corners();
        let mut out: Vec<Point3> = Vec::with_capacity(6);
        for (i, j) in Prism::EDGES {
            if let Some(p) = self.intersect_segment(corners[i], corners[j]) {
                // Dedup corner hits shared by adjacent edges.
                if !out.iter().any(|q| q.distance(p) < 1e-9) {
                    out.push(p);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_from_points_distance() {
        // z = 1 plane.
        let p = Plane::from_points(
            Point3::new(0.0, 0.0, 1.0),
            Point3::new(1.0, 0.0, 1.0),
            Point3::new(0.0, 1.0, 1.0),
        )
        .unwrap();
        assert!((p.distance(Point3::new(5.0, 5.0, 3.0)) - 2.0).abs() < 1e-12);
        assert!(p.distance(Point3::new(-4.0, 2.0, 1.0)) < 1e-12);
    }

    #[test]
    fn collinear_points_give_no_plane() {
        assert!(Plane::from_points(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 1.0),
            Point3::new(2.0, 2.0, 2.0),
        )
        .is_none());
    }

    #[test]
    fn vertical_plane_contains_z_axis() {
        for theta in [0.0, 0.5, 1.2, -2.0] {
            let p = Plane::vertical_through_z(theta);
            assert!(p.distance(Point3::new(0.0, 0.0, 5.0)) < 1e-12);
            assert!(p.distance(Point3::new(0.0, 0.0, -3.0)) < 1e-12);
            // The trace direction lies in the plane.
            let trace = Point3::new(theta.cos(), theta.sin(), 0.0);
            assert!(p.distance(trace) < 1e-12);
        }
    }

    #[test]
    fn segment_intersection() {
        let p = Plane::from_normal_and_point(Point3::new(0.0, 0.0, 1.0), Point3::ORIGIN).unwrap(); // z = 0
        let hit = p
            .intersect_segment(Point3::new(0.0, 0.0, -1.0), Point3::new(0.0, 0.0, 3.0))
            .unwrap();
        assert!(hit.distance(Point3::ORIGIN) < 1e-12);
        // Same side → no intersection.
        assert!(p
            .intersect_segment(Point3::new(0.0, 0.0, 1.0), Point3::new(0.0, 0.0, 3.0))
            .is_none());
        // Endpoint on plane.
        assert!(p
            .intersect_segment(Point3::new(1.0, 1.0, 0.0), Point3::new(0.0, 0.0, 3.0))
            .is_some());
    }

    #[test]
    fn plane_prism_intersection_points_are_on_both() {
        let prism = Prism::from_corners(Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 2.0, 2.0));
        // Diagonal plane x + y + z = 3 cuts through the box.
        let plane =
            Plane::from_normal_and_point(Point3::new(1.0, 1.0, 1.0), Point3::new(1.0, 1.0, 1.0))
                .unwrap();
        let pts = plane.intersect_prism_edges(&prism);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(plane.distance(*p) < 1e-9, "{p:?} not on plane");
            assert!(prism.contains(*p), "{p:?} not in prism");
        }
        // x+y+z=3 cuts a hexagon in the unit-2 cube.
        assert_eq!(pts.len(), 6);
    }

    #[test]
    fn plane_missing_prism() {
        let prism = Prism::from_corners(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0));
        let plane =
            Plane::from_normal_and_point(Point3::new(0.0, 0.0, 1.0), Point3::new(0.0, 0.0, 5.0))
                .unwrap(); // z = 5
        assert!(plane.intersect_prism_edges(&prism).is_empty());
    }
}
