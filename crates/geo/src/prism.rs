//! Axis-aligned 3-D boxes ("bounding right rectangular prisms", paper §V-G).

use crate::line::Line3;
use crate::point::Point3;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangular prism; the 3-D analogue of [`crate::Rect`]
/// used by the 3-D BQS to bound the buffered points of one octant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prism {
    /// Smallest corner.
    pub min: Point3,
    /// Largest corner.
    pub max: Point3,
}

impl Prism {
    /// A prism containing exactly one point.
    #[inline]
    pub const fn from_point(p: Point3) -> Prism {
        Prism { min: p, max: p }
    }

    /// Builds a prism from two opposite corners in any order.
    #[inline]
    pub fn from_corners(a: Point3, b: Point3) -> Prism {
        Prism {
            min: Point3::new(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z)),
            max: Point3::new(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z)),
        }
    }

    /// Minimum bounding prism of a point set; `None` when empty.
    pub fn bounding(points: impl IntoIterator<Item = Point3>) -> Option<Prism> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Prism::from_point(first);
        for p in it {
            b.expand(p);
        }
        Some(b)
    }

    /// Grows the prism to cover `p`.
    #[inline]
    pub fn expand(&mut self, p: Point3) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.min.z = self.min.z.min(p.z);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
        self.max.z = self.max.z.max(p.z);
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The eight corners; index bit 0 selects x (0 = min), bit 1 selects y,
    /// bit 2 selects z.
    pub fn corners(&self) -> [Point3; 8] {
        let mut out = [Point3::ORIGIN; 8];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Point3::new(
                if i & 1 == 0 { self.min.x } else { self.max.x },
                if i & 2 == 0 { self.min.y } else { self.max.y },
                if i & 4 == 0 { self.min.z } else { self.max.z },
            );
        }
        out
    }

    /// The twelve edges as corner-index pairs into [`Prism::corners`].
    pub const EDGES: [(usize, usize); 12] = [
        (0, 1),
        (2, 3),
        (4, 5),
        (6, 7), // x-aligned
        (0, 2),
        (1, 3),
        (4, 6),
        (5, 7), // y-aligned
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7), // z-aligned
    ];

    /// Corner farthest from `origin`.
    pub fn farthest_corner_to(&self, origin: Point3) -> Point3 {
        let mut best = self.min;
        let mut best_d = origin.distance_sq(best);
        for c in self.corners().into_iter().skip(1) {
            let d = origin.distance_sq(c);
            if d > best_d {
                best = c;
                best_d = d;
            }
        }
        best
    }

    /// Corner nearest to `origin`.
    pub fn nearest_corner_to(&self, origin: Point3) -> Point3 {
        let mut best = self.min;
        let mut best_d = origin.distance_sq(best);
        for c in self.corners().into_iter().skip(1) {
            let d = origin.distance_sq(c);
            if d < best_d {
                best = c;
                best_d = d;
            }
        }
        best
    }

    /// Maximum distance from any corner to a 3-D line — a coarse upper bound
    /// on the deviation of any contained point (3-D analogue of Theorem 5.2's
    /// upper bound).
    pub fn max_corner_distance(&self, line: Line3) -> f64 {
        self.corners()
            .into_iter()
            .map(|c| line.distance_to(c))
            .fold(0.0, f64::max)
    }

    /// Clips an infinite line `p + t·dir` against the prism (3-D slab
    /// method). Returns the entry and exit points, or `None` when the line
    /// misses. Degenerate (point-thick) prisms are handled with an
    /// ulp-scale overlap allowance.
    pub fn clip_line(&self, p: Point3, dir: Point3) -> Option<(Point3, Point3)> {
        let mut t_min = f64::NEG_INFINITY;
        let mut t_max = f64::INFINITY;
        for (o, d, lo, hi) in [
            (p.x, dir.x, self.min.x, self.max.x),
            (p.y, dir.y, self.min.y, self.max.y),
            (p.z, dir.z, self.min.z, self.max.z),
        ] {
            if d.abs() < 1e-15 {
                if o < lo - 1e-9 || o > hi + 1e-9 {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (t0, t1) = {
                    let a = (lo - o) * inv;
                    let b = (hi - o) * inv;
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                };
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                if t_min > t_max + 1e-12 * t_min.abs().max(1.0) {
                    return None;
                }
            }
        }
        if !t_min.is_finite() || !t_max.is_finite() {
            return None;
        }
        let at = |t: f64| p.add(dir.scale(t));
        Some((at(t_min), at(t_max.max(t_min))))
    }

    /// Volume (zero when degenerate).
    #[inline]
    pub fn volume(&self) -> f64 {
        (self.max.x - self.min.x) * (self.max.y - self.min.y) * (self.max.z - self.min.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prism() -> Prism {
        Prism::from_corners(Point3::new(1.0, 2.0, 3.0), Point3::new(4.0, 6.0, 8.0))
    }

    #[test]
    fn corners_cover_extremes() {
        let p = prism();
        let cs = p.corners();
        assert!(cs.contains(&p.min));
        assert!(cs.contains(&p.max));
        assert_eq!(cs.len(), 8);
        for c in cs {
            assert!(p.contains(c));
        }
    }

    #[test]
    fn edges_have_unit_axis_direction() {
        let p = prism();
        let cs = p.corners();
        for (a, b) in Prism::EDGES {
            let d = cs[b].sub(cs[a]);
            let nonzero = (d.x != 0.0) as u8 + (d.y != 0.0) as u8 + (d.z != 0.0) as u8;
            assert_eq!(nonzero, 1, "edge ({a},{b}) must be axis-aligned");
        }
    }

    #[test]
    fn bounding_and_expand() {
        let pts = [
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(-1.0, 5.0, 2.0),
            Point3::new(3.0, -2.0, 7.0),
        ];
        let b = Prism::bounding(pts).unwrap();
        assert_eq!(b.min, Point3::new(-1.0, -2.0, 0.0));
        assert_eq!(b.max, Point3::new(3.0, 5.0, 7.0));
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(Prism::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn nearest_farthest_corner() {
        let p = prism();
        assert_eq!(p.nearest_corner_to(Point3::ORIGIN), p.min);
        assert_eq!(p.farthest_corner_to(Point3::ORIGIN), p.max);
    }

    #[test]
    fn max_corner_distance_bounds_content() {
        let p = prism();
        let line = Line3::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0));
        let bound = p.max_corner_distance(line);
        // Sample grid points inside, all must be within the corner bound.
        for i in 0..=4 {
            for j in 0..=4 {
                for k in 0..=4 {
                    let q = Point3::new(
                        p.min.x + (p.max.x - p.min.x) * i as f64 / 4.0,
                        p.min.y + (p.max.y - p.min.y) * j as f64 / 4.0,
                        p.min.z + (p.max.z - p.min.z) * k as f64 / 4.0,
                    );
                    assert!(line.distance_to(q) <= bound + 1e-9);
                }
            }
        }
    }

    #[test]
    fn volume() {
        assert_eq!(prism().volume(), 3.0 * 4.0 * 5.0);
        assert_eq!(Prism::from_point(Point3::ORIGIN).volume(), 0.0);
    }
}
