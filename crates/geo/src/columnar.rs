//! A structure-of-arrays batch of timed points: timestamps, x and y as
//! separate contiguous runs.
//!
//! The row representation (`Vec<TimedPoint>`) is what compressors and
//! sinks speak, but the hot decode/validate/submit path of the ingest
//! server wants columns: validating a frame's timestamps is then one
//! linear pass over a contiguous `f64` run (no stride, no struct field
//! loads), and the tlog codec can read each field's run without
//! per-point virtual dispatch. [`ColumnarBatch`] is that shape — a thin
//! SoA mirror of `&[TimedPoint]` with cheap conversion in both
//! directions.
//!
//! The three columns always have equal length; every mutator preserves
//! that invariant.

use crate::point::TimedPoint;

/// A batch of timed points in columnar (structure-of-arrays) form.
///
/// ```
/// use bqs_geo::{ColumnarBatch, TimedPoint};
///
/// let rows: Vec<TimedPoint> =
///     (0..4).map(|i| TimedPoint::new(i as f64, -(i as f64), i as f64 * 10.0)).collect();
/// let batch = ColumnarBatch::from_points(&rows);
/// assert_eq!(batch.len(), 4);
/// assert_eq!(batch.t, vec![0.0, 10.0, 20.0, 30.0]);
/// assert_eq!(batch.to_points(), rows);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnarBatch {
    /// The x coordinates, one per point.
    pub x: Vec<f64>,
    /// The y coordinates, one per point.
    pub y: Vec<f64>,
    /// The timestamps, one per point.
    pub t: Vec<f64>,
}

impl ColumnarBatch {
    /// An empty batch.
    pub fn new() -> ColumnarBatch {
        ColumnarBatch::default()
    }

    /// An empty batch with room for `capacity` points per column.
    pub fn with_capacity(capacity: usize) -> ColumnarBatch {
        ColumnarBatch {
            x: Vec::with_capacity(capacity),
            y: Vec::with_capacity(capacity),
            t: Vec::with_capacity(capacity),
        }
    }

    /// Number of points in the batch.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// `true` when the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Empties all three columns, keeping their allocations — the reuse
    /// path of a per-connection scratch batch.
    pub fn clear(&mut self) {
        self.x.clear();
        self.y.clear();
        self.t.clear();
    }

    /// Appends one point.
    pub fn push(&mut self, p: TimedPoint) {
        self.x.push(p.pos.x);
        self.y.push(p.pos.y);
        self.t.push(p.t);
    }

    /// The `i`-th point, recomposed from the columns.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`, like indexing a slice.
    pub fn point(&self, i: usize) -> TimedPoint {
        TimedPoint::new(self.x[i], self.y[i], self.t[i])
    }

    /// Iterates the batch as rows, front to back.
    pub fn iter(&self) -> impl Iterator<Item = TimedPoint> + '_ {
        self.x
            .iter()
            .zip(&self.y)
            .zip(&self.t)
            .map(|((&x, &y), &t)| TimedPoint::new(x, y, t))
    }

    /// Builds a batch from a row slice.
    pub fn from_points(points: &[TimedPoint]) -> ColumnarBatch {
        let mut batch = ColumnarBatch::with_capacity(points.len());
        batch.extend_from_points(points);
        batch
    }

    /// Appends every point of a row slice.
    pub fn extend_from_points(&mut self, points: &[TimedPoint]) {
        self.x.reserve(points.len());
        self.y.reserve(points.len());
        self.t.reserve(points.len());
        for p in points {
            self.x.push(p.pos.x);
            self.y.push(p.pos.y);
            self.t.push(p.t);
        }
    }

    /// The batch as rows, in a fresh `Vec`.
    pub fn to_points(&self) -> Vec<TimedPoint> {
        self.iter().collect()
    }
}

impl FromIterator<TimedPoint> for ColumnarBatch {
    fn from_iter<I: IntoIterator<Item = TimedPoint>>(iter: I) -> ColumnarBatch {
        let mut batch = ColumnarBatch::new();
        for p in iter {
            batch.push(p);
        }
        batch
    }
}

impl Extend<TimedPoint> for ColumnarBatch {
    fn extend<I: IntoIterator<Item = TimedPoint>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| TimedPoint::new(i as f64 * 1.5, (i as f64).sin(), i as f64 * 3.0))
            .collect()
    }

    #[test]
    fn round_trips_rows_exactly() {
        let points = rows(17);
        let batch = ColumnarBatch::from_points(&points);
        assert_eq!(batch.len(), 17);
        assert!(!batch.is_empty());
        assert_eq!(batch.to_points(), points);
        assert_eq!(batch.point(3), points[3]);
        let collected: ColumnarBatch = points.iter().copied().collect();
        assert_eq!(collected, batch);
    }

    #[test]
    fn clear_keeps_capacity_for_reuse() {
        let mut batch = ColumnarBatch::from_points(&rows(100));
        let cap = batch.t.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.t.capacity(), cap);
        batch.extend(rows(3));
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn empty_batch_behaves() {
        let batch = ColumnarBatch::new();
        assert_eq!(batch.len(), 0);
        assert!(batch.is_empty());
        assert!(batch.to_points().is_empty());
        assert_eq!(batch.iter().count(), 0);
    }
}
