//! Point types: planar, 3-D, timestamped and geodetic.

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};
use std::ops::{Add, Sub};

/// A point in a planar metric coordinate frame (UTM easting/northing metres
/// after projection, or raw simulator metres).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point2 {
    /// The origin.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        (other - self).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        (other - self).norm_sq()
    }

    /// The point as a displacement from the origin.
    #[inline]
    pub fn to_vec(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Builds a point from a displacement vector.
    #[inline]
    pub fn from_vec(v: Vec2) -> Point2 {
        Point2::new(v.x, v.y)
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        self + (other - self) * t
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

/// A point in 3-D space. The `z` axis carries either altitude (metres) or a
/// scaled timestamp, depending on the error metric in use (paper §V-G).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
    /// Altitude in metres, or scaled time.
    pub z: f64,
}

impl Point3 {
    /// The origin.
    pub const ORIGIN: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point3) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_sq(self, other: Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Drops the z component.
    #[inline]
    pub fn xy(self) -> Point2 {
        Point2::new(self.x, self.y)
    }

    /// Dot product treating the points as displacement vectors.
    #[inline]
    pub fn dot(self, rhs: Point3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product treating the points as displacement vectors.
    #[inline]
    pub fn cross(self, rhs: Point3) -> Point3 {
        Point3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Component-wise subtraction (displacement from `rhs` to `self`).
    /// Named method rather than `impl Sub` to keep point-vs-displacement
    /// usage explicit at call sites.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }

    /// Component-wise addition.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }

    /// Scales all components.
    #[inline]
    pub fn scale(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Euclidean norm treating the point as a displacement vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// True when all coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

/// A planar point with a timestamp, the unit of work for the 2-D compressors.
///
/// Timestamps are seconds since an arbitrary epoch; only differences matter.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimedPoint {
    /// Position in the metric frame.
    pub pos: Point2,
    /// Seconds since the trace epoch.
    pub t: f64,
}

impl TimedPoint {
    /// Creates a timestamped point.
    #[inline]
    pub const fn new(x: f64, y: f64, t: f64) -> Self {
        TimedPoint {
            pos: Point2::new(x, y),
            t,
        }
    }

    /// Creates a timestamped point from an existing position.
    #[inline]
    pub const fn at(pos: Point2, t: f64) -> Self {
        TimedPoint { pos, t }
    }

    /// Average speed (m/s) travelling from `self` to `next`; `None` when the
    /// timestamps coincide.
    #[inline]
    pub fn speed_to(self, next: TimedPoint) -> Option<f64> {
        let dt = next.t - self.t;
        if dt <= 0.0 {
            None
        } else {
            Some(self.pos.distance(next.pos) / dt)
        }
    }
}

/// A raw GPS fix exactly as the paper defines a location point:
/// `⟨latitude, longitude, timestamp⟩` (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationPoint {
    /// Latitude in degrees, positive north.
    pub latitude: f64,
    /// Longitude in degrees, positive east.
    pub longitude: f64,
    /// Seconds since the trace epoch.
    pub timestamp: f64,
}

impl LocationPoint {
    /// Creates a location point.
    #[inline]
    pub const fn new(latitude: f64, longitude: f64, timestamp: f64) -> Self {
        LocationPoint {
            latitude,
            longitude,
            timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn point_vector_algebra() {
        let a = Point2::new(1.0, 1.0);
        let v = Vec2::new(2.0, 3.0);
        assert_eq!(a + v, Point2::new(3.0, 4.0));
        assert_eq!((a + v) - v, a);
        assert_eq!((a + v) - a, v);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn point3_cross_is_orthogonal() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(a.dot(c).abs() < 1e-12);
        assert!(b.dot(c).abs() < 1e-12);
    }

    #[test]
    fn point3_distance() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 3.0, 6.0);
        assert_eq!(a.distance(b), 7.0);
    }

    #[test]
    fn timed_point_speed() {
        let a = TimedPoint::new(0.0, 0.0, 0.0);
        let b = TimedPoint::new(30.0, 40.0, 10.0);
        assert_eq!(a.speed_to(b), Some(5.0));
        assert_eq!(a.speed_to(a), None); // dt == 0
        assert_eq!(b.speed_to(a), None); // dt < 0
    }

    // NOTE: the serde round-trip test is parked until the workspace builds
    // against the real serde (the offline build vendors a no-op derive
    // shim; see shims/serde). Equality semantics are still covered here.
    #[test]
    fn copy_and_equality_semantics() {
        let p = TimedPoint::new(1.5, -2.5, 99.0);
        let q = p;
        assert_eq!(p, q);
        assert_ne!(p, TimedPoint::new(1.5, -2.5, 98.0));
    }
}
