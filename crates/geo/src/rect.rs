//! Axis-aligned rectangles (the BQS bounding boxes).

use crate::line::Line2;
use crate::point::Point2;
use serde::{Deserialize, Serialize};

/// An axis-aligned, possibly degenerate rectangle.
///
/// Inside a BQS quadrant this is the minimum bounding rectangle of the
/// buffered points (paper §V-A step 2); its four vertices `c1..c4` are the
/// corner significant points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest x/y corner.
    pub min: Point2,
    /// Largest x/y corner.
    pub max: Point2,
}

impl Rect {
    /// A rectangle containing exactly one point.
    #[inline]
    pub const fn from_point(p: Point2) -> Rect {
        Rect { min: p, max: p }
    }

    /// Builds a rectangle from any two opposite corners.
    #[inline]
    pub fn from_corners(a: Point2, b: Point2) -> Rect {
        Rect {
            min: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Minimum bounding rectangle of a point set; `None` when empty.
    pub fn bounding(points: impl IntoIterator<Item = Point2>) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::from_point(first);
        for p in it {
            r.expand(p);
        }
        Some(r)
    }

    /// Grows the rectangle to cover `p`.
    #[inline]
    pub fn expand(&mut self, p: Point2) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grows the rectangle to cover another rectangle.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point2::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point2::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether the rectangles share any point (boundaries included).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area (zero for degenerate rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// The four corners in the paper's `c1, c2, c3, c4` order:
    /// counter-clockwise starting from `min` — `(min.x, min.y)`,
    /// `(max.x, min.y)`, `(max.x, max.y)`, `(min.x, max.y)`.
    #[inline]
    pub fn corners(&self) -> [Point2; 4] {
        [
            self.min,
            Point2::new(self.max.x, self.min.y),
            self.max,
            Point2::new(self.min.x, self.max.y),
        ]
    }

    /// Corner nearest to `origin` in Euclidean distance.
    #[inline]
    pub fn nearest_corner_to(&self, origin: Point2) -> Point2 {
        self.extreme_corner_to(origin, false)
    }

    /// Corner farthest from `origin` in Euclidean distance.
    #[inline]
    pub fn farthest_corner_to(&self, origin: Point2) -> Point2 {
        self.extreme_corner_to(origin, true)
    }

    fn extreme_corner_to(&self, origin: Point2, farthest: bool) -> Point2 {
        let mut best = self.min;
        let mut best_d = origin.distance_sq(best);
        for c in self.corners().into_iter().skip(1) {
            let d = origin.distance_sq(c);
            if (farthest && d > best_d) || (!farthest && d < best_d) {
                best = c;
                best_d = d;
            }
        }
        best
    }

    /// Distances from the four corners to a line, in corner order.
    #[inline]
    pub fn corner_distances(&self, line: Line2) -> [f64; 4] {
        let cs = self.corners();
        [
            line.distance_to(cs[0]),
            line.distance_to(cs[1]),
            line.distance_to(cs[2]),
            line.distance_to(cs[3]),
        ]
    }

    /// Intersections of the ray `origin + t·(cosθ, sinθ)`, `t ≥ 0`, with the
    /// rectangle boundary. Returns 0, 1 or 2 points ordered by `t`.
    ///
    /// Used to locate the significant points where a BQS angular bounding
    /// line crosses the bounding box.
    pub fn ray_intersections(&self, origin: Point2, theta: f64) -> RayHits {
        let dir_x = theta.cos();
        let dir_y = theta.sin();
        let mut hits = RayHits::default();

        // Slab method on [min, max] per axis, tracking entry/exit parameters.
        let mut t_min = 0.0f64;
        let mut t_max = f64::INFINITY;
        for (o, d, lo, hi) in [
            (origin.x, dir_x, self.min.x, self.max.x),
            (origin.y, dir_y, self.min.y, self.max.y),
        ] {
            if d.abs() < 1e-15 {
                if o < lo || o > hi {
                    return hits; // parallel and outside the slab
                }
            } else {
                let inv = 1.0 / d;
                let (t0, t1) = {
                    let a = (lo - o) * inv;
                    let b = (hi - o) * inv;
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                };
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                // Allow an ulp-scale overlap so rays grazing a corner or a
                // degenerate (zero-area) rectangle still report the hit.
                if t_min > t_max + 1e-12 * t_min.abs().max(1.0) {
                    return hits;
                }
            }
        }

        let t_max = t_max.max(t_min);
        let at = |t: f64| Point2::new(origin.x + t * dir_x, origin.y + t * dir_y);
        hits.push(at(t_min));
        if (t_max - t_min) > 1e-12 * t_min.abs().max(1.0) && t_max.is_finite() {
            hits.push(at(t_max));
        }
        hits
    }
}

/// Up to two ray/rectangle intersection points, ordered by ray parameter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RayHits {
    points: [Point2; 2],
    len: u8,
}

impl RayHits {
    #[inline]
    fn push(&mut self, p: Point2) {
        debug_assert!(self.len < 2);
        self.points[self.len as usize] = p;
        self.len += 1;
    }

    /// Number of intersection points (0–2).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the ray misses the rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The intersection points as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Point2] {
        &self.points[..self.len as usize]
    }

    /// Iterates over the intersection points.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = Point2> + '_ {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_rect() -> Rect {
        Rect::from_corners(Point2::new(1.0, 1.0), Point2::new(3.0, 2.0))
    }

    #[test]
    fn bounding_of_points() {
        let pts = [
            Point2::new(1.0, 5.0),
            Point2::new(-2.0, 3.0),
            Point2::new(4.0, -1.0),
        ];
        let r = Rect::bounding(pts).unwrap();
        assert_eq!(r.min, Point2::new(-2.0, -1.0));
        assert_eq!(r.max, Point2::new(4.0, 5.0));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn corners_order_is_ccw_from_min() {
        let r = unit_rect();
        let cs = r.corners();
        assert_eq!(cs[0], Point2::new(1.0, 1.0));
        assert_eq!(cs[1], Point2::new(3.0, 1.0));
        assert_eq!(cs[2], Point2::new(3.0, 2.0));
        assert_eq!(cs[3], Point2::new(1.0, 2.0));
    }

    #[test]
    fn contains_boundary_and_interior() {
        let r = unit_rect();
        assert!(r.contains(Point2::new(2.0, 1.5)));
        assert!(r.contains(Point2::new(1.0, 1.0)));
        assert!(r.contains(Point2::new(3.0, 2.0)));
        assert!(!r.contains(Point2::new(0.99, 1.5)));
        assert!(!r.contains(Point2::new(2.0, 2.01)));
    }

    #[test]
    fn nearest_farthest_corner_from_origin() {
        let r = unit_rect();
        assert_eq!(r.nearest_corner_to(Point2::ORIGIN), Point2::new(1.0, 1.0));
        assert_eq!(r.farthest_corner_to(Point2::ORIGIN), Point2::new(3.0, 2.0));
    }

    #[test]
    fn ray_through_rect_hits_twice() {
        let r = unit_rect();
        // Ray from origin at the angle of the rect centre crosses entry+exit.
        let theta = (1.5f64).atan2(2.0);
        let hits = r.ray_intersections(Point2::ORIGIN, theta);
        assert_eq!(hits.len(), 2);
        for p in hits.iter() {
            // Hits lie on the boundary.
            let on_x = (p.x - r.min.x).abs() < 1e-9 || (p.x - r.max.x).abs() < 1e-9;
            let on_y = (p.y - r.min.y).abs() < 1e-9 || (p.y - r.max.y).abs() < 1e-9;
            assert!(on_x || on_y, "{p:?} not on boundary");
            assert!(r.contains(Point2::new(
                p.x.clamp(r.min.x, r.max.x),
                p.y.clamp(r.min.y, r.max.y)
            )));
        }
    }

    #[test]
    fn ray_missing_rect() {
        let r = unit_rect();
        let hits = r.ray_intersections(Point2::ORIGIN, 170f64.to_radians());
        assert!(hits.is_empty());
    }

    #[test]
    fn ray_starting_inside_hits_once_at_exit_or_twice_with_t0_zero() {
        let r = unit_rect();
        let hits = r.ray_intersections(Point2::new(2.0, 1.5), 0.0);
        assert!(!hits.is_empty());
        let last = hits.as_slice()[hits.len() - 1];
        assert!((last.x - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rect_ray() {
        let r = Rect::from_point(Point2::new(1.0, 1.0));
        let hits = r.ray_intersections(Point2::ORIGIN, std::f64::consts::FRAC_PI_4);
        assert_eq!(hits.len(), 1);
        assert!((hits.as_slice()[0].x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn union_and_intersects() {
        let a = unit_rect();
        let b = Rect::from_corners(Point2::new(2.5, 1.5), Point2::new(5.0, 4.0));
        let c = Rect::from_corners(Point2::new(10.0, 10.0), Point2::new(11.0, 11.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&b);
        assert!(u.contains(a.min) && u.contains(b.max));
    }

    #[test]
    fn geometry_accessors() {
        let r = unit_rect();
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 1.0);
        assert_eq!(r.area(), 2.0);
        assert_eq!(r.center(), Point2::new(2.0, 1.5));
    }
}
