//! Planar vectors.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A two-dimensional vector with `f64` components, in metres unless stated
/// otherwise.
///
/// `Vec2` is the displacement counterpart of [`crate::Point2`]; subtracting two
/// points yields a `Vec2`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Easting component.
    pub x: f64,
    /// Northing component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector along +x.
    pub const UNIT_X: Vec2 = Vec2 { x: 1.0, y: 0.0 };

    /// Unit vector along +y.
    pub const UNIT_Y: Vec2 = Vec2 { x: 0.0, y: 1.0 };

    /// Builds the unit vector pointing at `angle` radians from the +x axis.
    #[inline]
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// 2-D cross product (the z component of the 3-D cross product).
    ///
    /// Positive when `rhs` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm; avoids the square root on hot paths.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Angle from the +x axis in `(-pi, pi]` radians.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Returns the vector scaled to unit length, or `None` for the zero
    /// vector (and anything short enough to be numerically zero).
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// The vector rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x.min(rhs.x), self.y.min(rhs.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x.max(rhs.x), self.y.max(rhs.y))
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross_of_orthogonal_units() {
        assert_eq!(Vec2::UNIT_X.dot(Vec2::UNIT_Y), 0.0);
        assert_eq!(Vec2::UNIT_X.cross(Vec2::UNIT_Y), 1.0);
        assert_eq!(Vec2::UNIT_Y.cross(Vec2::UNIT_X), -1.0);
    }

    #[test]
    fn norm_matches_hypot() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
    }

    #[test]
    fn from_angle_round_trips() {
        for deg in [-179, -90, -45, 0, 30, 90, 135, 180] {
            let a = (deg as f64).to_radians();
            let v = Vec2::from_angle(a);
            assert!((v.norm() - 1.0).abs() < 1e-12);
            // angle() returns (-pi, pi]; +/-180deg are the same direction.
            let diff = (v.angle() - a).abs();
            assert!(diff < 1e-12 || (diff - 2.0 * std::f64::consts::PI).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let v = Vec2::new(10.0, 0.0).normalized().unwrap();
        assert!((v.x - 1.0).abs() < 1e-15 && v.y == 0.0);
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        let v = Vec2::new(2.0, 1.0);
        let p = v.perp();
        assert_eq!(v.dot(p), 0.0);
        assert!(v.cross(p) > 0.0);
        assert_eq!(p, Vec2::new(-1.0, 2.0));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -4.0);
        assert_eq!(a + b, Vec2::new(4.0, -2.0));
        assert_eq!(a - b, Vec2::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -2.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn component_min_max() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(2.0, -3.0);
        assert_eq!(a.min(b), Vec2::new(1.0, -3.0));
        assert_eq!(a.max(b), Vec2::new(2.0, 5.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }
}
