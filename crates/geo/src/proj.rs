//! WGS-84 ↔ UTM projection.
//!
//! The BQS builds its virtual coordinate system on "the UTM (Universal
//! Transverse Mercator) projected x and y axes" (paper §V-A). This module
//! implements the projection from scratch — Karney-style Krüger series of
//! order 6, accurate to well under a millimetre inside a zone — so GPS fixes
//! (`⟨lat, lon, t⟩`) can be mapped into the metric frame the compressors
//! operate in, with no external geodesy dependency.

use crate::point::{LocationPoint, Point2, TimedPoint};
use crate::{GeoError, GeoResult};
use serde::{Deserialize, Serialize};

/// WGS-84 semi-major axis (metres).
pub const WGS84_A: f64 = 6_378_137.0;
/// WGS-84 flattening.
pub const WGS84_F: f64 = 1.0 / 298.257_223_563;
/// UTM scale factor at the central meridian.
pub const UTM_K0: f64 = 0.9996;
/// UTM false easting (metres).
pub const UTM_FALSE_EASTING: f64 = 500_000.0;
/// UTM false northing for the southern hemisphere (metres).
pub const UTM_FALSE_NORTHING_SOUTH: f64 = 10_000_000.0;

/// A UTM zone: longitudinal band 1–60 plus hemisphere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UtmZone {
    /// Zone number, 1–60.
    pub number: u8,
    /// True for the northern hemisphere.
    pub north: bool,
}

impl UtmZone {
    /// The zone containing a WGS-84 coordinate (ignoring the Norway/Svalbard
    /// exceptions, which the paper's field sites do not touch).
    pub fn for_wgs84(latitude: f64, longitude: f64) -> GeoResult<UtmZone> {
        validate_wgs84(latitude, longitude)?;
        let lon = normalize_lon(longitude);
        let number = (((lon + 180.0) / 6.0).floor() as i32).clamp(0, 59) as u8 + 1;
        Ok(UtmZone {
            number,
            north: latitude >= 0.0,
        })
    }

    /// Central meridian of the zone in degrees.
    #[inline]
    pub fn central_meridian_deg(self) -> f64 {
        f64::from(self.number) * 6.0 - 183.0
    }
}

/// A projected UTM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtmCoord {
    /// Easting in metres (false easting applied).
    pub easting: f64,
    /// Northing in metres (false northing applied in the south).
    pub northing: f64,
    /// Zone the coordinate is expressed in.
    pub zone: UtmZone,
}

impl UtmCoord {
    /// The coordinate as a planar point (easting = x, northing = y).
    #[inline]
    pub fn to_point(self) -> Point2 {
        Point2::new(self.easting, self.northing)
    }
}

fn normalize_lon(longitude: f64) -> f64 {
    let mut lon = (longitude + 180.0) % 360.0;
    if lon < 0.0 {
        lon += 360.0;
    }
    lon - 180.0
}

fn validate_wgs84(latitude: f64, longitude: f64) -> GeoResult<()> {
    if !latitude.is_finite() {
        return Err(GeoError::NonFiniteCoordinate { what: "latitude" });
    }
    if !longitude.is_finite() {
        return Err(GeoError::NonFiniteCoordinate { what: "longitude" });
    }
    if !(-80.0..=84.0).contains(&latitude) {
        return Err(GeoError::LatitudeOutOfRange { latitude });
    }
    Ok(())
}

/// Precomputed Krüger series coefficients (order 6) for WGS-84.
struct Kruger {
    /// Rectifying radius `A`.
    a_rect: f64,
    /// Forward series α₁..α₆.
    alpha: [f64; 6],
    /// Inverse series β₁..β₆.
    beta: [f64; 6],
}

impl Kruger {
    // The coefficients are polynomial in the third flattening n; constants
    // from Karney (2011), "Transverse Mercator with an accuracy of a few
    // nanometers".
    fn wgs84() -> &'static Kruger {
        use std::sync::OnceLock;
        static K: OnceLock<Kruger> = OnceLock::new();
        K.get_or_init(|| {
            let n = WGS84_F / (2.0 - WGS84_F);
            let n2 = n * n;
            let n3 = n2 * n;
            let n4 = n3 * n;
            let n5 = n4 * n;
            let n6 = n5 * n;
            let a_rect = WGS84_A / (1.0 + n) * (1.0 + n2 / 4.0 + n4 / 64.0 + n6 / 256.0);
            let alpha = [
                n / 2.0 - 2.0 / 3.0 * n2 + 5.0 / 16.0 * n3 + 41.0 / 180.0 * n4 - 127.0 / 288.0 * n5
                    + 7891.0 / 37800.0 * n6,
                13.0 / 48.0 * n2 - 3.0 / 5.0 * n3 + 557.0 / 1440.0 * n4 + 281.0 / 630.0 * n5
                    - 1_983_433.0 / 1_935_360.0 * n6,
                61.0 / 240.0 * n3 - 103.0 / 140.0 * n4
                    + 15_061.0 / 26_880.0 * n5
                    + 167_603.0 / 181_440.0 * n6,
                49_561.0 / 161_280.0 * n4 - 179.0 / 168.0 * n5 + 6_601_661.0 / 7_257_600.0 * n6,
                34_729.0 / 80_640.0 * n5 - 3_418_889.0 / 1_995_840.0 * n6,
                212_378_941.0 / 319_334_400.0 * n6,
            ];
            let beta = [
                n / 2.0 - 2.0 / 3.0 * n2 + 37.0 / 96.0 * n3 - 1.0 / 360.0 * n4 - 81.0 / 512.0 * n5
                    + 96_199.0 / 604_800.0 * n6,
                1.0 / 48.0 * n2 + 1.0 / 15.0 * n3 - 437.0 / 1440.0 * n4 + 46.0 / 105.0 * n5
                    - 1_118_711.0 / 3_870_720.0 * n6,
                17.0 / 480.0 * n3 - 37.0 / 840.0 * n4 - 209.0 / 4480.0 * n5
                    + 5569.0 / 90_720.0 * n6,
                4397.0 / 161_280.0 * n4 - 11.0 / 504.0 * n5 - 830_251.0 / 7_257_600.0 * n6,
                4583.0 / 161_280.0 * n5 - 108_847.0 / 3_991_680.0 * n6,
                20_648_693.0 / 638_668_800.0 * n6,
            ];
            Kruger {
                a_rect,
                alpha,
                beta,
            }
        })
    }
}

/// Projects a WGS-84 coordinate into a specific UTM zone.
///
/// Projecting into a neighbouring zone is allowed (and is what a tracker
/// crossing a zone boundary needs to keep one contiguous frame); accuracy
/// degrades gracefully with distance from the central meridian.
pub fn utm_from_wgs84_zone(latitude: f64, longitude: f64, zone: UtmZone) -> GeoResult<UtmCoord> {
    validate_wgs84(latitude, longitude)?;
    let k = Kruger::wgs84();

    let phi = latitude.to_radians();
    let lam = normalize_lon(longitude - zone.central_meridian_deg()).to_radians();

    // Conformal latitude.
    let e = (WGS84_F * (2.0 - WGS84_F)).sqrt();
    let sin_phi = phi.sin();
    let t = sin_phi.tan_conformal(e);
    let xi_prime = t.atan2(lam.cos());
    let eta_prime = (lam.sin() / t.hypot(lam.cos())).asinh();

    let mut xi = xi_prime;
    let mut eta = eta_prime;
    for (j, a) in k.alpha.iter().enumerate() {
        let m = 2.0 * (j as f64 + 1.0);
        xi += a * (m * xi_prime).sin() * (m * eta_prime).cosh();
        eta += a * (m * xi_prime).cos() * (m * eta_prime).sinh();
    }

    let easting = UTM_K0 * k.a_rect * eta + UTM_FALSE_EASTING;
    let mut northing = UTM_K0 * k.a_rect * xi;
    if !zone.north {
        northing += UTM_FALSE_NORTHING_SOUTH;
    }
    Ok(UtmCoord {
        easting,
        northing,
        zone,
    })
}

/// Projects a WGS-84 coordinate into its natural UTM zone.
pub fn utm_from_wgs84(latitude: f64, longitude: f64) -> GeoResult<UtmCoord> {
    let zone = UtmZone::for_wgs84(latitude, longitude)?;
    utm_from_wgs84_zone(latitude, longitude, zone)
}

/// Inverse projection: UTM → WGS-84 `(latitude, longitude)` in degrees.
pub fn wgs84_from_utm(coord: UtmCoord) -> GeoResult<(f64, f64)> {
    if !coord.easting.is_finite() || !coord.northing.is_finite() {
        return Err(GeoError::NonFiniteCoordinate {
            what: "utm coordinate",
        });
    }
    let k = Kruger::wgs84();

    let mut northing = coord.northing;
    if !coord.zone.north {
        northing -= UTM_FALSE_NORTHING_SOUTH;
    }
    let xi = northing / (UTM_K0 * k.a_rect);
    let eta = (coord.easting - UTM_FALSE_EASTING) / (UTM_K0 * k.a_rect);

    let mut xi_prime = xi;
    let mut eta_prime = eta;
    for (j, b) in k.beta.iter().enumerate() {
        let m = 2.0 * (j as f64 + 1.0);
        xi_prime -= b * (m * xi).sin() * (m * eta).cosh();
        eta_prime -= b * (m * xi).cos() * (m * eta).sinh();
    }

    // τ′ = tan(χ), the conformal tangent recovered from the series.
    let tau_prime = xi_prime.sin() / eta_prime.sinh().hypot_with(xi_prime.cos());

    // Newton-iterate Karney's relation τ′(τ) = τ√(1+σ²) − σ√(1+τ²) to
    // recover τ = tan(φ). This mirrors GeographicLib's `Math::tauf`.
    let e = (WGS84_F * (2.0 - WGS84_F)).sqrt();
    let e2m = 1.0 - e * e;
    let hyp = |x: f64| (1.0 + x * x).sqrt();
    let taupf = |tau: f64| {
        let sigma = (e * (e * tau / hyp(tau)).atanh()).sinh();
        tau * hyp(sigma) - sigma * hyp(tau)
    };
    let mut tau = tau_prime / e2m; // first-order seed
    for _ in 0..8 {
        let taupa = taupf(tau);
        let dtau = (tau_prime - taupa) * (1.0 + e2m * tau * tau) / (e2m * hyp(tau) * hyp(taupa));
        tau += dtau;
        if dtau.abs() < 1e-14 * (1.0 + tau.abs()) {
            break;
        }
    }
    let phi = tau.atan();

    let lam = eta_prime.sinh().atan2(xi_prime.cos());
    let lon = normalize_lon(lam.to_degrees() + coord.zone.central_meridian_deg());
    Ok((phi.to_degrees(), lon))
}

/// Small helper trait to keep the series code readable.
trait ConformalExt {
    fn tan_conformal(self, e: f64) -> f64;
    fn hypot_with(self, other: f64) -> f64;
}

impl ConformalExt for f64 {
    /// τ' = conformal tangent from sin(φ) (Karney's τ′ construction).
    #[inline]
    fn tan_conformal(self, e: f64) -> f64 {
        // self is sin(phi)
        let sin_phi = self;
        let cos_phi = (1.0 - sin_phi * sin_phi).max(0.0).sqrt();
        if cos_phi == 0.0 {
            return if sin_phi >= 0.0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
        }
        let tau = sin_phi / cos_phi;
        let sigma = (e * (e * sin_phi).atanh()).sinh();
        tau * (1.0 + sigma * sigma).sqrt() - sigma * (1.0 + tau * tau).sqrt()
    }

    #[inline]
    fn hypot_with(self, other: f64) -> f64 {
        self.hypot(other)
    }
}

/// A streaming projector that fixes the zone on the first point so an entire
/// trace shares one planar frame, then projects each GPS fix to a
/// [`TimedPoint`].
#[derive(Debug, Default, Clone)]
pub struct TraceProjector {
    zone: Option<UtmZone>,
}

impl TraceProjector {
    /// Creates a projector with no zone fixed yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a projector pinned to a given zone.
    pub fn with_zone(zone: UtmZone) -> Self {
        TraceProjector { zone: Some(zone) }
    }

    /// The zone fixed so far, if any.
    pub fn zone(&self) -> Option<UtmZone> {
        self.zone
    }

    /// Projects one GPS fix, fixing the zone on first use.
    pub fn project(&mut self, fix: LocationPoint) -> GeoResult<TimedPoint> {
        let zone = match self.zone {
            Some(z) => z,
            None => {
                let z = UtmZone::for_wgs84(fix.latitude, fix.longitude)?;
                self.zone = Some(z);
                z
            }
        };
        let utm = utm_from_wgs84_zone(fix.latitude, fix.longitude, zone)?;
        Ok(TimedPoint::at(utm.to_point(), fix.timestamp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test coordinates spanning hemispheres and zone offsets, including the
    /// paper's Brisbane field site.
    const REFERENCES: &[(f64, f64, u8, bool)] = &[
        // lat, lon, zone, north
        (-27.4698, 153.0251, 56, false), // Brisbane (field site)
        (51.4778, -0.0014, 30, true),    // Greenwich
        (40.7128, -74.0060, 18, true),   // New York
        (-33.8688, 151.2093, 56, false), // Sydney
        (0.0, 0.0, 31, true),            // equator/prime meridian
        (63.5, 10.4, 32, true),          // high latitude
    ];

    /// Independent transverse-Mercator forward projection using the classic
    /// Snyder/USGS series (Map Projections — A Working Manual, eqs. 8-9..8-15).
    /// A completely different derivation from the Krüger series used by the
    /// implementation, so agreement validates both.
    fn snyder_utm(lat: f64, lon: f64, zone: UtmZone) -> (f64, f64) {
        let a = WGS84_A;
        let f = WGS84_F;
        let e2 = f * (2.0 - f);
        let ep2 = e2 / (1.0 - e2);
        let phi = lat.to_radians();
        let lam = (lon - zone.central_meridian_deg()).to_radians();

        let n = a / (1.0 - e2 * phi.sin().powi(2)).sqrt();
        let t = phi.tan().powi(2);
        let c = ep2 * phi.cos().powi(2);
        let big_a = lam * phi.cos();

        // Meridional arc M (Snyder 3-21).
        let m = a
            * ((1.0 - e2 / 4.0 - 3.0 * e2 * e2 / 64.0 - 5.0 * e2 * e2 * e2 / 256.0) * phi
                - (3.0 * e2 / 8.0 + 3.0 * e2 * e2 / 32.0 + 45.0 * e2 * e2 * e2 / 1024.0)
                    * (2.0 * phi).sin()
                + (15.0 * e2 * e2 / 256.0 + 45.0 * e2 * e2 * e2 / 1024.0) * (4.0 * phi).sin()
                - (35.0 * e2 * e2 * e2 / 3072.0) * (6.0 * phi).sin());

        let easting = UTM_K0
            * n
            * (big_a
                + (1.0 - t + c) * big_a.powi(3) / 6.0
                + (5.0 - 18.0 * t + t * t + 72.0 * c - 58.0 * ep2) * big_a.powi(5) / 120.0)
            + UTM_FALSE_EASTING;
        let mut northing = UTM_K0
            * (m + n
                * phi.tan()
                * (big_a * big_a / 2.0
                    + (5.0 - t + 9.0 * c + 4.0 * c * c) * big_a.powi(4) / 24.0
                    + (61.0 - 58.0 * t + t * t + 600.0 * c - 330.0 * ep2) * big_a.powi(6) / 720.0));
        if !zone.north {
            northing += UTM_FALSE_NORTHING_SOUTH;
        }
        (easting, northing)
    }

    #[test]
    fn agrees_with_independent_snyder_series_to_millimetres() {
        for &(lat, lon, zone, north) in REFERENCES {
            let utm = utm_from_wgs84(lat, lon).unwrap();
            assert_eq!(utm.zone.number, zone, "zone for ({lat}, {lon})");
            assert_eq!(utm.zone.north, north);
            let (e, n) = snyder_utm(lat, lon, utm.zone);
            assert!(
                (utm.easting - e).abs() < 2e-3,
                "easting for ({lat}, {lon}): kruger {}, snyder {e}",
                utm.easting
            );
            assert!(
                (utm.northing - n).abs() < 2e-3,
                "northing for ({lat}, {lon}): kruger {}, snyder {n}",
                utm.northing
            );
        }
    }

    #[test]
    fn known_anchor_values() {
        // (0°, 0°) is 3° west of zone 31's central meridian on the equator —
        // easting ≈ 166,021.44 m is a standard published UTM value.
        let utm = utm_from_wgs84(0.0, 0.0).unwrap();
        assert!((utm.easting - 166_021.44).abs() < 0.05, "{}", utm.easting);
        assert!(utm.northing.abs() < 1e-6);
        // A point on a central meridian projects to exactly 500 km easting,
        // and northing = k0 × meridional arc.
        let utm = utm_from_wgs84(45.0, -87.0).unwrap(); // zone 16 CM
        assert!((utm.easting - UTM_FALSE_EASTING).abs() < 1e-6);
        let expected = UTM_K0 * meridian_arc_m(45.0);
        assert!((utm.northing - expected).abs() < 1e-3, "{}", utm.northing);
    }

    #[test]
    fn round_trip_accuracy() {
        for &(lat, lon, ..) in REFERENCES {
            let utm = utm_from_wgs84(lat, lon).unwrap();
            let (lat2, lon2) = wgs84_from_utm(utm).unwrap();
            assert!((lat - lat2).abs() < 1e-8, "lat {lat} → {lat2}");
            assert!((lon - lon2).abs() < 1e-8, "lon {lon} → {lon2}");
        }
    }

    #[test]
    fn distances_locally_preserved() {
        // Two points ~1 km apart on the same meridian near the Brisbane
        // field site. The ellipsoidal ground distance is the meridional-arc
        // difference; near a central meridian the projected distance must be
        // that distance scaled by ~k0 = 0.9996 (scale grows quadratically
        // with easting offset; ~2.5 km offset here is negligible).
        let (lat1, lat2, lon) = (-27.4698, -27.4788, 153.0251);
        let a = utm_from_wgs84(lat1, lon).unwrap().to_point();
        let b = utm_from_wgs84(lat2, lon).unwrap().to_point();
        let d = a.distance(b);
        let arc = meridian_arc_m(lat2) - meridian_arc_m(lat1);
        let scale = d / arc.abs();
        assert!(
            (scale - UTM_K0).abs() < 1e-5,
            "projected {d} m vs meridian arc {arc} m (scale {scale})"
        );
    }

    /// Meridional arc length from the equator (Snyder 3-21), used as an
    /// independent ellipsoidal ground-distance reference along a meridian.
    fn meridian_arc_m(lat: f64) -> f64 {
        let e2 = WGS84_F * (2.0 - WGS84_F);
        let phi = lat.to_radians();
        WGS84_A
            * ((1.0 - e2 / 4.0 - 3.0 * e2 * e2 / 64.0 - 5.0 * e2 * e2 * e2 / 256.0) * phi
                - (3.0 * e2 / 8.0 + 3.0 * e2 * e2 / 32.0 + 45.0 * e2 * e2 * e2 / 1024.0)
                    * (2.0 * phi).sin()
                + (15.0 * e2 * e2 / 256.0 + 45.0 * e2 * e2 * e2 / 1024.0) * (4.0 * phi).sin()
                - (35.0 * e2 * e2 * e2 / 3072.0) * (6.0 * phi).sin())
    }

    #[test]
    fn zone_boundaries() {
        assert_eq!(UtmZone::for_wgs84(0.0, -180.0).unwrap().number, 1);
        assert_eq!(UtmZone::for_wgs84(0.0, 179.999).unwrap().number, 60);
        assert_eq!(UtmZone::for_wgs84(0.0, 0.0).unwrap().number, 31);
        assert_eq!(UtmZone::for_wgs84(0.0, -0.001).unwrap().number, 30);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(matches!(
            utm_from_wgs84(85.0, 0.0),
            Err(GeoError::LatitudeOutOfRange { .. })
        ));
        assert!(matches!(
            utm_from_wgs84(f64::NAN, 0.0),
            Err(GeoError::NonFiniteCoordinate { .. })
        ));
    }

    #[test]
    fn projector_fixes_zone_on_first_point() {
        let mut proj = TraceProjector::new();
        let a = proj
            .project(LocationPoint::new(-27.4698, 153.0251, 0.0))
            .unwrap();
        assert_eq!(proj.zone().unwrap().number, 56);
        // A later fix just across the 54/55 boundary still projects in zone 56.
        let b = proj
            .project(LocationPoint::new(-27.4698, 153.1, 60.0))
            .unwrap();
        assert_eq!(proj.zone().unwrap().number, 56);
        assert!(b.pos.x > a.pos.x);
        assert_eq!(b.t, 60.0);
    }

    #[test]
    fn longitude_wraps() {
        let a = utm_from_wgs84(10.0, 190.0).unwrap(); // == -170°
        let b = utm_from_wgs84(10.0, -170.0).unwrap();
        assert_eq!(a.zone, b.zone);
        assert!((a.easting - b.easting).abs() < 1e-6);
    }
}
