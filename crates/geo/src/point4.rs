//! 4-D points, lines and hyperboxes — the substrate for the 4-D BQS the
//! paper proposes as future work (§VII: "Exploring the potential of a 4-D
//! BQS"), where a sample is `⟨x, y, altitude, scaled time⟩`.

use serde::{Deserialize, Serialize};

/// A point in 4-space: planar position, altitude, and (scaled) time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point4 {
    /// Easting, metres.
    pub x: f64,
    /// Northing, metres.
    pub y: f64,
    /// Altitude, metres.
    pub z: f64,
    /// Fourth axis — usually timestamp × (metres per second of error
    /// budget).
    pub w: f64,
}

impl Point4 {
    /// The origin.
    pub const ORIGIN: Point4 = Point4 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
        w: 0.0,
    };

    /// Creates a point from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64, w: f64) -> Point4 {
        Point4 { x, y, z, w }
    }

    /// Component-wise subtraction. Named method rather than `impl Sub` to
    /// keep point-vs-displacement usage explicit at call sites.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn sub(self, rhs: Point4) -> Point4 {
        Point4::new(
            self.x - rhs.x,
            self.y - rhs.y,
            self.z - rhs.z,
            self.w - rhs.w,
        )
    }

    /// Component-wise addition.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, rhs: Point4) -> Point4 {
        Point4::new(
            self.x + rhs.x,
            self.y + rhs.y,
            self.z + rhs.z,
            self.w + rhs.w,
        )
    }

    /// Scales all components.
    #[inline]
    pub fn scale(self, s: f64) -> Point4 {
        Point4::new(self.x * s, self.y * s, self.z * s, self.w * s)
    }

    /// Dot product (as displacement vectors).
    #[inline]
    pub fn dot(self, rhs: Point4) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z + self.w * rhs.w
    }

    /// Euclidean norm (as a displacement vector).
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Point4) -> f64 {
        self.sub(rhs).norm()
    }

    /// The component by axis index 0–3.
    #[inline]
    pub fn component(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => self.w,
        }
    }
}

/// An infinite line in 4-space through two anchors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Line4 {
    /// First anchor.
    pub a: Point4,
    /// Second anchor.
    pub b: Point4,
}

impl Line4 {
    /// Creates a 4-D line.
    #[inline]
    pub const fn new(a: Point4, b: Point4) -> Line4 {
        Line4 { a, b }
    }

    /// Distance from `p` to this line (point distance to `a` when the
    /// anchors coincide). Computed via the projection residual — no cross
    /// product exists in 4-D.
    pub fn distance_to(self, p: Point4) -> f64 {
        let d = self.b.sub(self.a);
        let len_sq = d.dot(d);
        if len_sq <= f64::EPSILON * f64::EPSILON {
            return p.distance(self.a);
        }
        let v = p.sub(self.a);
        let t = v.dot(d) / len_sq;
        v.sub(d.scale(t)).norm()
    }
}

/// An axis-aligned 4-D box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Box4 {
    /// Smallest corner.
    pub min: Point4,
    /// Largest corner.
    pub max: Point4,
}

impl Box4 {
    /// A box containing exactly one point.
    #[inline]
    pub const fn from_point(p: Point4) -> Box4 {
        Box4 { min: p, max: p }
    }

    /// Grows the box to cover `p`.
    pub fn expand(&mut self, p: Point4) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.min.z = self.min.z.min(p.z);
        self.min.w = self.min.w.min(p.w);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
        self.max.z = self.max.z.max(p.z);
        self.max.w = self.max.w.max(p.w);
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point4) -> bool {
        (0..4).all(|axis| {
            let v = p.component(axis);
            v >= self.min.component(axis) && v <= self.max.component(axis)
        })
    }

    /// The sixteen corners; bit `k` of the index selects axis `k`'s max.
    pub fn corners(&self) -> [Point4; 16] {
        let mut out = [Point4::ORIGIN; 16];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Point4::new(
                if i & 1 == 0 { self.min.x } else { self.max.x },
                if i & 2 == 0 { self.min.y } else { self.max.y },
                if i & 4 == 0 { self.min.z } else { self.max.z },
                if i & 8 == 0 { self.min.w } else { self.max.w },
            );
        }
        out
    }

    /// Minimum and maximum corner distance to a 4-D line — sound deviation
    /// bounds for every contained point (the Theorem 5.2 analogue; distance
    /// to a line is convex, so the max over a box is attained at a corner).
    pub fn corner_distance_bounds(&self, line: Line4) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for c in self.corners() {
            let d = line.distance_to(c);
            lo = lo.min(d);
            hi = hi.max(d);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line4_distance_reduces_to_3d() {
        // Line along x; point offset in y/z: classic 3-4-5.
        let l = Line4::new(Point4::ORIGIN, Point4::new(10.0, 0.0, 0.0, 0.0));
        assert!((l.distance_to(Point4::new(5.0, 3.0, 4.0, 0.0)) - 5.0).abs() < 1e-12);
        assert_eq!(l.distance_to(Point4::new(7.0, 0.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn line4_degenerate() {
        let p = Point4::new(1.0, 1.0, 1.0, 1.0);
        let l = Line4::new(p, p);
        assert_eq!(l.distance_to(Point4::new(1.0, 1.0, 1.0, 3.0)), 2.0);
    }

    #[test]
    fn line4_uses_all_four_axes() {
        let l = Line4::new(Point4::ORIGIN, Point4::new(1.0, 0.0, 0.0, 0.0));
        let d = l.distance_to(Point4::new(0.0, 1.0, 1.0, 1.0));
        assert!((d - 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn box4_corners_and_containment() {
        let mut b = Box4::from_point(Point4::new(0.0, 0.0, 0.0, 0.0));
        b.expand(Point4::new(1.0, 2.0, 3.0, 4.0));
        let cs = b.corners();
        assert_eq!(cs.len(), 16);
        for c in cs {
            assert!(b.contains(c));
        }
        assert!(b.contains(Point4::new(0.5, 1.0, 1.5, 2.0)));
        assert!(!b.contains(Point4::new(1.5, 1.0, 1.5, 2.0)));
    }

    #[test]
    fn corner_bounds_dominate_grid_samples() {
        let mut b = Box4::from_point(Point4::new(1.0, 2.0, 3.0, 4.0));
        b.expand(Point4::new(4.0, 5.0, 7.0, 6.0));
        let line = Line4::new(Point4::ORIGIN, Point4::new(1.0, 1.0, 1.0, 1.0));
        let (lo, hi) = b.corner_distance_bounds(line);
        assert!(lo <= hi);
        for i in 0..=3 {
            for j in 0..=3 {
                let p = Point4::new(
                    1.0 + 3.0 * i as f64 / 3.0,
                    2.0 + 3.0 * j as f64 / 3.0,
                    3.0 + 4.0 * (i as f64) / 3.0,
                    4.0 + 2.0 * (j as f64) / 3.0,
                );
                assert!(line.distance_to(p) <= hi + 1e-9);
            }
        }
    }
}
