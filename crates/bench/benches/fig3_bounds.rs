//! Fig. 3 bench: per-point cost of the traced BQS push (bounds computation
//! included) on the bat dataset, plus a one-shot print of the bounds-vs-
//! actual series the figure plots.

use bqs_core::stream::StreamCompressor;
use bqs_core::{BqsCompressor, BqsConfig};
use bqs_eval::experiments::{self, fig3};
use bqs_eval::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = experiments::bat_trace(Scale::Quick);
    let config = BqsConfig::new(5.0).unwrap();

    c.bench_function("fig3/bqs_push_traced_bat_5m", |b| {
        b.iter(|| {
            let mut bqs = BqsCompressor::new(config);
            let mut out = Vec::new();
            for p in &trace.points {
                black_box(bqs.push_traced(*p, &mut out));
            }
            bqs.finish(&mut out);
            out.len()
        })
    });

    let result = fig3::run(Scale::Quick);
    println!("{}", result.to_table());
}

criterion_group!(benches, bench);
criterion_main!(benches);
