//! Table I bench: empirical complexity scaling on the adversarial
//! (endlessly compressible) stream — FBQS stays O(n) while the
//! unconstrained-window BDP/BGD go quadratic.

use bqs_baselines::{BufferedDpCompressor, BufferedGreedyCompressor};
use bqs_core::stream::compress_all;
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_eval::experiments::table1::{self, adversarial_stream};
use bqs_eval::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let tolerance = 5.0;
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for n in [1_000usize, 4_000, 16_000] {
        let stream = adversarial_stream(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fbqs", n), &stream, |b, s| {
            b.iter(|| {
                let mut c = FastBqsCompressor::new(BqsConfig::new(tolerance).unwrap());
                compress_all(&mut c, s.iter().copied()).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("bdp_unbounded", n), &stream, |b, s| {
            b.iter(|| {
                let mut c = BufferedDpCompressor::new(tolerance, n.max(2));
                compress_all(&mut c, s.iter().copied()).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("bgd_unbounded", n), &stream, |b, s| {
            b.iter(|| {
                let mut c = BufferedGreedyCompressor::new(tolerance, n.max(1));
                compress_all(&mut c, s.iter().copied()).len()
            })
        });
    }
    group.finish();

    let result = table1::run(Scale::Quick);
    println!("{}", result.to_table());
}

criterion_group!(benches, bench);
criterion_main!(benches);
