//! Fig. 6 bench: the buffered BQS over both field datasets across the
//! paper's tolerance sweeps, plus the pruning-power tables.

use bqs_core::stream::compress_all_with_stats;
use bqs_core::{BqsCompressor, BqsConfig};
use bqs_eval::experiments::{self, fig6};
use bqs_eval::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let bat = experiments::bat_trace(Scale::Quick);
    let vehicle = experiments::vehicle_trace(Scale::Quick);

    let mut group = c.benchmark_group("fig6");
    group.sample_size(20);
    for (trace, tolerances) in [(&bat, [2.0, 10.0, 20.0]), (&vehicle, [5.0, 25.0, 50.0])] {
        for tol in tolerances {
            group.bench_with_input(
                BenchmarkId::new(format!("bqs_{}", trace.name), tol),
                &tol,
                |b, &tol| {
                    b.iter(|| {
                        let mut bqs = BqsCompressor::new(BqsConfig::new(tol).unwrap());
                        compress_all_with_stats(&mut bqs, trace.points.iter().copied())
                            .0
                            .len()
                    })
                },
            );
        }
    }
    group.finish();

    let result = fig6::run(Scale::Quick);
    println!("{}", result.bat.to_table());
    println!("{}", result.vehicle.to_table());
}

criterion_group!(benches, bench);
criterion_main!(benches);
