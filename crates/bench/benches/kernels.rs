//! Micro-benchmarks of the geometry kernels on the FBQS hot path: distance
//! computations, quadrant-bound evaluation, and structure insertion.

use bqs_core::metrics::DeviationMetric;
use bqs_core::quadrant::QuadrantBounds;
use bqs_core::BoundsMode;
use bqs_geo::{point_to_line_distance, point_to_segment_distance, Point2, Quadrant};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let a = Point2::new(0.0, 0.0);
    let b = Point2::new(812.0, -331.0);
    let p = Point2::new(410.0, 77.0);

    c.bench_function("kernels/point_to_line", |bch| {
        bch.iter(|| point_to_line_distance(black_box(p), black_box(a), black_box(b)))
    });
    c.bench_function("kernels/point_to_segment", |bch| {
        bch.iter(|| point_to_segment_distance(black_box(p), black_box(a), black_box(b)))
    });

    // A populated quadrant structure, evaluated against a moving chord —
    // this is the inner loop of every FBQS decision.
    let mut q = QuadrantBounds::new(Quadrant::Q1, Point2::new(120.0, 40.0));
    for i in 0..50 {
        let t = i as f64;
        q.insert(Point2::new(
            120.0 + t * 17.0,
            40.0 + (t * 0.7).sin().abs() * 30.0,
        ));
    }
    let end = Point2::new(1_000.0, 310.0);
    c.bench_function("kernels/quadrant_bounds_sound", |bch| {
        bch.iter(|| {
            q.deviation_bounds(
                black_box(end),
                DeviationMetric::PointToLine,
                BoundsMode::Sound,
            )
        })
    });
    c.bench_function("kernels/quadrant_bounds_paper_exact", |bch| {
        bch.iter(|| {
            q.deviation_bounds(
                black_box(end),
                DeviationMetric::PointToLine,
                BoundsMode::PaperExact,
            )
        })
    });
    c.bench_function("kernels/quadrant_insert", |bch| {
        let mut i = 0u64;
        bch.iter(|| {
            let t = (i % 997) as f64;
            i += 1;
            let mut q2 = q.clone();
            q2.insert(Point2::new(150.0 + t, 45.0 + (t * 0.3).sin().abs() * 20.0));
            black_box(q2.significant_points())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
