//! Fleet-engine ingest throughput (points/sec) vs. concurrent session
//! count — the scaling baseline later sharding/batching/async PRs must
//! beat.
//!
//! Sessions are interleaved round-robin (worst case for per-session cache
//! locality) and emit into a counting sink, so the measured loop is pure
//! ingest + decision work with no output materialisation.

use bqs_core::fleet::{CountingFleetSink, FleetConfig, FleetEngine};
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;
use bqs_sim::{RandomWalkConfig, RandomWalkModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const POINTS_PER_SESSION: usize = 200;

fn tracks(sessions: usize) -> Vec<Vec<TimedPoint>> {
    (0..sessions)
        .map(|t| {
            let cfg = RandomWalkConfig {
                samples: POINTS_PER_SESSION,
                ..RandomWalkConfig::default()
            };
            RandomWalkModel::new(cfg).generate(t as u64 + 1).points
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_throughput");
    group.sample_size(10);

    for sessions in [1usize, 16, 128, 1024] {
        let traces = tracks(sessions);
        let total = sessions * POINTS_PER_SESSION;
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(
            BenchmarkId::new("fbqs_round_robin", sessions),
            &traces,
            |b, traces| {
                b.iter(|| {
                    let config = BqsConfig::new(10.0).expect("tolerance");
                    let mut fleet = FleetEngine::new(FleetConfig::default(), move || {
                        FastBqsCompressor::new(config)
                    });
                    let mut sink = CountingFleetSink::default();
                    for i in 0..POINTS_PER_SESSION {
                        for (t, trace) in traces.iter().enumerate() {
                            fleet.push_tagged(t as u64, black_box(trace[i]), &mut sink);
                        }
                    }
                    fleet.finish_all(&mut sink);
                    black_box(sink.count)
                })
            },
        );
    }

    // The single-compressor baseline the fleet layer's overhead is judged
    // against: same total points, one session, no routing.
    let solo = tracks(1).remove(0);
    group.throughput(Throughput::Elements(solo.len() as u64));
    group.bench_with_input(BenchmarkId::new("solo_baseline", 1), &solo, |b, trace| {
        b.iter(|| {
            let config = BqsConfig::new(10.0).expect("tolerance");
            let mut c = FastBqsCompressor::new(config);
            let mut sink = bqs_core::CountingSink::new();
            bqs_core::compress_into(&mut c, trace.iter().copied(), &mut sink);
            black_box(sink.count)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
