//! Parallel fleet runtime scaling: ingest throughput (points/sec) of
//! [`ParallelFleet`] at 1/2/4/8 worker shards on a 1000-session
//! workload, against the serial [`FleetEngine`] driving the same points
//! on the bench thread.
//!
//! The 1-worker row measures the channel + batching overhead of the
//! runtime itself (one thread does all the compression, the bench thread
//! only routes); the 2/4/8-worker rows show how far the shared-nothing
//! design scales on the machine at hand. Output goes to counting sinks,
//! so the measured path is routing + channel traffic + decision work
//! with no output materialisation.

use bqs_core::fleet::{CountingFleetSink, FleetConfig, FleetEngine, ParallelConfig, ParallelFleet};
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;
use bqs_sim::{RandomWalkConfig, RandomWalkModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const SESSIONS: usize = 1_000;
const POINTS_PER_SESSION: usize = 200;

fn tracks() -> Vec<Vec<TimedPoint>> {
    (0..SESSIONS)
        .map(|t| {
            let cfg = RandomWalkConfig {
                samples: POINTS_PER_SESSION,
                ..RandomWalkConfig::default()
            };
            RandomWalkModel::new(cfg).generate(t as u64 + 1).points
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_parallel");
    group.sample_size(10);

    let traces = tracks();
    let total = SESSIONS * POINTS_PER_SESSION;
    group.throughput(Throughput::Elements(total as u64));

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("fbqs_workers", workers),
            &traces,
            |b, traces| {
                b.iter(|| {
                    let config = BqsConfig::new(10.0).expect("tolerance");
                    let mut fleet = ParallelFleet::new(
                        ParallelConfig {
                            workers,
                            ..ParallelConfig::default()
                        },
                        move || FastBqsCompressor::new(config),
                        |_| CountingFleetSink::default(),
                    );
                    for i in 0..POINTS_PER_SESSION {
                        for (t, trace) in traces.iter().enumerate() {
                            fleet.push(t as u64, black_box(trace[i]));
                        }
                    }
                    let join = fleet.join();
                    assert!(join.is_ok());
                    let kept: usize = join.shards.iter().map(|s| s.sink.count).sum();
                    black_box(kept)
                })
            },
        );
    }

    // The serial engine on the bench thread: the baseline the parallel
    // runtime's speedup (and 1-worker overhead) is judged against.
    group.bench_with_input(
        BenchmarkId::new("fbqs_serial_engine", 0),
        &traces,
        |b, traces| {
            b.iter(|| {
                let config = BqsConfig::new(10.0).expect("tolerance");
                let mut engine = FleetEngine::new(FleetConfig::default(), move || {
                    FastBqsCompressor::new(config)
                });
                let mut sink = CountingFleetSink::default();
                for i in 0..POINTS_PER_SESSION {
                    for (t, trace) in traces.iter().enumerate() {
                        engine.push_tagged(t as u64, black_box(trace[i]), &mut sink);
                    }
                }
                engine.finish_all(&mut sink);
                black_box(sink.count)
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
