//! Unified query-engine fan-out: time-range and track-selective queries
//! over spill trees of 1/2/4/8 shards, on a warm engine (shard logs
//! opened and indexed). The axis is shard parallelism vs. merge cost on
//! the full scan, and manifest pruning on the selective query — the
//! numbers a smarter planner (bloom filters, per-segment zone maps) has
//! to beat.

use bqs_core::fleet::worker_of;
use bqs_core::stream::compress_all;
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;
use bqs_sim::{RandomWalkConfig, RandomWalkModel};
use bqs_tlog::{open_shard_logs, LogConfig, Manifest, QueryEngine, TimeRange};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;

const TRACKS: usize = 64;
const POINTS: usize = 500;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn trace(track: u64) -> Vec<TimedPoint> {
    let cfg = RandomWalkConfig {
        samples: POINTS,
        ..RandomWalkConfig::default()
    };
    RandomWalkModel::new(cfg)
        .generate(track.wrapping_add(11))
        .points
}

fn build_tree(root: &PathBuf, shards: usize) {
    let _ = std::fs::remove_dir_all(root);
    let config = BqsConfig::new(10.0).expect("tolerance");
    let mut logs = open_shard_logs(root, shards, LogConfig::default()).expect("open tree");
    for t in 0..TRACKS as u64 {
        let kept = compress_all(&mut FastBqsCompressor::new(config), trace(t));
        logs[worker_of(t, shards)]
            .0
            .append(t, &kept)
            .expect("append");
    }
    drop(logs);
    Manifest::rebuild(root).expect("manifest");
}

fn bench(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("bqs-query-fanout-{}", std::process::id()));

    let mut group = c.benchmark_group("query_fanout");
    group.sample_size(20);
    group.throughput(Throughput::Elements((TRACKS * POINTS) as u64));

    for shards in SHARD_COUNTS {
        let root = base.join(format!("tree-{shards}"));
        build_tree(&root, shards);
        let mut engine = QueryEngine::open(&root).expect("open");
        // Warm the shard caches so the measurement is query + merge,
        // not first-open index rebuilds.
        engine
            .query_time_range(None, TimeRange::all())
            .expect("warmup");

        group.bench_with_input(BenchmarkId::new("full_scan", shards), &shards, |b, _| {
            b.iter(|| {
                let out = engine
                    .query_time_range(None, TimeRange::all())
                    .expect("query");
                black_box(out.total_points())
            })
        });
        group.bench_with_input(BenchmarkId::new("time_window", shards), &shards, |b, _| {
            b.iter(|| {
                let out = engine
                    .query_time_range(None, TimeRange::new(2_000.0, 2_500.0))
                    .expect("query");
                black_box(out.total_points())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("one_track_pruned", shards),
            &shards,
            |b, _| {
                b.iter(|| {
                    let out = engine
                        .query_time_range(Some(7), TimeRange::all())
                        .expect("query");
                    black_box((out.total_points(), out.shards_pruned))
                })
            },
        );
        // Cold path: manifest load + lazy open + query, per iteration.
        group.bench_with_input(
            BenchmarkId::new("cold_open_one_track", shards),
            &shards,
            |b, _| {
                b.iter(|| {
                    let mut engine = QueryEngine::open(&root).expect("open");
                    let out = engine
                        .query_time_range(Some(7), TimeRange::all())
                        .expect("query");
                    black_box(out.total_points())
                })
            },
        );
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, bench);
criterion_main!(benches);
