//! Table III bench: run time of FBQS vs buffered BDP/BGD at the paper's
//! buffer ladder over the combined field stream, plus the rate/time table.

use bqs_baselines::{BufferedDpCompressor, BufferedGreedyCompressor};
use bqs_core::stream::compress_all;
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_eval::experiments::table3;
use bqs_eval::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let tolerance = 10.0;
    let stream = table3::combined_stream(Scale::Quick);

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("fbqs", |b| {
        b.iter(|| {
            let mut c = FastBqsCompressor::new(BqsConfig::new(tolerance).unwrap());
            compress_all(&mut c, stream.points.iter().copied()).len()
        })
    });
    for buffer in [32usize, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::new("bdp", buffer), &buffer, |b, &buf| {
            b.iter(|| {
                let mut c = BufferedDpCompressor::new(tolerance, buf);
                compress_all(&mut c, stream.points.iter().copied()).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("bgd", buffer), &buffer, |b, &buf| {
            b.iter(|| {
                let mut c = BufferedGreedyCompressor::new(tolerance, buf);
                compress_all(&mut c, stream.points.iter().copied()).len()
            })
        });
    }
    group.finish();

    println!("{}", table3::run(Scale::Quick).to_table());
}

criterion_group!(benches, bench);
criterion_main!(benches);
