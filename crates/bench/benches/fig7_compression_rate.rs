//! Fig. 7 bench: all five error-bounded algorithms head-to-head on the bat
//! dataset at the paper's mid tolerance, plus both Fig. 7 rate tables.

use bqs_eval::experiments::{self, fig7};
use bqs_eval::{Algorithm, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let trace = experiments::bat_trace(Scale::Quick);
    let tolerance = 10.0;

    let mut group = c.benchmark_group("fig7");
    group.sample_size(20);
    for algo in Algorithm::FIG7 {
        group.bench_with_input(
            BenchmarkId::new("bat_10m", algo.label()),
            &algo,
            |b, algo| b.iter(|| algo.run(&trace.points, tolerance).kept_count),
        );
    }
    group.finish();

    let result = fig7::run(Scale::Quick);
    println!("{}", result.bat.to_table());
    println!("{}", result.vehicle.to_table());
}

criterion_group!(benches, bench);
criterion_main!(benches);
