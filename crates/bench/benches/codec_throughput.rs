//! Trajectory-codec throughput: encode and decode Mpts/s for both the
//! bit-lossless exact profile and the millimetre-grid quantized profile,
//! plus the log's end-to-end append path. These are the numbers a future
//! io_uring / mmap / SIMD-varint PR has to beat.

use bqs_core::stream::CountingSink;
use bqs_geo::TimedPoint;
use bqs_sim::{RandomWalkConfig, RandomWalkModel};
use bqs_tlog::codec::{self, CodecProfile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const POINTS: usize = 20_000;

fn trace() -> Vec<TimedPoint> {
    let cfg = RandomWalkConfig {
        samples: POINTS,
        ..RandomWalkConfig::default()
    };
    RandomWalkModel::new(cfg).generate(7).points
}

fn bench(c: &mut Criterion) {
    let points = trace();
    let profiles = [
        ("exact", CodecProfile::Exact),
        ("mm", CodecProfile::millimetre()),
    ];

    let mut group = c.benchmark_group("codec_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(POINTS as u64));

    for (name, profile) in profiles {
        group.bench_with_input(BenchmarkId::new("encode", name), &points, |b, points| {
            let mut buf = Vec::with_capacity(POINTS * 8);
            b.iter(|| {
                buf.clear();
                codec::encode_points_with(profile, black_box(points), &mut buf).expect("encode");
                black_box(buf.len())
            })
        });

        let encoded = codec::encode_to_vec_with(profile, &points).expect("encode");
        group.bench_with_input(BenchmarkId::new("decode", name), &encoded, |b, encoded| {
            b.iter(|| {
                let mut sink = CountingSink::new();
                let n = codec::decode_points(black_box(encoded), &mut sink).expect("decode");
                black_box(n)
            })
        });
    }

    // End-to-end: encode + frame + write through the segmented log.
    group.bench_function("log_append", |b| {
        use bqs_tlog::{LogConfig, TrajectoryLog};
        let dir = std::env::temp_dir().join(format!("bqs-tlog-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).expect("open");
        let mut track = 0u64;
        b.iter(|| {
            track += 1;
            let receipt = log.append(track, black_box(&points)).expect("append");
            black_box(receipt.bytes)
        });
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
