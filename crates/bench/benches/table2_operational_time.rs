//! Table II bench: the operational-time experiment end to end (compression
//! at 10 m on both datasets + the storage model), plus the days table.

use bqs_eval::experiments::table2;
use bqs_eval::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("operational_time_quick", |b| {
        b.iter(|| table2::run(Scale::Quick).rows.len())
    });
    group.finish();

    println!("{}", table2::run(Scale::Quick).to_table());
}

criterion_group!(benches, bench);
criterion_main!(benches);
