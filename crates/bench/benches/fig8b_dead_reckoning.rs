//! Fig. 8b bench: FBQS vs Dead Reckoning on the synthetic correlated
//! random walk, plus the points-used table with the DR overhead ratio.

use bqs_eval::experiments::{self, fig8};
use bqs_eval::{Algorithm, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let trace = experiments::synthetic_trace(Scale::Quick);

    let mut group = c.benchmark_group("fig8b");
    group.sample_size(20);
    for algo in [Algorithm::Fbqs, Algorithm::DeadReckoning] {
        for tol in [2.0, 10.0, 20.0] {
            group.bench_with_input(
                BenchmarkId::new(algo.label(), tol),
                &(algo, tol),
                |b, (algo, tol)| b.iter(|| algo.run(&trace.points, *tol).kept_count),
            );
        }
    }
    group.finish();

    let result = fig8::run_8b(Scale::Quick);
    println!("{}", result.to_table());
}

criterion_group!(benches, bench);
criterion_main!(benches);
