//! Loopback ingest throughput of the framed TCP server: batches of
//! points appended over 1/2/4 client connections against 1/4 fleet
//! workers. The axis is fan-in (connections contending on the shared
//! fleet) vs. fan-out (worker shards absorbing the load); the measured
//! path is frame encode → TCP → frame decode → fleet submission →
//! acknowledgement, per round of one batch on every connection.

use bqs_geo::TimedPoint;
use bqs_net::{BqsClient, Server, ServerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::cell::RefCell;
use std::hint::black_box;

const BATCH: usize = 256;
const CONNECTIONS: [usize; 3] = [1, 2, 4];
const WORKERS: [usize; 2] = [1, 4];

/// One connection's synthetic stream state: a walk with monotonically
/// increasing timestamps, chunked into append batches.
struct StreamState {
    track: u64,
    x: f64,
    t: f64,
}

impl StreamState {
    fn next_batch(&mut self) -> Vec<TimedPoint> {
        (0..BATCH)
            .map(|_| {
                self.x += 3.0;
                self.t += 1.0;
                TimedPoint::new(self.x, (self.x * 0.02).sin() * 40.0, self.t)
            })
            .collect()
    }
}

fn bench(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("bqs-net-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut group = c.benchmark_group("net_throughput");
    group.sample_size(20);

    for workers in WORKERS {
        for connections in CONNECTIONS {
            let root = base.join(format!("w{workers}-c{connections}"));
            let server =
                Server::bind(ServerConfig::new("127.0.0.1:0", workers, &root)).expect("bind");
            let addr = server.local_addr();
            let handle = std::thread::spawn(move || server.run().expect("serve"));

            // One client (and one distinct track) per connection; the
            // benchmark thread round-robins a batch onto each.
            let clients: Vec<RefCell<(BqsClient, StreamState)>> = (0..connections)
                .map(|i| {
                    RefCell::new((
                        BqsClient::connect(addr).expect("connect"),
                        StreamState {
                            track: i as u64,
                            x: 0.0,
                            t: 0.0,
                        },
                    ))
                })
                .collect();

            group.throughput(Throughput::Elements((connections * BATCH) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("workers{workers}"), connections),
                &connections,
                |b, _| {
                    b.iter(|| {
                        let mut acked = 0u64;
                        for cell in &clients {
                            let (client, stream) = &mut *cell.borrow_mut();
                            let batch = stream.next_batch();
                            acked += client.append(stream.track, &batch).expect("append");
                        }
                        black_box(acked)
                    })
                },
            );

            drop(clients);
            BqsClient::connect(addr)
                .expect("connect for shutdown")
                .shutdown()
                .expect("shutdown");
            handle.join().expect("server thread");
            let _ = std::fs::remove_dir_all(&root);
        }
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, bench);
criterion_main!(benches);
