//! Loopback ingest throughput of the framed TCP server at serving
//! fan-in: 64/256/1024 client connections multiplexed over 1/4 I/O
//! threads (4 fleet workers throughout). The driver pipelines one
//! in-flight `Append` per connection — write a frame onto every
//! connection, then collect every acknowledgement — so the measured
//! path is the server's multiplexing loop under genuinely concurrent
//! load: readiness poll → columnar frame decode → fleet run submission
//! → acknowledgement.

use bqs_geo::TimedPoint;
use bqs_net::wire::{read_frame, write_frame, Reply, Request, PROTOCOL_VERSION};
use bqs_net::{Server, ServerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::cell::RefCell;
use std::hint::black_box;
use std::net::TcpStream;

const BATCH: usize = 256;
const CONNECTIONS: [usize; 3] = [64, 256, 1024];
const IO_THREADS: [usize; 2] = [1, 4];
const WORKERS: usize = 4;

/// One connection's synthetic stream state: a walk with monotonically
/// increasing timestamps, chunked into append batches.
struct StreamState {
    track: u64,
    x: f64,
    t: f64,
}

impl StreamState {
    fn next_batch(&mut self) -> Vec<TimedPoint> {
        (0..BATCH)
            .map(|_| {
                self.x += 3.0;
                self.t += 1.0;
                TimedPoint::new(self.x, (self.x * 0.02).sin() * 40.0, self.t)
            })
            .collect()
    }
}

/// A raw framed connection with the handshake done — the bench drives
/// the wire directly so appends can pipeline across connections.
fn connect_raw(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    write_frame(
        &mut stream,
        &Request::Hello {
            protocol: PROTOCOL_VERSION,
        }
        .encode()
        .expect("encode hello"),
    )
    .expect("send hello");
    let reply = read_frame(&mut stream).expect("read").expect("hello reply");
    assert!(matches!(
        Reply::decode(&reply).expect("decode"),
        Reply::HelloOk { .. }
    ));
    stream
}

fn bench(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("bqs-net-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut group = c.benchmark_group("net_throughput");
    group.sample_size(10);

    for io_threads in IO_THREADS {
        for connections in CONNECTIONS {
            let root = base.join(format!("io{io_threads}-c{connections}"));
            let mut config = ServerConfig::new("127.0.0.1:0", WORKERS, &root);
            config.io_threads = io_threads;
            let server = Server::bind(config).expect("bind");
            let addr = server.local_addr();
            let handle = std::thread::spawn(move || server.run().expect("serve"));

            // One connection (and one distinct track) each; the driver
            // keeps one frame in flight per connection.
            let conns: Vec<RefCell<(TcpStream, StreamState)>> = (0..connections)
                .map(|i| {
                    RefCell::new((
                        connect_raw(addr),
                        StreamState {
                            track: i as u64,
                            x: 0.0,
                            t: 0.0,
                        },
                    ))
                })
                .collect();

            group.throughput(Throughput::Elements((connections * BATCH) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("io{io_threads}"), connections),
                &connections,
                |b, _| {
                    b.iter(|| {
                        // Phase 1: a frame onto every connection.
                        for cell in &conns {
                            let (stream, state) = &mut *cell.borrow_mut();
                            let payload = Request::Append {
                                track: state.track,
                                points: state.next_batch(),
                            }
                            .encode()
                            .expect("encode append");
                            write_frame(stream, &payload).expect("send append");
                        }
                        // Phase 2: collect every acknowledgement.
                        let mut acked = 0u64;
                        for cell in &conns {
                            let (stream, _) = &mut *cell.borrow_mut();
                            let reply = read_frame(stream).expect("read").expect("ack");
                            match Reply::decode(&reply).expect("decode") {
                                Reply::Appended { points, .. } => acked += points,
                                other => panic!("expected Appended, got {other:?}"),
                            }
                        }
                        assert_eq!(acked, (conns.len() * BATCH) as u64);
                        black_box(acked)
                    })
                },
            );

            drop(conns);
            bqs_net::BqsClient::connect(addr)
                .expect("connect for shutdown")
                .shutdown()
                .expect("shutdown");
            handle.join().expect("server thread");
            let _ = std::fs::remove_dir_all(&root);
        }
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, bench);
criterion_main!(benches);
