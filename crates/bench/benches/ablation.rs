//! Ablation bench: the BQS design knobs (data-centric rotation, bound
//! tier, bounds mode) isolated on the bat dataset, plus the ablation grid.

use bqs_core::stream::compress_all;
use bqs_core::{BoundsMode, BqsCompressor, BqsConfig, RotationMode};
use bqs_eval::experiments::{self, ablation};
use bqs_eval::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let trace = experiments::bat_trace(Scale::Quick);
    let base = BqsConfig::new(5.0).unwrap();
    let variants: [(&str, BqsConfig); 4] = [
        ("full", base),
        ("no_rotation", base.with_rotation(RotationMode::Disabled)),
        (
            "coarse_bounds",
            base.with_bounds_mode(BoundsMode::CoarseCorners),
        ),
        ("paper_exact", base.with_bounds_mode(BoundsMode::PaperExact)),
    ];

    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    for (label, config) in variants {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut bqs = BqsCompressor::new(config);
                compress_all(&mut bqs, trace.points.iter().copied()).len()
            })
        });
    }
    group.finish();

    println!("{}", ablation::run(Scale::Quick).to_table());
}

criterion_group!(benches, bench);
criterion_main!(benches);
