//! # bqs-bench — criterion benchmarks for the BQS workspace
//!
//! The crate's library is intentionally empty: all content lives in
//! `benches/` (one file per paper artefact plus `fleet_throughput`, the
//! multi-session scaling baseline). Run with:
//!
//! ```sh
//! cargo bench -p bqs-bench                      # everything
//! cargo bench -p bqs-bench --bench fleet_throughput
//! ```

#![deny(missing_docs)]
