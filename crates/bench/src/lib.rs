// placeholder
