//! GPS measurement-noise injection.
//!
//! Consumer GPS fixes carry metre-scale error; the paper's tolerances
//! (2–50 m) sit just above it. Injecting realistic noise matters for the
//! experiments because jitter is exactly what makes stationary periods
//! compressible only by an error-bounded algorithm.

use crate::trace::Trace;
use bqs_geo::{TimedPoint, Vec2};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Isotropic Gaussian position noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsNoise {
    /// Per-axis standard deviation in metres.
    pub sigma: f64,
}

impl GpsNoise {
    /// Creates a noise model; panics on negative or non-finite sigma.
    pub fn new(sigma: f64) -> GpsNoise {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be ≥ 0");
        GpsNoise { sigma }
    }

    /// Applies noise to a trace deterministically from `seed`.
    pub fn apply(&self, trace: &Trace, seed: u64) -> Trace {
        if self.sigma == 0.0 {
            return trace.clone();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let normal = Normal::new(0.0, self.sigma).expect("valid normal");
        let points = trace
            .points
            .iter()
            .map(|p| {
                let dx = normal.sample(&mut rng);
                let dy = normal.sample(&mut rng);
                TimedPoint::at(p.pos + Vec2::new(dx, dy), p.t)
            })
            .collect();
        Trace::new(trace.name.clone(), points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_geo::Point2;

    fn flat_trace(n: usize) -> Trace {
        Trace::new(
            "flat",
            (0..n)
                .map(|i| TimedPoint::new(100.0, 100.0, i as f64))
                .collect(),
        )
    }

    #[test]
    fn zero_sigma_is_identity() {
        let t = flat_trace(10);
        assert_eq!(GpsNoise::new(0.0).apply(&t, 1), t);
    }

    #[test]
    fn noise_statistics_match_sigma() {
        let t = flat_trace(20_000);
        let noisy = GpsNoise::new(3.0).apply(&t, 42);
        let mean_x: f64 = noisy.points.iter().map(|p| p.pos.x).sum::<f64>() / noisy.len() as f64;
        let var_x: f64 = noisy
            .points
            .iter()
            .map(|p| (p.pos.x - mean_x).powi(2))
            .sum::<f64>()
            / noisy.len() as f64;
        assert!((mean_x - 100.0).abs() < 0.1);
        assert!((var_x.sqrt() - 3.0).abs() < 0.1, "sd {}", var_x.sqrt());
    }

    #[test]
    fn timestamps_unchanged() {
        let t = flat_trace(50);
        let noisy = GpsNoise::new(5.0).apply(&t, 7);
        for (a, b) in t.points.iter().zip(noisy.points.iter()) {
            assert_eq!(a.t, b.t);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = flat_trace(100);
        let n = GpsNoise::new(2.0);
        assert_eq!(n.apply(&t, 9), n.apply(&t, 9));
        assert_ne!(n.apply(&t, 9).points, n.apply(&t, 10).points);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn rejects_negative_sigma() {
        let _ = GpsNoise::new(-1.0);
    }

    #[test]
    fn displacement_is_bounded_in_probability() {
        let t = flat_trace(1000);
        let noisy = GpsNoise::new(2.0).apply(&t, 3);
        let big = noisy
            .points
            .iter()
            .filter(|p| p.pos.distance(Point2::new(100.0, 100.0)) > 10.0) // 5σ per axis
            .count();
        assert!(big < 5, "too many {big} outliers beyond 5σ");
    }
}
