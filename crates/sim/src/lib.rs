//! # bqs-sim — synthetic trajectory generation for the BQS evaluation
//!
//! The paper evaluates on three datasets: GPS traces from flying foxes
//! (five Camazotz collars, ~6 months), a vehicle trace (dashboard node,
//! 2 weeks), and a 30,000-point synthetic trace from an event-based
//! correlated random walk (§VI-A). The field data is not public, so this
//! crate provides statistically matched substitutes (see DESIGN.md §2):
//!
//! * [`random_walk`] — a direct implementation of the paper's own synthetic
//!   model: alternating waiting/moving events, empirical speed
//!   distribution, von Mises turning angles, exponential move durations,
//!   reflected inside a 10 km × 10 km arena.
//! * [`bat`] — a flying-fox day/night model: roost clusters with GPS
//!   jitter, foraging trips of ~10 km at 35–50 km/h with meandering
//!   headings, visits to several forage sites per night.
//! * [`vehicle`] — trips routed on a synthetic grid road network at
//!   60–100 km/h: road-constrained headings and longer spatial scale, the
//!   two properties the paper says distinguish the car data.
//! * [`von_mises`] — a from-scratch Best–Fisher von Mises sampler (the
//!   turning-angle distribution named in §VI-A).
//! * [`noise`] — GPS error injection.
//! * [`trace`] — the [`Trace`] container and (de)serialisation.
//! * [`dataset`] — the canonical seeded datasets used by every experiment,
//!   sized to match the paper's sample counts.
//!
//! Everything is deterministic given a seed, so experiments are exactly
//! reproducible.

#![deny(missing_docs)]

pub mod bat;
pub mod dataset;
pub mod noise;
pub mod random_walk;
pub mod trace;
pub mod vehicle;
pub mod von_mises;

pub use bat::{BatModel, BatModelConfig};
pub use dataset::{bat_dataset, synthetic_dataset, vehicle_dataset, DatasetSpec};
pub use noise::GpsNoise;
pub use random_walk::{RandomWalkConfig, RandomWalkModel};
pub use trace::Trace;
pub use vehicle::{VehicleModel, VehicleModelConfig};
pub use von_mises::VonMises;
