//! The paper's synthetic model (§VI-A): an **event-based correlated random
//! walk**.
//!
//! Waiting events and moving events alternate. During a waiting event the
//! object holds its position; during a moving event it travels at a speed
//! drawn from the empirical speed distribution, with a heading produced by
//! adding a von Mises turning angle to the previous heading, for an
//! exponentially distributed duration (a Poisson event process). The
//! trajectory is confined to a 10 km × 10 km arena by reflecting headings
//! at the walls, and is sampled at a fixed rate to yield 30,000 points.

use crate::trace::Trace;
use crate::von_mises::VonMises;
use bqs_geo::{Point2, TimedPoint, Vec2};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal};

/// Configuration of the correlated random walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalkConfig {
    /// Arena edge length in metres (the paper's bound is 10 km).
    pub arena_size: f64,
    /// Number of samples to emit (the paper generates 30,000).
    pub samples: usize,
    /// Sampling interval in seconds.
    pub sample_interval: f64,
    /// Mean moving-event duration in seconds (exponentially distributed).
    pub mean_move_duration: f64,
    /// Mean waiting-event duration in seconds (exponentially distributed).
    pub mean_wait_duration: f64,
    /// Log-normal speed parameters `(mu, sigma)` of ln(speed m/s); the
    /// defaults approximate the bat data's empirical speed distribution
    /// (common cruise ≈ 10 m/s ≈ 35 km/h, tail to ≈ 14 m/s ≈ 50 km/h).
    pub speed_ln_mu: f64,
    /// Log-normal sigma of ln(speed).
    pub speed_ln_sigma: f64,
    /// Von Mises turning-angle concentration κ (higher = straighter).
    pub turning_kappa: f64,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        RandomWalkConfig {
            arena_size: 10_000.0,
            samples: 30_000,
            sample_interval: 10.0,
            mean_move_duration: 120.0,
            mean_wait_duration: 180.0,
            speed_ln_mu: 2.1, // median ≈ 8.2 m/s
            speed_ln_sigma: 0.4,
            turning_kappa: 4.0,
        }
    }
}

/// The walk generator.
#[derive(Debug, Clone)]
pub struct RandomWalkModel {
    config: RandomWalkConfig,
}

impl RandomWalkModel {
    /// Creates a model; panics on non-positive sizes/durations.
    pub fn new(config: RandomWalkConfig) -> RandomWalkModel {
        assert!(config.arena_size > 0.0);
        assert!(config.sample_interval > 0.0);
        assert!(config.mean_move_duration > 0.0);
        assert!(config.mean_wait_duration > 0.0);
        assert!(config.turning_kappa >= 0.0);
        RandomWalkModel { config }
    }

    /// Generates the trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let turn = VonMises::new(0.0, c.turning_kappa).expect("valid von Mises");
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let move_dur = Exp::new(1.0 / c.mean_move_duration).expect("positive rate");
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let wait_dur = Exp::new(1.0 / c.mean_wait_duration).expect("positive rate");
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let speed_dist = LogNormal::new(c.speed_ln_mu, c.speed_ln_sigma).expect("valid lognormal");

        let mut pos = Point2::new(
            rng.random_range(0.25..0.75) * c.arena_size,
            rng.random_range(0.25..0.75) * c.arena_size,
        );
        let mut heading: f64 = rng.random_range(-std::f64::consts::PI..std::f64::consts::PI);

        let mut points = Vec::with_capacity(c.samples);
        let mut t = 0.0f64;
        let mut moving = false;
        let mut event_left = wait_dur.sample(&mut rng);
        let mut speed = 0.0f64;

        while points.len() < c.samples {
            points.push(TimedPoint::at(pos, t));

            // Advance the simulation by one sampling interval, consuming
            // event time and switching events as they expire.
            let mut dt = c.sample_interval;
            while dt > 0.0 {
                let step = dt.min(event_left);
                if moving && step > 0.0 {
                    let v = Vec2::from_angle(heading) * speed;
                    pos = reflect_into_arena(pos + v * step, c.arena_size, &mut heading);
                }
                dt -= step;
                event_left -= step;
                if event_left <= 0.0 {
                    moving = !moving;
                    if moving {
                        event_left = move_dur.sample(&mut rng);
                        speed = speed_dist.sample(&mut rng).min(30.0); // clamp absurd tails
                        heading += turn.sample(&mut rng);
                    } else {
                        event_left = wait_dur.sample(&mut rng);
                    }
                }
            }
            t += c.sample_interval;
        }
        Trace::new("synthetic", points)
    }
}

/// Clamps a position into the arena, reflecting the heading off the wall
/// that was crossed.
fn reflect_into_arena(mut p: Point2, size: f64, heading: &mut f64) -> Point2 {
    if p.x < 0.0 || p.x > size {
        *heading = std::f64::consts::PI - *heading;
        p.x = p.x.clamp(0.0, size);
    }
    if p.y < 0.0 || p.y > size {
        *heading = -*heading;
        p.y = p.y.clamp(0.0, size);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RandomWalkConfig {
        RandomWalkConfig {
            samples: 3000,
            ..RandomWalkConfig::default()
        }
    }

    #[test]
    fn generates_requested_sample_count() {
        let trace = RandomWalkModel::new(small_config()).generate(1);
        assert_eq!(trace.len(), 3000);
    }

    #[test]
    fn stays_inside_arena() {
        let c = small_config();
        let trace = RandomWalkModel::new(c).generate(2);
        for p in &trace.points {
            assert!(p.pos.x >= 0.0 && p.pos.x <= c.arena_size, "{:?}", p.pos);
            assert!(p.pos.y >= 0.0 && p.pos.y <= c.arena_size, "{:?}", p.pos);
        }
    }

    #[test]
    fn timestamps_are_uniform() {
        let c = small_config();
        let trace = RandomWalkModel::new(c).generate(3);
        for (i, p) in trace.points.iter().enumerate() {
            assert_eq!(p.t, i as f64 * c.sample_interval);
        }
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let model = RandomWalkModel::new(small_config());
        let a = model.generate(7);
        let b = model.generate(7);
        let c = model.generate(8);
        assert_eq!(a, b);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn alternates_movement_and_waiting() {
        let trace = RandomWalkModel::new(small_config()).generate(4);
        let mut stationary = 0usize;
        let mut moving = 0usize;
        for w in trace.points.windows(2) {
            if w[0].pos.distance(w[1].pos) < 1e-9 {
                stationary += 1;
            } else {
                moving += 1;
            }
        }
        // Both event kinds must be well represented.
        assert!(stationary > trace.len() / 10, "stationary {stationary}");
        assert!(moving > trace.len() / 10, "moving {moving}");
    }

    #[test]
    fn speeds_match_configured_distribution() {
        let c = RandomWalkConfig {
            samples: 20_000,
            ..RandomWalkConfig::default()
        };
        let trace = RandomWalkModel::new(c).generate(5);
        let mut speeds: Vec<f64> = trace
            .points
            .windows(2)
            .filter_map(|w| w[0].speed_to(w[1]))
            .filter(|s| *s > 0.5) // moving intervals only
            .collect();
        assert!(!speeds.is_empty());
        speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = speeds[speeds.len() / 2];
        // Log-normal median = exp(mu) ≈ 8.2 m/s; sampling at event
        // boundaries mixes in partial intervals, so allow a generous band.
        assert!(
            (4.0..14.0).contains(&median),
            "median speed {median} m/s outside plausible band"
        );
        // Maximum stays below the clamp.
        assert!(*speeds.last().unwrap() <= 30.0 + 1e-9);
    }

    #[test]
    fn covers_a_nontrivial_area() {
        let trace = RandomWalkModel::new(small_config()).generate(6);
        let bb = trace.bounding_box().unwrap();
        assert!(bb.width() > 500.0 && bb.height() > 500.0, "{bb:?}");
    }
}
