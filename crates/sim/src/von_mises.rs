//! Von Mises (circular normal) sampling — the turning-angle distribution of
//! the paper's correlated random walk (§VI-A, citing Risken's treatment of
//! the Fokker–Planck equation).
//!
//! Implemented from scratch with the Best–Fisher (1979) rejection sampler;
//! `rand_distr` does not ship a von Mises distribution, and owning the
//! sampler lets the tests verify it against the analytic circular moments.

use rand::Rng;
use std::f64::consts::PI;

/// A von Mises distribution `VM(μ, κ)` over angles in `(−π, π]`.
///
/// `κ = 0` degenerates to the uniform circular distribution; large `κ`
/// concentrates around the mean direction `μ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VonMises {
    mu: f64,
    kappa: f64,
    /// Best–Fisher constants, precomputed.
    r: f64,
}

impl VonMises {
    /// Creates a sampler. Returns `None` for non-finite parameters or
    /// negative concentration.
    pub fn new(mu: f64, kappa: f64) -> Option<VonMises> {
        if !mu.is_finite() || !kappa.is_finite() || kappa < 0.0 {
            return None;
        }
        let tau = 1.0 + (1.0 + 4.0 * kappa * kappa).sqrt();
        let rho = (tau - (2.0 * tau).sqrt()) / (2.0 * kappa.max(f64::MIN_POSITIVE));
        let r = (1.0 + rho * rho) / (2.0 * rho);
        Some(VonMises { mu, kappa, r })
    }

    /// Mean direction μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Concentration κ.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// Draws one angle in `(−π, π]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.kappa < 1e-9 {
            // Uniform circle.
            // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
            return rng.sample(rand::distr::Uniform::new(-PI, PI).expect("valid range"));
        }
        // Best & Fisher acceptance-rejection with a wrapped Cauchy envelope.
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let uniform = rand::distr::Uniform::new(0.0f64, 1.0).expect("valid range");
        loop {
            let u1: f64 = rng.sample(uniform);
            let z = (PI * u1).cos();
            let f = (1.0 + self.r * z) / (self.r + z);
            let c = self.kappa * (self.r - f);
            let u2: f64 = rng.sample(uniform);
            if c * (2.0 - c) - u2 > 0.0 || (c / u2).ln() + 1.0 - c >= 0.0 {
                let u3: f64 = rng.sample(uniform);
                let sign = if u3 > 0.5 { 1.0 } else { -1.0 };
                let angle = self.mu + sign * f.acos();
                return wrap_angle(angle);
            }
        }
    }
}

/// Wraps an angle into `(−π, π]`.
fn wrap_angle(theta: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut t = theta % two_pi;
    if t <= -PI {
        t += two_pi;
    } else if t > PI {
        t -= two_pi;
    }
    t
}

/// Ratio of modified Bessel functions `I₁(κ)/I₀(κ)` — the analytic mean
/// resultant length of `VM(μ, κ)`, used by the statistical tests. Computed
/// with the power series for small κ and the asymptotic expansion for large
/// κ.
pub fn bessel_ratio_i1_i0(kappa: f64) -> f64 {
    if kappa < 1e-12 {
        return 0.0;
    }
    if kappa < 20.0 {
        let x2 = kappa / 2.0;
        // I0(x) = Σ_{k≥0} (x/2)^{2k} / (k!)².
        let mut i0 = 1.0f64;
        let mut term = 1.0f64;
        for k in 1..60 {
            term *= (x2 * x2) / ((k * k) as f64);
            i0 += term;
        }
        // I1(x) = Σ_{k≥0} (x/2)^{2k+1} / (k!(k+1)!).
        let mut i1 = x2;
        let mut t = x2;
        for k in 1..60 {
            t *= (x2 * x2) / ((k * (k + 1)) as f64);
            i1 += t;
        }
        i1 / i0
    } else {
        // Asymptotic: I1/I0 ≈ 1 − 1/(2κ) − 1/(8κ²) − 1/(8κ³) − 25/(128κ⁴).
        let k2 = kappa * kappa;
        1.0 - 1.0 / (2.0 * kappa)
            - 1.0 / (8.0 * k2)
            - 1.0 / (8.0 * k2 * kappa)
            - 25.0 / (128.0 * k2 * k2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn circular_stats(samples: &[f64]) -> (f64, f64) {
        let (mut c, mut s) = (0.0f64, 0.0f64);
        for &a in samples {
            c += a.cos();
            s += a.sin();
        }
        let n = samples.len() as f64;
        let mean_dir = (s / n).atan2(c / n);
        let resultant = ((c / n).powi(2) + (s / n).powi(2)).sqrt();
        (mean_dir, resultant)
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(VonMises::new(0.0, -1.0).is_none());
        assert!(VonMises::new(f64::NAN, 1.0).is_none());
        assert!(VonMises::new(0.0, f64::INFINITY).is_none());
        assert!(VonMises::new(0.0, 0.0).is_some());
    }

    #[test]
    fn samples_in_range() {
        let vm = VonMises::new(2.5, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = vm.sample(&mut rng);
            assert!(a > -PI && a <= PI, "{a}");
        }
    }

    #[test]
    fn mean_direction_matches_mu() {
        let mut rng = StdRng::seed_from_u64(7);
        for mu in [-2.0, 0.0, 1.2] {
            let vm = VonMises::new(mu, 4.0).unwrap();
            let samples: Vec<f64> = (0..20_000).map(|_| vm.sample(&mut rng)).collect();
            let (mean_dir, _) = circular_stats(&samples);
            let diff = wrap_angle(mean_dir - mu).abs();
            assert!(diff < 0.05, "mu {mu}: sample mean {mean_dir}");
        }
    }

    #[test]
    fn resultant_length_matches_bessel_ratio() {
        let mut rng = StdRng::seed_from_u64(11);
        for kappa in [0.5, 2.0, 8.0] {
            let vm = VonMises::new(0.0, kappa).unwrap();
            let samples: Vec<f64> = (0..30_000).map(|_| vm.sample(&mut rng)).collect();
            let (_, r) = circular_stats(&samples);
            let expected = bessel_ratio_i1_i0(kappa);
            assert!(
                (r - expected).abs() < 0.02,
                "kappa {kappa}: resultant {r} vs analytic {expected}"
            );
        }
    }

    #[test]
    fn zero_kappa_is_uniform() {
        let vm = VonMises::new(0.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..20_000).map(|_| vm.sample(&mut rng)).collect();
        let (_, r) = circular_stats(&samples);
        assert!(r < 0.02, "uniform circle must have tiny resultant, got {r}");
        // Quadrant occupancy is balanced.
        let q1 = samples
            .iter()
            .filter(|a| **a >= 0.0 && **a < PI / 2.0)
            .count();
        assert!((q1 as f64 / samples.len() as f64 - 0.25).abs() < 0.02);
    }

    #[test]
    fn bessel_ratio_sanity() {
        assert_eq!(bessel_ratio_i1_i0(0.0), 0.0);
        // Known value: I1(2)/I0(2) ≈ 0.697774.
        assert!((bessel_ratio_i1_i0(2.0) - 0.697774).abs() < 1e-4);
        // Continuity across the series/asymptotic switch at κ = 20.
        let below = bessel_ratio_i1_i0(19.999);
        let above = bessel_ratio_i1_i0(20.001);
        assert!((below - above).abs() < 1e-5, "{below} vs {above}");
        // Monotone towards 1.
        assert!(bessel_ratio_i1_i0(50.0) > bessel_ratio_i1_i0(5.0));
        assert!(bessel_ratio_i1_i0(200.0) < 1.0);
    }

    #[test]
    fn high_kappa_concentrates() {
        let vm = VonMises::new(1.0, 100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let a = vm.sample(&mut rng);
            assert!((a - 1.0).abs() < 0.5, "{a} too far from mu at high kappa");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let vm = VonMises::new(0.3, 2.0).unwrap();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| vm.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| vm.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
