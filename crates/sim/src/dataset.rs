//! Canonical seeded datasets for the experiments.
//!
//! The paper's corpus: 138,798 GPS samples across the bat and vehicle
//! datasets (≈ 7,206 km and 1,187 km of travel respectively), plus a
//! 30,000-point synthetic trace. The full-size generators here target the
//! same sample counts; the `*_small` variants keep unit tests fast.

use crate::bat::{BatModel, BatModelConfig};
use crate::noise::GpsNoise;
use crate::random_walk::{RandomWalkConfig, RandomWalkModel};
use crate::trace::Trace;
use crate::vehicle::{VehicleModel, VehicleModelConfig};

/// Descriptor of a generated dataset, used by the evaluation harness to
/// label experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset label ("bat", "vehicle", "synthetic").
    pub name: &'static str,
    /// Tolerance sweep the paper uses for this dataset, in metres.
    pub tolerances: &'static [f64],
}

/// The paper's tolerance sweep for the bat data (Figs. 6a, 7a): 2–20 m.
pub const BAT_TOLERANCES: [f64; 10] = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0];

/// The paper's tolerance sweep for the vehicle data (Figs. 6b, 7b): 5–50 m.
pub const VEHICLE_TOLERANCES: [f64; 10] =
    [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0];

/// Dataset spec for the bat data.
pub const BAT_SPEC: DatasetSpec = DatasetSpec {
    name: "bat",
    tolerances: &BAT_TOLERANCES,
};

/// Dataset spec for the vehicle data.
pub const VEHICLE_SPEC: DatasetSpec = DatasetSpec {
    name: "vehicle",
    tolerances: &VEHICLE_TOLERANCES,
};

/// GPS noise applied to all "field" datasets (σ per axis, metres).
const FIELD_GPS_SIGMA: f64 = 1.0;

/// Full-size bat dataset: five collars × multi-week tracking, ≈ 90k
/// samples — the bat share of the paper's 138,798-sample corpus.
pub fn bat_dataset(seed: u64) -> Trace {
    bat_dataset_sized(seed, 26, 5)
}

/// Bat dataset with explicit scale: `nights` per collar and `collars`
/// concatenated into one stream (the paper combines all points into a
/// single stream for evaluation).
pub fn bat_dataset_sized(seed: u64, nights: usize, collars: usize) -> Trace {
    let parts: Vec<Trace> = (0..collars)
        .map(|i| {
            let config = BatModelConfig {
                nights,
                ..BatModelConfig::default()
            };
            let raw = BatModel::new(config).generate(seed.wrapping_add(i as u64 * 101));
            GpsNoise::new(FIELD_GPS_SIGMA).apply(&raw, seed.wrapping_add(7_000 + i as u64))
        })
        .collect();
    let mut combined = Trace::concatenate("bat", &parts, 3_600.0);
    combined.name = "bat".to_string();
    combined
}

/// Full-size vehicle dataset: two weeks of urban driving, ≈ 49k samples.
pub fn vehicle_dataset(seed: u64) -> Trace {
    vehicle_dataset_sized(seed, 170)
}

/// Vehicle dataset with an explicit trip count.
pub fn vehicle_dataset_sized(seed: u64, trips: usize) -> Trace {
    let config = VehicleModelConfig {
        trips,
        ..VehicleModelConfig::default()
    };
    let raw = VehicleModel::new(config).generate(seed.wrapping_add(31));
    GpsNoise::new(FIELD_GPS_SIGMA).apply(&raw, seed.wrapping_add(8_000))
}

/// The paper's 30,000-point synthetic trace (§VI-A model, 10 km arena).
pub fn synthetic_dataset(seed: u64) -> Trace {
    synthetic_dataset_sized(seed, 30_000)
}

/// Synthetic trace with an explicit sample count.
pub fn synthetic_dataset_sized(seed: u64, samples: usize) -> Trace {
    let config = RandomWalkConfig {
        samples,
        ..RandomWalkConfig::default()
    };
    RandomWalkModel::new(config).generate(seed.wrapping_add(97))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_datasets_have_expected_shape() {
        let bat = bat_dataset_sized(1, 2, 2);
        assert!(bat.len() > 1_000, "bat: {}", bat.len());
        assert_eq!(bat.name, "bat");
        let veh = vehicle_dataset_sized(1, 5);
        assert!(veh.len() > 500, "vehicle: {}", veh.len());
        let syn = synthetic_dataset_sized(1, 2_000);
        assert_eq!(syn.len(), 2_000);
    }

    #[test]
    fn datasets_are_deterministic() {
        assert_eq!(bat_dataset_sized(3, 1, 1), bat_dataset_sized(3, 1, 1));
        assert_eq!(vehicle_dataset_sized(3, 2), vehicle_dataset_sized(3, 2));
        assert_eq!(
            synthetic_dataset_sized(3, 500),
            synthetic_dataset_sized(3, 500)
        );
    }

    #[test]
    fn streams_are_time_ordered() {
        for trace in [
            bat_dataset_sized(2, 2, 2),
            vehicle_dataset_sized(2, 4),
            synthetic_dataset_sized(2, 1_000),
        ] {
            assert!(
                trace.points.windows(2).all(|w| w[0].t <= w[1].t),
                "{} not ordered",
                trace.name
            );
        }
    }

    #[test]
    fn tolerance_sweeps_match_paper_ranges() {
        assert_eq!(BAT_TOLERANCES.first(), Some(&2.0));
        assert_eq!(BAT_TOLERANCES.last(), Some(&20.0));
        assert_eq!(VEHICLE_TOLERANCES.first(), Some(&5.0));
        assert_eq!(VEHICLE_TOLERANCES.last(), Some(&50.0));
    }

    /// Full-size generation is what the benches use; make sure the scale is
    /// in the paper's ballpark. Marked `ignore` for ordinary test runs —
    /// executed explicitly by CI / the bench harness.
    #[test]
    #[ignore = "full-size dataset generation (~1 s); run with --ignored"]
    fn full_size_counts_match_paper_corpus() {
        let bat = bat_dataset(42);
        let veh = vehicle_dataset(42);
        let total = bat.len() + veh.len();
        assert!(
            (100_000..200_000).contains(&total),
            "combined field corpus {total} outside the paper's ±45% band (138,798)"
        );
        let syn = synthetic_dataset(42);
        assert_eq!(syn.len(), 30_000);
    }
}
