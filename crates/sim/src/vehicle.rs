//! Vehicle trajectory model — the substitute for the paper's dashboard
//! Camazotz trace (see DESIGN.md §2).
//!
//! Trips are routed on a synthetic grid road network, which reproduces the
//! two properties the paper attributes to the car data: headings are
//! **road-constrained** (long straight runs, no abrupt meandering → higher
//! pruning power than the bat data) and the **spatial scale is larger**
//! (trips from a few km up to highway length, 60–100 km/h), which is why
//! the paper evaluates the vehicle dataset at larger tolerances (5–50 m).

use crate::trace::Trace;
use bqs_geo::{Point2, TimedPoint};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Configuration of the vehicle model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleModelConfig {
    /// Number of trips to simulate.
    pub trips: usize,
    /// GPS sampling interval in seconds.
    pub sample_interval: f64,
    /// Road-grid spacing in metres.
    pub grid_spacing: f64,
    /// Number of grid cells per side (the city is
    /// `grid_cells × grid_spacing` on each axis).
    pub grid_cells: usize,
    /// Cruise speed range `(min, max)` in m/s (defaults 60–100 km/h).
    pub speed_range: (f64, f64),
    /// Within-leg speed jitter standard deviation, m/s.
    pub speed_jitter: f64,
    /// Seconds of idling recorded at each trip end (parking, lights).
    pub idle_time: f64,
}

impl Default for VehicleModelConfig {
    fn default() -> Self {
        VehicleModelConfig {
            trips: 60,
            sample_interval: 5.0,
            grid_spacing: 500.0,
            grid_cells: 80, // 40 km × 40 km city
            speed_range: (16.7, 27.8),
            speed_jitter: 1.2,
            idle_time: 120.0,
        }
    }
}

/// The vehicle trajectory generator.
#[derive(Debug, Clone)]
pub struct VehicleModel {
    config: VehicleModelConfig,
}

impl VehicleModel {
    /// Creates a model; panics on degenerate configuration.
    pub fn new(config: VehicleModelConfig) -> VehicleModel {
        assert!(config.sample_interval > 0.0);
        assert!(config.grid_spacing > 0.0);
        assert!(config.grid_cells >= 2);
        assert!(config.speed_range.0 > 0.0 && config.speed_range.1 >= config.speed_range.0);
        VehicleModel { config }
    }

    /// Generates all trips as one time-ordered trace (gaps between trips).
    pub fn generate(&self, seed: u64) -> Trace {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::new();
        let mut t = 0.0f64;
        for _ in 0..c.trips {
            self.simulate_trip(&mut rng, &mut points, &mut t);
            t += 1_800.0; // parked between trips, logger off
        }
        Trace::new("vehicle", points)
    }

    /// A trip is a rectilinear route through grid intersections: a sequence
    /// of axis-aligned legs with a few intermediate turns.
    fn simulate_trip(&self, rng: &mut StdRng, points: &mut Vec<TimedPoint>, t: &mut f64) {
        let c = &self.config;
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let jitter = Normal::new(0.0, c.speed_jitter).expect("valid normal");

        let intersection = |rng: &mut StdRng| -> (i64, i64) {
            (
                rng.random_range(0..c.grid_cells as i64),
                rng.random_range(0..c.grid_cells as i64),
            )
        };
        let to_point =
            |(i, j): (i64, i64)| Point2::new(i as f64 * c.grid_spacing, j as f64 * c.grid_spacing);

        let (mut gx, mut gy) = intersection(rng);
        let (dest_x, dest_y) = intersection(rng);
        let mut pos = to_point((gx, gy));

        // Idle at the origin.
        self.idle(points, t, pos);

        // Route with up to 4 intermediate waypoints to avoid one giant L.
        let mut waypoints: Vec<(i64, i64)> = Vec::new();
        let detours = rng.random_range(0..=3usize);
        for _ in 0..detours {
            waypoints.push(intersection(rng));
        }
        waypoints.push((dest_x, dest_y));

        for (wx, wy) in waypoints {
            // Manhattan leg: x first or y first, randomly.
            let legs: [(i64, i64); 2] = if rng.random_bool(0.5) {
                [(wx, gy), (wx, wy)]
            } else {
                [(gx, wy), (wx, wy)]
            };
            for (lx, ly) in legs {
                let target = to_point((lx, ly));
                self.drive(rng, points, t, &mut pos, target, &jitter);
                (gx, gy) = (lx, ly);
            }
        }

        // Idle at the destination.
        self.idle(points, t, pos);
    }

    /// Straight axis-aligned run at cruise speed with small jitter.
    fn drive(
        &self,
        rng: &mut StdRng,
        points: &mut Vec<TimedPoint>,
        t: &mut f64,
        pos: &mut Point2,
        target: Point2,
        jitter: &Normal<f64>,
    ) {
        let c = &self.config;
        let cruise = rng.random_range(c.speed_range.0..=c.speed_range.1);
        let total = pos.distance(target);
        if total < 1e-9 {
            return;
        }
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: distinct points
        let dir = (target - *pos).normalized().expect("distinct points");
        let mut travelled = 0.0f64;
        while travelled < total {
            let speed = (cruise + jitter.sample(rng)).clamp(5.0, c.speed_range.1 + 4.0);
            travelled = (travelled + speed * c.sample_interval).min(total);
            *pos = target - dir * (total - travelled);
            *t += c.sample_interval;
            points.push(TimedPoint::at(*pos, *t));
        }
    }

    /// Stationary fixes at a trip end.
    fn idle(&self, points: &mut Vec<TimedPoint>, t: &mut f64, pos: Point2) {
        let steps = (self.config.idle_time / self.config.sample_interval) as usize;
        for _ in 0..steps {
            *t += self.config.sample_interval;
            points.push(TimedPoint::at(pos, *t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VehicleModelConfig {
        VehicleModelConfig {
            trips: 3,
            ..VehicleModelConfig::default()
        }
    }

    #[test]
    fn generates_time_ordered_points() {
        let trace = VehicleModel::new(small()).generate(1);
        assert!(trace.len() > 100);
        assert!(trace.points.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn headings_are_axis_aligned_while_moving() {
        let c = small();
        let trace = VehicleModel::new(c).generate(2);
        let mut off_axis = 0usize;
        let mut moving = 0usize;
        for w in trace.points.windows(2) {
            // Skip gaps between trips (logger off while parked).
            if w[1].t - w[0].t > c.sample_interval * 1.5 {
                continue;
            }
            let d = w[1].pos - w[0].pos;
            if d.norm() > 1.0 {
                moving += 1;
                let ax = d.x.abs();
                let ay = d.y.abs();
                if ax.min(ay) > 1e-6 * ax.max(ay) {
                    off_axis += 1;
                }
            }
        }
        assert!(moving > 50);
        assert_eq!(off_axis, 0, "grid traffic must move along axes");
    }

    #[test]
    fn speeds_in_configured_band() {
        let c = small();
        let trace = VehicleModel::new(c).generate(3);
        for w in trace.points.windows(2) {
            if let Some(s) = w[0].speed_to(w[1]) {
                if s > 1.0 {
                    assert!(
                        s <= c.speed_range.1 + 5.0,
                        "speed {s} m/s above configured band"
                    );
                }
            }
        }
    }

    #[test]
    fn positions_stay_on_the_map() {
        let c = small();
        let trace = VehicleModel::new(c).generate(4);
        let side = c.grid_cells as f64 * c.grid_spacing;
        for p in &trace.points {
            assert!(p.pos.x >= -1.0 && p.pos.x <= side + 1.0);
            assert!(p.pos.y >= -1.0 && p.pos.y <= side + 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = VehicleModel::new(small());
        assert_eq!(m.generate(5), m.generate(5));
        assert_ne!(m.generate(5).points, m.generate(6).points);
    }

    #[test]
    fn idle_periods_present() {
        let trace = VehicleModel::new(small()).generate(7);
        let stationary = trace
            .points
            .windows(2)
            .filter(|w| w[0].pos.distance(w[1].pos) < 1e-9)
            .count();
        assert!(stationary >= 20, "idling fixes missing: {stationary}");
    }

    #[test]
    fn larger_scale_than_bat_trips() {
        let trace = VehicleModel::new(VehicleModelConfig {
            trips: 10,
            ..VehicleModelConfig::default()
        })
        .generate(8);
        let bb = trace.bounding_box().unwrap();
        assert!(bb.width().max(bb.height()) > 10_000.0, "{bb:?}");
    }
}
