//! Trace containers and (de)serialisation.

use bqs_geo::{path_length, Point2, Rect, TimedPoint};
use serde::{Deserialize, Serialize};

/// A named point stream with summary statistics — the unit every generator
/// produces and every experiment consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable dataset name ("bat", "vehicle", "synthetic", ...).
    pub name: String,
    /// Sampled points ordered by timestamp.
    pub points: Vec<TimedPoint>,
}

impl Trace {
    /// Creates a trace; points must be time-ordered (checked in debug
    /// builds).
    pub fn new(name: impl Into<String>, points: Vec<TimedPoint>) -> Trace {
        debug_assert!(
            points.windows(2).all(|w| w[0].t <= w[1].t),
            "trace points must be time-ordered"
        );
        Trace {
            name: name.into(),
            points,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the trace has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Positions only.
    pub fn positions(&self) -> Vec<Point2> {
        self.points.iter().map(|p| p.pos).collect()
    }

    /// Total travel distance in metres.
    pub fn travel_distance(&self) -> f64 {
        path_length(&self.positions())
    }

    /// Spatial bounding box, `None` when empty.
    pub fn bounding_box(&self) -> Option<Rect> {
        Rect::bounding(self.points.iter().map(|p| p.pos))
    }

    /// Time span `(first, last)` in seconds, `None` when empty.
    pub fn time_span(&self) -> Option<(f64, f64)> {
        Some((self.points.first()?.t, self.points.last()?.t))
    }

    /// Concatenates traces into one stream, offsetting timestamps so the
    /// combined stream stays time-ordered with `gap_seconds` between parts —
    /// the paper "combine\[s\] all the data points into a single data stream"
    /// for its experiments.
    pub fn concatenate(name: impl Into<String>, parts: &[Trace], gap_seconds: f64) -> Trace {
        let mut points = Vec::with_capacity(parts.iter().map(Trace::len).sum());
        let mut offset = 0.0f64;
        for part in parts {
            if part.is_empty() {
                continue;
            }
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: non-empty
            let (t0, t1) = part.time_span().expect("non-empty");
            let shift = offset - t0;
            points.extend(
                part.points
                    .iter()
                    .map(|p| TimedPoint::at(p.pos, p.t + shift)),
            );
            offset += (t1 - t0) + gap_seconds;
        }
        Trace::new(name, points)
    }

    /// Splits the trace into trips at sampling gaps longer than
    /// `gap_seconds` — the inverse of [`Trace::concatenate`], used to
    /// recover per-night/per-trip structure from a combined stream (the
    /// logger is off between trips, so gaps mark boundaries).
    pub fn split_at_gaps(&self, gap_seconds: f64) -> Vec<Trace> {
        let mut out = Vec::new();
        let mut current: Vec<TimedPoint> = Vec::new();
        for p in &self.points {
            if let Some(last) = current.last() {
                if p.t - last.t > gap_seconds {
                    out.push(Trace::new(
                        format!("{}#{}", self.name, out.len()),
                        std::mem::take(&mut current),
                    ));
                }
            }
            current.push(*p);
        }
        if !current.is_empty() {
            out.push(Trace::new(format!("{}#{}", self.name, out.len()), current));
        }
        out
    }

    /// Serialises to a compact CSV (`x,y,t` per line) for external plotting
    /// (Fig. 8a).
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(self.points.len() * 24);
        s.push_str("x,y,t\n");
        for p in &self.points {
            s.push_str(&format!("{:.3},{:.3},{:.3}\n", p.pos.x, p.pos.y, p.t));
        }
        s
    }

    /// Parses the CSV format produced by [`Trace::to_csv`].
    pub fn from_csv(name: impl Into<String>, csv: &str) -> Result<Trace, String> {
        let mut points = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            if lineno == 0 && line.starts_with('x') {
                continue; // header
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let mut next = |what: &str| -> Result<f64, String> {
                fields
                    .next()
                    .ok_or_else(|| format!("line {}: missing {what}", lineno + 1))?
                    .trim()
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
            };
            let x = next("x")?;
            let y = next("y")?;
            let t = next("t")?;
            points.push(TimedPoint::new(x, y, t));
        }
        Ok(Trace::new(name, points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "sample",
            vec![
                TimedPoint::new(0.0, 0.0, 0.0),
                TimedPoint::new(30.0, 40.0, 60.0),
                TimedPoint::new(30.0, 100.0, 120.0),
            ],
        )
    }

    #[test]
    fn summary_statistics() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.travel_distance(), 50.0 + 60.0);
        assert_eq!(t.time_span(), Some((0.0, 120.0)));
        let bb = t.bounding_box().unwrap();
        assert_eq!(bb.min, Point2::new(0.0, 0.0));
        assert_eq!(bb.max, Point2::new(30.0, 100.0));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("empty", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.travel_distance(), 0.0);
        assert_eq!(t.bounding_box(), None);
        assert_eq!(t.time_span(), None);
    }

    #[test]
    fn concatenation_preserves_order_and_counts() {
        let a = sample();
        let b = sample();
        let c = Trace::concatenate("both", &[a.clone(), b], 300.0);
        assert_eq!(c.len(), 6);
        assert!(c.points.windows(2).all(|w| w[0].t <= w[1].t));
        // Second part starts one gap after the first ends.
        assert_eq!(c.points[3].t, 120.0 + 300.0);
    }

    #[test]
    fn concatenation_skips_empty_parts() {
        let c = Trace::concatenate(
            "x",
            &[Trace::new("e", vec![]), sample(), Trace::new("e2", vec![])],
            60.0,
        );
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn split_at_gaps_recovers_parts() {
        let a = sample();
        let b = sample();
        let combined = Trace::concatenate("both", &[a.clone(), b.clone()], 600.0);
        let parts = combined.split_at_gaps(300.0);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), a.len());
        assert_eq!(parts[1].len(), b.len());
        // No gap larger than the threshold: one part.
        assert_eq!(sample().split_at_gaps(100.0).len(), 1);
        // Empty trace: no parts.
        assert!(Trace::new("e", vec![]).split_at_gaps(10.0).is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let t = sample();
        let csv = t.to_csv();
        let back = Trace::from_csv("sample", &csv).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.points.iter().zip(back.points.iter()) {
            assert!(a.pos.distance(b.pos) < 1e-3);
            assert!((a.t - b.t).abs() < 1e-3);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(Trace::from_csv("bad", "x,y,t\n1.0,zzz,3.0\n").is_err());
        assert!(Trace::from_csv("bad", "x,y,t\n1.0\n").is_err());
        // Blank lines are fine.
        assert!(Trace::from_csv("ok", "x,y,t\n\n1,2,3\n").is_ok());
    }
}
