//! Flying-fox (megabat) trajectory model — the substitute for the paper's
//! field dataset from Camazotz collars on *Pteropus* (see DESIGN.md §2).
//!
//! The model reproduces the properties the paper attributes to the bat
//! data: trips of roughly 10 km between a roost and foraging sites, common
//! cruise speed ≈ 35 km/h with bursts towards 50 km/h, unconstrained 3-D
//! flight (meandering headings — low angular regularity), and long
//! stationary periods (roosting, foraging) during which GPS jitter makes
//! points "easily discardable" — the reason the paper's compression rates
//! are *better* on bats than on cars despite *lower* pruning power.

use crate::trace::Trace;
use crate::von_mises::VonMises;
use bqs_geo::{Point2, TimedPoint, Vec2};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Exp, Normal};

/// Configuration of the bat model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatModelConfig {
    /// Number of nights to simulate.
    pub nights: usize,
    /// GPS sampling interval in seconds.
    pub sample_interval: f64,
    /// Roost location in the metric frame.
    pub roost: Point2,
    /// Mean distance from the roost to a foraging site, metres.
    pub mean_site_distance: f64,
    /// Cruise speed mean, m/s (≈ 9.7 m/s = 35 km/h).
    pub cruise_speed_mean: f64,
    /// Cruise speed standard deviation, m/s.
    pub cruise_speed_sd: f64,
    /// Hard cap on speed, m/s (≈ 13.9 m/s = 50 km/h).
    pub max_speed: f64,
    /// Von Mises concentration of the heading around the bearing to the
    /// target — low values give the meandering flight of an unconstrained
    /// animal.
    pub heading_kappa: f64,
    /// Mean dwell time at a foraging site, seconds.
    pub mean_dwell: f64,
    /// Positional jitter while dwelling (distinct from GPS noise: the
    /// animal really moves within the tree canopy), metres.
    pub dwell_jitter: f64,
    /// Seconds of roost dwell recorded before and after the night's trip.
    pub roost_dwell: f64,
    /// GPS sampling interval while stationary, seconds. Camazotz
    /// duty-cycles the GPS with activity detection (Jurdak et al. 2013), so
    /// dwell periods are sampled far more sparsely than flight.
    pub dwell_sample_interval: f64,
    /// Number of preferred foraging sites the animal rotates between.
    /// Flying foxes show strong site fidelity, which is what makes the
    /// store's merging procedure (§V-F) effective on repeated commutes.
    pub preferred_sites: usize,
}

impl Default for BatModelConfig {
    fn default() -> Self {
        BatModelConfig {
            nights: 30,
            sample_interval: 5.0,
            roost: Point2::new(5_000.0, 5_000.0),
            mean_site_distance: 4_000.0,
            cruise_speed_mean: 9.7,
            cruise_speed_sd: 1.4,
            max_speed: 13.9,
            heading_kappa: 3000.0,
            mean_dwell: 1_500.0,
            dwell_jitter: 1.2,
            roost_dwell: 1_200.0,
            dwell_sample_interval: 60.0,
            preferred_sites: 4,
        }
    }
}

/// The bat trajectory generator.
#[derive(Debug, Clone)]
pub struct BatModel {
    config: BatModelConfig,
}

impl BatModel {
    /// Creates a model; panics on non-positive intervals or speeds.
    pub fn new(config: BatModelConfig) -> BatModel {
        assert!(config.sample_interval > 0.0);
        assert!(config.cruise_speed_mean > 0.0);
        assert!(config.max_speed >= config.cruise_speed_mean);
        assert!(config.mean_site_distance > 0.0);
        assert!(config.preferred_sites >= 1);
        BatModel { config }
    }

    /// Generates `nights` of data as one time-ordered trace.
    pub fn generate(&self, seed: u64) -> Trace {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::new();
        let mut t = 0.0f64;

        // The animal's home range: a fixed repertoire of foraging sites it
        // keeps returning to across nights.
        let sites: Vec<Point2> = (0..c.preferred_sites)
            .map(|_| {
                let bearing = rng.random_range(-std::f64::consts::PI..std::f64::consts::PI);
                let dist = c.mean_site_distance * rng.random_range(0.5..1.5);
                c.roost + Vec2::from_angle(bearing) * dist
            })
            .collect();

        for _night in 0..c.nights {
            self.simulate_night(&mut rng, &mut points, &mut t, &sites);
            // Daytime gap between nights (no fixes while the logger sleeps).
            t += 8.0 * 3600.0;
        }
        Trace::new("bat", points)
    }

    fn simulate_night(
        &self,
        rng: &mut StdRng,
        points: &mut Vec<TimedPoint>,
        t: &mut f64,
        sites: &[Point2],
    ) {
        let c = &self.config;
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let heading_noise = VonMises::new(0.0, c.heading_kappa).expect("valid von Mises");
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let dwell_dist = Exp::new(1.0 / c.mean_dwell).expect("positive rate");
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let speed_dist = Normal::new(c.cruise_speed_mean, c.cruise_speed_sd).expect("valid normal");
        // bqs-analyze: allow(no-unwrap-in-lib) — distribution parameters come from a validated config
        let jitter = Normal::new(0.0, c.dwell_jitter).expect("valid normal");

        let mut pos = c.roost;

        // Evening roost dwell.
        self.dwell(rng, points, t, &mut pos, c.roost_dwell, &jitter);

        // Visit 1–3 of the preferred foraging sites, then return. A small
        // positional wobble models landing in a different tree of the same
        // patch.
        let visits = rng.random_range(1..=3usize.min(sites.len()));
        let mut targets: Vec<Point2> = (0..visits)
            .map(|_| {
                let site = sites[rng.random_range(0..sites.len())];
                site + Vec2::new(rng.random_range(-10.0..10.0), rng.random_range(-10.0..10.0))
            })
            .collect();
        targets.push(c.roost);

        for target in targets {
            self.fly(
                rng,
                points,
                t,
                &mut pos,
                target,
                &heading_noise,
                &speed_dist,
            );
            let dwell_time = dwell_dist.sample(rng).clamp(300.0, 4.0 * c.mean_dwell);
            self.dwell(rng, points, t, &mut pos, dwell_time, &jitter);
        }

        // Morning roost dwell.
        self.dwell(rng, points, t, &mut pos, c.roost_dwell, &jitter);
    }

    /// Meandering flight towards `target`; emits one fix per interval.
    #[allow(clippy::too_many_arguments)]
    fn fly(
        &self,
        rng: &mut StdRng,
        points: &mut Vec<TimedPoint>,
        t: &mut f64,
        pos: &mut Point2,
        target: Point2,
        heading_noise: &VonMises,
        speed_dist: &Normal<f64>,
    ) {
        let c = &self.config;
        let arrival_radius = 60.0;
        // Guard against unreachable targets: cap leg duration generously.
        let max_steps =
            ((pos.distance(target) / c.cruise_speed_mean / c.sample_interval) * 4.0) as usize + 50;
        for _ in 0..max_steps {
            if pos.distance(target) <= arrival_radius {
                break;
            }
            let bearing = (target - *pos).angle();
            let heading = bearing + heading_noise.sample(rng);
            let speed = speed_dist.sample(rng).clamp(4.0, c.max_speed);
            let step = Vec2::from_angle(heading) * speed * c.sample_interval;
            // Never overshoot the target by more than a step.
            *pos = if step.norm() >= pos.distance(target) {
                target
            } else {
                *pos + step
            };
            *t += c.sample_interval;
            points.push(TimedPoint::at(*pos, *t));
        }
    }

    /// Stationary period with canopy jitter around the arrival position.
    fn dwell(
        &self,
        rng: &mut StdRng,
        points: &mut Vec<TimedPoint>,
        t: &mut f64,
        pos: &mut Point2,
        duration: f64,
        jitter: &Normal<f64>,
    ) {
        let c = &self.config;
        let center = *pos;
        let steps = (duration / c.dwell_sample_interval) as usize;
        for _ in 0..steps {
            *t += c.dwell_sample_interval;
            let p = center + Vec2::new(jitter.sample(rng), jitter.sample(rng));
            *pos = p;
            points.push(TimedPoint::at(p, *t));
        }
        *pos = center;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BatModelConfig {
        BatModelConfig {
            nights: 2,
            ..BatModelConfig::default()
        }
    }

    #[test]
    fn generates_time_ordered_points() {
        let trace = BatModel::new(small()).generate(1);
        assert!(trace.len() > 300);
        assert!(trace.points.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn speeds_respect_the_cap() {
        let c = small();
        let trace = BatModel::new(c).generate(2);
        for w in trace.points.windows(2) {
            if let Some(s) = w[0].speed_to(w[1]) {
                assert!(s <= c.max_speed + 1.5, "speed {s} m/s"); // jitter slack
            }
        }
    }

    #[test]
    fn trips_reach_several_kilometres() {
        let c = small();
        let trace = BatModel::new(c).generate(3);
        let max_excursion = trace
            .points
            .iter()
            .map(|p| p.pos.distance(c.roost))
            .fold(0.0f64, f64::max);
        assert!(
            max_excursion > c.mean_site_distance * 0.4,
            "excursion {max_excursion} m too small"
        );
    }

    #[test]
    fn substantial_stationary_fraction() {
        let trace = BatModel::new(small()).generate(4);
        let slow = trace
            .points
            .windows(2)
            .filter(|w| w[0].speed_to(w[1]).is_some_and(|s| s < 2.0))
            .count();
        let frac = slow as f64 / trace.len() as f64;
        assert!(
            frac > 0.15,
            "stationary fraction {frac} too low for a roosting animal"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let m = BatModel::new(small());
        assert_eq!(m.generate(9), m.generate(9));
        assert_ne!(m.generate(9).points, m.generate(10).points);
    }

    #[test]
    fn returns_to_roost_each_night() {
        let c = small();
        let trace = BatModel::new(c).generate(5);
        // The last fix of the night is a roost dwell around the roost.
        let last = trace.points.last().unwrap();
        assert!(last.pos.distance(c.roost) < 200.0, "{:?}", last.pos);
    }

    #[test]
    fn night_count_scales_output() {
        let two = BatModel::new(small()).generate(6).len();
        let four = BatModel::new(BatModelConfig {
            nights: 4,
            ..BatModelConfig::default()
        })
        .generate(6)
        .len();
        assert!(
            four > two + two / 2,
            "four nights {four} vs two nights {two}"
        );
    }
}
