//! Offline stand-in for `proptest` (API subset).
//!
//! Implements the slice of proptest the workspace's property tests use:
//! range and tuple strategies, `prop_map` / `prop_filter`,
//! `collection::vec`, the `proptest!` macro with `#![proptest_config]`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differences from the real crate: no shrinking (a failing case
//! panics with the generated values left to the assertion message), and
//! generation is deterministic per test name (seeded by FNV-1a of the test
//! path, so failures reproduce across runs).

/// Runtime configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of a single generated case (used by the macros; not part of the
/// real proptest surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The case ran to completion.
    Pass,
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
}

/// The deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one case of one test, seeded from the test path and
    /// the case index so runs are reproducible.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, n)` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value; `None` when a filter rejected the draw.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing a predicate. `reason` is kept for diagnostics
    /// parity with the real crate.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            _reason: reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    _reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// Always-`value` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                if self.end <= self.start {
                    return None;
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                Some(self.start.wrapping_add((u128::from(rng.next_u64()) % span) as $t))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                if hi < lo {
                    return None;
                }
                let span = (hi as i128 - lo as i128) as u128 + 1;
                Some(lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t))
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                if self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less) {
                    return None;
                }
                Some(self.start + (rng.next_f64() as $t) * (self.end - self.start))
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s whose length is drawn from `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.sizes.clone().generate(rng)?;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, CaseOutcome,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property; panics with the formatted message
/// (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::CaseOutcome::Reject;
        }
    };
}

/// Defines property tests over strategies (see module docs for the
/// supported grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1_000);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempts,
                    );
                    $(
                        let $arg = match $crate::Strategy::generate(&($strat), &mut rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => continue,
                        };
                    )+
                    let case = || {
                        $body
                        $crate::CaseOutcome::Pass
                    };
                    let outcome: $crate::CaseOutcome = case();
                    if let $crate::CaseOutcome::Pass = outcome {
                        accepted += 1;
                    }
                }
                assert!(
                    accepted >= config.cases.min(max_attempts) / 2,
                    "input generation rejected too often: {accepted} accepted in {attempts} attempts"
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("shim", 1);
        let s = (0usize..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng).unwrap();
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn filters_reject() {
        let mut rng = crate::TestRng::for_case("shim-filter", 1);
        let s = (0u64..2).prop_filter("odd only", |v| v % 2 == 1);
        let draws: Vec<_> = (0..50)
            .map(|_| crate::Strategy::generate(&s, &mut rng))
            .collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().flatten().all(|v| *v == 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_drives_cases(x in 1u32..100, y in 0.0f64..1.0) {
            prop_assume!(x > 1);
            prop_assert!(x >= 2);
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_len_in_range(v in crate::collection::vec((0u8..8, 0.0f64..1.0), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
