//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derives so `use serde::{Serialize, Deserialize}`
//! and `#[derive(Serialize, Deserialize)]` compile without network access.
//! The marker traits exist so generic bounds (`T: Serialize`) also compile;
//! they carry no methods and no impls are generated.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::ser::Serialize` (no-op shim).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::de::Deserialize` (no-op shim).
pub trait DeserializeMarker {}
