//! Offline stand-in for `criterion` (API subset).
//!
//! The benches in `crates/bench` compile against this shim and produce
//! honest wall-clock numbers (adaptive batching, best-of-N samples, median
//! reported), just without criterion's statistics, plots, or baselines.
//! Output format: `name ... time: <ns>/iter (<samples> samples)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Parses CLI arguments. The shim accepts and ignores everything
    /// (`--bench`, filters, …) so `cargo bench` flag plumbing works.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the throughput of one iteration (recorded for the report
    /// line; the shim prints elements/sec for element throughputs).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut g);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units processed per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Measures a closure under test.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Nanoseconds per iteration for the completed measurement.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, batching iterations until a sample is long enough to
    /// trust the clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: double the batch until one
        // batch takes at least SAMPLE_TARGET.
        let mut batch: u64 = 1;
        let elapsed = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || batch >= 1 << 30 {
                break elapsed;
            }
            // Aim straight for the target from the observed rate.
            let scale =
                (SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(2.0, 1024.0);
            batch = (batch as f64 * scale) as u64;
        };
        self.ns_per_iter = elapsed.as_secs_f64() * 1e9 / batch as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut best = f64::INFINITY;
    let mut all: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher::default();
        f(&mut b);
        best = best.min(b.ns_per_iter);
        all.push(b.ns_per_iter);
    }
    all.sort_by(f64::total_cmp);
    let median = all[all.len() / 2];
    println!(
        "{name:<50} time: median {median:>12.1} ns/iter, best {best:>12.1} ns/iter ({} samples)",
        all.len()
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        g.finish();
    }
}
