//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a no-op derive: `#[derive(Serialize, Deserialize)]`
//! compiles (including `#[serde(...)]` helper attributes) but emits no
//! impls. Nothing in the workspace serializes at runtime yet; when a real
//! wire format lands, this shim is replaced by the real crate.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
