//! Offline stand-in for `rand_distr` (API subset).
//!
//! Provides the three continuous distributions the trace simulators draw
//! from — [`Normal`] (Box–Muller), [`Exp`] (inverse CDF) and [`LogNormal`]
//! — behind the same `Distribution` trait as the vendored `rand` shim.

pub use rand::distr::{Distribution, Error};
use rand::Rng;

/// Normal (Gaussian) distribution. Generic like the real crate's
/// `Normal<F>`, but only `f64` is implemented.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// `Err` for a negative or non-finite standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal<f64>, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error);
        }
        Ok(Normal { mean, std_dev })
    }

    /// Draws a standard-normal variate via Box–Muller.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Guard the log: u1 ∈ (0, 1].
        let u1 = 1.0 - rng.random_f64();
        let u2 = rng.random_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Normal::standard(rng)
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// `Err` for a non-positive or non-finite rate.
    pub fn new(lambda: f64) -> Result<Exp, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error);
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = 1.0 - rng.random_f64(); // (0, 1]
        -u.ln() / self.lambda
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    inner: Normal<f64>,
}

impl LogNormal {
    /// `Err` for a negative or non-finite `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, Error> {
        Ok(LogNormal {
            inner: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(3.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = Exp::new(0.25).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = moments(&xs);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!(xs.iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = LogNormal::new(0.0, 0.5).unwrap();
        assert!((0..10_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
    }
}
