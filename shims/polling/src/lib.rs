//! Offline stand-in for the readiness-polling API subset this workspace
//! uses: one [`Poller`] multiplexing many non-blocking sockets.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the minimal surface the `bqs-net` I/O pool needs — register a raw
//! socket under a `usize` key with a read/write interest, then block in
//! [`Poller::wait`] until any registered socket is ready (or a timeout
//! elapses). Three backends, picked at [`Poller::new`] time:
//!
//! * **epoll** (Linux) — level-triggered `epoll_create1`/`epoll_ctl`/
//!   `epoll_wait` through a minimal `extern "C"` shim. No `libc` crate:
//!   `std` already links the platform libc, so the symbols resolve.
//! * **kqueue** (macOS) — `kqueue`/`kevent` with `EVFILT_READ`/
//!   `EVFILT_WRITE`, also level-triggered.
//! * **fallback** (anywhere) — a portable round-robin scheduler that
//!   reports *every* registered source ready on each tick after a short
//!   sleep. Callers must therefore treat readiness as a hint and handle
//!   `WouldBlock` from the actual I/O call — which they must anyway,
//!   because readiness notification is allowed to be spurious on every
//!   real OS too. [`Poller::with_fallback`] forces this backend so the
//!   portable path stays testable on any host.
//!
//! Semantics shared by all backends:
//!
//! * **Level-triggered** — a source with unconsumed readable data is
//!   reported again on the next [`Poller::wait`]; nothing is lost by
//!   draining only part of a socket per tick.
//! * **One key per source** — registering the same source twice is an
//!   error on the OS backends; use [`Poller::modify`] to change
//!   interest.
//! * **Errors/hang-ups surface as readiness** — a closed or failed
//!   source reports readable (and writable when write interest is set),
//!   so the owner discovers the condition from the I/O call's result.

#![deny(missing_docs)]

use std::io;
use std::time::Duration;

/// The raw OS handle a source is registered by.
#[cfg(unix)]
pub type RawSource = std::os::unix::io::RawFd;
/// The raw OS handle a source is registered by.
#[cfg(not(unix))]
pub type RawSource = u64;

/// The raw registration handle of a TCP stream on this platform.
pub fn source_of(stream: &std::net::TcpStream) -> RawSource {
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        use std::os::windows::io::AsRawSocket;
        stream.as_raw_socket()
    }
}

/// A readiness event: which registered key, and which directions are
/// ready. Also the *interest* shape passed to [`Poller::add`] /
/// [`Poller::modify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen key the source was registered under.
    pub key: usize,
    /// Readable (or closed/failed — read to find out).
    pub readable: bool,
    /// Writable (or failed — write to find out).
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    #[cfg(target_os = "macos")]
    Kqueue(kqueue::Kqueue),
    Fallback(fallback::Fallback),
}

/// A portable readiness poller over raw sockets. See the crate docs for
/// backend selection and semantics.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Opens a poller on the best backend this platform offers, falling
    /// back to the portable scheduler if the OS facility cannot be
    /// created (fd exhaustion, exotic kernels).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if let Ok(ep) = epoll::Epoll::new() {
                return Ok(Poller {
                    backend: Backend::Epoll(ep),
                });
            }
        }
        #[cfg(target_os = "macos")]
        {
            if let Ok(kq) = kqueue::Kqueue::new() {
                return Ok(Poller {
                    backend: Backend::Kqueue(kq),
                });
            }
        }
        Ok(Poller::with_fallback())
    }

    /// Opens a poller on the portable fallback backend, regardless of
    /// what the OS offers — the path tests force to stay portable.
    pub fn with_fallback() -> Poller {
        Poller {
            backend: Backend::Fallback(fallback::Fallback::new()),
        }
    }

    /// `true` when this poller runs the portable fallback (readiness is
    /// a round-robin hint, not an OS report).
    pub fn is_fallback(&self) -> bool {
        matches!(self.backend, Backend::Fallback(_))
    }

    /// Registers `source` under `interest.key` with the given interest.
    pub fn add(&self, source: RawSource, interest: Event) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(epoll::EPOLL_CTL_ADD, source, interest),
            #[cfg(target_os = "macos")]
            Backend::Kqueue(kq) => kq.set(source, interest),
            Backend::Fallback(fb) => fb.add(source, interest),
        }
    }

    /// Changes the interest of an already-registered `source`.
    pub fn modify(&self, source: RawSource, interest: Event) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(epoll::EPOLL_CTL_MOD, source, interest),
            #[cfg(target_os = "macos")]
            Backend::Kqueue(kq) => kq.set(source, interest),
            Backend::Fallback(fb) => fb.modify(source, interest),
        }
    }

    /// Removes `source` from the poller. Removing a source the poller
    /// no longer knows (e.g. already closed) is not an error.
    pub fn delete(&self, source: RawSource) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.delete(source),
            #[cfg(target_os = "macos")]
            Backend::Kqueue(kq) => kq.delete(source),
            Backend::Fallback(fb) => fb.delete(source),
        }
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// elapses (`None` = wait forever), clears `events` and fills it
    /// with the ready set. Returns the number of events delivered — 0
    /// means the timeout fired.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.wait(events, timeout),
            #[cfg(target_os = "macos")]
            Backend::Kqueue(kq) => kq.wait(events, timeout),
            Backend::Fallback(fb) => fb.wait(events, timeout),
        }
    }
}

/// The portable backend: a registry that reports everything ready on
/// each tick. A short sleep per [`Fallback::wait`] bounds the busy loop;
/// actual readiness is discovered by the caller's non-blocking I/O call
/// returning data or `WouldBlock`.
mod fallback {
    use super::{Event, RawSource};
    use std::collections::BTreeMap;
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    /// The tick the fallback sleeps before reporting everything ready —
    /// long enough not to spin a core, short enough to keep loopback
    /// latency invisible next to real work.
    const TICK: Duration = Duration::from_millis(1);

    pub(super) struct Fallback {
        sources: Mutex<BTreeMap<RawSource, Event>>,
    }

    impl Fallback {
        pub(super) fn new() -> Fallback {
            Fallback {
                sources: Mutex::new(BTreeMap::new()),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<RawSource, Event>> {
            self.sources
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        pub(super) fn add(&self, source: RawSource, interest: Event) -> io::Result<()> {
            match self.lock().insert(source, interest) {
                None => Ok(()),
                Some(_) => Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "source already registered",
                )),
            }
        }

        pub(super) fn modify(&self, source: RawSource, interest: Event) -> io::Result<()> {
            match self.lock().get_mut(&source) {
                Some(slot) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "source not registered",
                )),
            }
        }

        pub(super) fn delete(&self, source: RawSource) -> io::Result<()> {
            self.lock().remove(&source);
            Ok(())
        }

        pub(super) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let sleep = match timeout {
                Some(t) => t.min(TICK),
                None => TICK,
            };
            std::thread::sleep(sleep);
            for interest in self.lock().values() {
                if interest.readable || interest.writable {
                    events.push(*interest);
                }
            }
            Ok(events.len())
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{Event, RawSource};
    use std::io;
    use std::time::Duration;

    // x86_64 packs `epoll_event` to match the kernel ABI; every other
    // architecture uses natural alignment. Mirrors the declaration in
    // the platform libc.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub(super) const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    pub(super) const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Largest batch of events fetched per `epoll_wait` call.
    const MAX_EVENTS: usize = 1024;

    pub(super) struct Epoll {
        epfd: i32,
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers; the returned fd is checked below and owned by Epoll (closed in Drop).
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { epfd })
        }

        pub(super) fn ctl(&self, op: i32, fd: RawSource, interest: Event) -> io::Result<()> {
            let mut flags = EPOLLRDHUP;
            if interest.readable {
                flags |= EPOLLIN;
            }
            if interest.writable {
                flags |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events: flags,
                data: interest.key as u64,
            };
            // SAFETY: `ev` is a live &mut to a properly initialised epoll_event for the duration of the call; epfd/fd are plain ints the kernel validates.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn delete(&self, fd: RawSource) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // ENOENT/EBADF are fine: the source may already be closed,
            // which removes it from the epoll set implicitly.
            // SAFETY: as in ctl(): `ev` outlives the call (DEL ignores it on modern kernels but a valid pointer is passed anyway).
            let _ = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            Ok(())
        }

        pub(super) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n = loop {
                // SAFETY: `buf` is a stack array of MAX_EVENTS initialised epoll_events and we pass exactly that capacity; the kernel writes at most MAX_EVENTS entries and `n` is bounds-checked before the slice below.
                let n = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms)
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let flags = ev.events;
                let key = ev.data;
                events.push(Event {
                    key: key as usize,
                    readable: flags & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: flags & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: close(2) on an fd this struct exclusively owns; double-close is impossible because Drop runs once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(target_os = "macos")]
mod kqueue {
    use super::{Event, RawSource};
    use std::io;
    use std::time::Duration;

    #[repr(C)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut std::ffi::c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const KEvent,
            nchanges: i32,
            eventlist: *mut KEvent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_DISABLE: u16 = 0x0008;
    const EV_EOF: u16 = 0x8000;
    const EV_ERROR: u16 = 0x4000;

    const MAX_EVENTS: usize = 1024;

    pub(super) struct Kqueue {
        kq: i32,
    }

    impl Kqueue {
        pub(super) fn new() -> io::Result<Kqueue> {
            // SAFETY: kqueue takes no arguments; the returned fd is checked below and owned by Kqueue (closed in Drop).
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Kqueue { kq })
        }

        fn change(&self, ident: RawSource, filter: i16, flags: u16, key: usize) -> io::Result<()> {
            let ev = KEvent {
                ident: ident as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: key as *mut std::ffi::c_void,
            };
            // SAFETY: `ev` is a live, fully initialised KEvent for the duration of the call; the zero-length event list makes the out-pointer (null) unused.
            if unsafe { kevent(self.kq, &ev, 1, std::ptr::null_mut(), 0, std::ptr::null()) } < 0 {
                let err = io::Error::last_os_error();
                // Disabling or deleting a filter that was never added is
                // an ENOENT this API treats as success.
                if err.raw_os_error() == Some(2) && flags & (EV_DELETE | EV_DISABLE) != 0 {
                    return Ok(());
                }
                return Err(err);
            }
            Ok(())
        }

        /// Add-or-update both filters to match `interest` (kqueue has no
        /// separate add/modify: `EV_ADD` upserts).
        pub(super) fn set(&self, fd: RawSource, interest: Event) -> io::Result<()> {
            if interest.readable {
                self.change(fd, EVFILT_READ, EV_ADD, interest.key)?;
            } else {
                self.change(fd, EVFILT_READ, EV_ADD | EV_DISABLE, interest.key)?;
            }
            if interest.writable {
                self.change(fd, EVFILT_WRITE, EV_ADD, interest.key)?;
            } else {
                self.change(fd, EVFILT_WRITE, EV_ADD | EV_DISABLE, interest.key)?;
            }
            Ok(())
        }

        pub(super) fn delete(&self, fd: RawSource) -> io::Result<()> {
            let _ = self.change(fd, EVFILT_READ, EV_DELETE, 0);
            let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, 0);
            Ok(())
        }

        pub(super) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let ts = timeout.map(|t| Timespec {
                tv_sec: t.as_secs().min(i64::MAX as u64) as i64,
                tv_nsec: i64::from(t.subsec_nanos()),
            });
            let ts_ptr = ts
                .as_ref()
                .map_or(std::ptr::null(), |t| t as *const Timespec);
            let mut buf: Vec<KEvent> = Vec::with_capacity(MAX_EVENTS);
            let n = loop {
                // SAFETY: `buf` has capacity for MAX_EVENTS KEvents and exactly that capacity is passed; the kernel writes at most that many entries and only the written prefix is exposed (set_len below).
                let n = unsafe {
                    kevent(
                        self.kq,
                        std::ptr::null(),
                        0,
                        buf.as_mut_ptr(),
                        MAX_EVENTS as i32,
                        ts_ptr,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            // SAFETY: kevent returned n (≤ capacity) fully written entries just above, so the first n elements are initialised.
            unsafe { buf.set_len(n) };
            for ev in &buf {
                let eof = ev.flags & (EV_EOF | EV_ERROR) != 0;
                events.push(Event {
                    key: ev.udata as usize,
                    readable: ev.filter == EVFILT_READ || eof,
                    writable: ev.filter == EVFILT_WRITE || eof,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Kqueue {
        fn drop(&mut self) {
            // SAFETY: close(2) on an fd this struct exclusively owns; Drop runs once.
            unsafe {
                close(self.kq);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn os_backend_reports_readability_only_when_data_is_pending() {
        let poller = Poller::new().expect("poller");
        if poller.is_fallback() {
            return; // platform without an OS backend: covered below
        }
        let (mut a, b) = loopback_pair();
        b.set_nonblocking(true).unwrap();
        poller.add(source_of(&b), Event::readable(7)).unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "no data yet: timeout, not readiness");

        a.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data re-reports until consumed.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 8];
        let got = {
            let mut b = &b;
            b.read(&mut buf).unwrap()
        };
        assert_eq!(&buf[..got], b"ping");
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained: back to timeout");

        poller.delete(source_of(&b)).unwrap();
    }

    #[test]
    fn os_backend_write_interest_and_modify() {
        let poller = Poller::new().expect("poller");
        if poller.is_fallback() {
            return;
        }
        let (_a, b) = loopback_pair();
        b.set_nonblocking(true).unwrap();
        // A fresh socket with buffer space is immediately writable.
        poller.add(source_of(&b), Event::all(3)).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.key == 3 && e.writable));
        // Dropping write interest silences it.
        poller.modify(source_of(&b), Event::readable(3)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn fallback_reports_every_registered_source_as_a_hint() {
        let poller = Poller::with_fallback();
        assert!(poller.is_fallback());
        let (_a, b) = loopback_pair();
        let (_c, d) = loopback_pair();
        poller.add(source_of(&b), Event::readable(1)).unwrap();
        poller.add(source_of(&d), Event::all(2)).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 2, "fallback reports everything registered");
        let mut keys: Vec<usize> = events.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
        poller.delete(source_of(&b)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 2);
        // Double registration is refused, modify of a stranger too.
        assert!(poller.add(source_of(&d), Event::all(9)).is_err());
        assert!(poller.modify(source_of(&b), Event::all(9)).is_err());
    }

    #[test]
    fn fallback_wait_with_nothing_registered_times_out() {
        let poller = Poller::with_fallback();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0);
    }
}
