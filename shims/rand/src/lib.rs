//! Offline stand-in for `rand` (API subset).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of the `rand` 0.9 surface the simulators use: [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64 — deterministic across platforms),
//! [`SeedableRng::seed_from_u64`], [`Rng::sample`], and the
//! [`RngExt::random_range`] / [`RngExt::random_bool`] conveniences.
//!
//! The generator is *not* cryptographic and the integer range sampling uses
//! plain rejection-free reduction; both are fine for trace synthesis and
//! tests, which is all this workspace asks of them.

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws one value from a distribution.
    fn sample<T, D: distr::Distribution<T>>(&mut self, d: D) -> T {
        d.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Range-sampling conveniences (rand 0.9's `random_range`/`random_bool`).
pub trait RngExt: Rng {
    /// A uniform draw from a half-open or inclusive range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Scalar types with a uniform sampler over an interval.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// A uniform draw from `[low, high)`; `high` itself may be returned
    /// only when the interval is empty or a single point.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// A uniform draw from `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + rng.random_f64() * (high - low)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // The measure-zero endpoint distinction is irrelevant for f64.
        Self::sample_half_open(rng, low, high)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                if high <= low {
                    return low;
                }
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                if high <= low {
                    return low;
                }
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, seeded from a `u64` through SplitMix64 (the reference
    /// seeding procedure). Deterministic and fast; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Distributions usable with [`Rng::sample`].
pub mod distr {
    use super::Rng;

    /// A distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// Error constructing a distribution from invalid parameters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Error;

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid distribution parameters")
        }
    }

    impl std::error::Error for Error {}

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: super::SampleUniform> Uniform<T> {
        /// Builds the distribution; `Err` when `high < low` or a bound is
        /// not finite-comparable.
        pub fn new(low: T, high: T) -> Result<Uniform<T>, Error> {
            if low.partial_cmp(&high).is_none() || high < low {
                return Err(Error);
            }
            Ok(Uniform { low, high })
        }
    }

    impl<T: super::SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.low, self.high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.random_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.random_range(1..=3usize);
            assert!((1..=3).contains(&j));
        }
    }

    #[test]
    fn random_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
    }

    #[test]
    fn uniform_distribution_samples_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = super::distr::Uniform::new(-1.0f64, 1.0).unwrap();
        for _ in 0..1_000 {
            let x = rng.sample(u);
            assert!((-1.0..1.0).contains(&x));
        }
        assert!(super::distr::Uniform::new(1.0f64, -1.0).is_err());
    }
}
