//! Offline stand-in for `bytes` (API subset).
//!
//! [`BytesMut`] is an append buffer over `Vec<u8>`, [`Bytes`] an immutable
//! view with a read cursor. Integer accessors are big-endian, matching the
//! real crate's defaults, so encoded flash images stay byte-compatible if
//! the real dependency is restored.

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies out the next `dst.len()` bytes. Panics when too few remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable, append-only byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts into an immutable [`Bytes`] view.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte sequence with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into an owned sequence.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Wraps a static slice (copied here; the real crate borrows).
    pub fn from_static(src: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }

    /// Total length, including already-consumed bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_i32(-7);
        buf.put_u32(0xDEAD_BEEF);
        assert_eq!(buf.len(), 8);
        assert_eq!(buf[0..4], (-7i32).to_be_bytes());
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_i32(), -7);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn cursor_tracks_consumption() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let mut first = [0u8; 2];
        b.copy_to_slice(&mut first);
        assert_eq!(first, [1, 2]);
        assert_eq!(b.remaining(), 3);
    }
}
