//! End-to-end wildlife-tracker simulation: the paper's motivating scenario.
//!
//! A Camazotz collar on a flying fox samples GPS, compresses with the Fast
//! BQS (O(1) memory — verified live against the 4 KB RAM budget), stores
//! 12-byte records in its 50 KB flash budget, and offloads to a base
//! station whose trajectory store deduplicates repeated commutes (merging)
//! and later re-compresses history at a coarser tolerance (ageing).
//!
//! ```text
//! cargo run --release --example wildlife_tracker
//! ```

use bqs::core::stream::StreamCompressor;
use bqs::core::{BqsConfig, FastBqsCompressor};
use bqs::device::{
    estimate_operational_days, CamazotzSpec, FlashStorage, StorageError, GPS_RECORD_BYTES,
};
use bqs::geo::{LocationPoint, TimedPoint};
use bqs::sim::{BatModel, BatModelConfig};
use bqs::store::{StoreConfig, TrajectoryStore};

/// Maps the simulator's metric frame back to plausible WGS-84 around the
/// Brisbane field site so the 12-byte codec has something real to encode.
fn to_wgs84(p: TimedPoint) -> LocationPoint {
    let lat = -27.4698 + (p.pos.y - 5_000.0) / 111_320.0;
    let lon = 153.0251 + (p.pos.x - 5_000.0) / 98_300.0;
    LocationPoint::new(lat, lon, p.t)
}

fn main() {
    let spec = CamazotzSpec::paper();
    println!(
        "Camazotz platform: {} B RAM, {} KB flash ({} KB GPS budget)",
        spec.ram_bytes,
        spec.flash_bytes / 1024,
        spec.gps_budget_bytes / 1024
    );

    // --- On the animal -----------------------------------------------------
    let nights = 14;
    let trace = BatModel::new(BatModelConfig {
        nights,
        ..BatModelConfig::default()
    })
    .generate(7);
    println!("\n{} nights of tracking: {} GPS fixes", nights, trace.len());

    let tolerance = 10.0;
    let mut compressor = FastBqsCompressor::new(BqsConfig::new(tolerance).unwrap());
    let mut flash = FlashStorage::new(spec.gps_budget_bytes as usize);

    let mut kept: Vec<TimedPoint> = Vec::new();
    let mut peak_working_set = 0usize;
    let mut flash_full_at: Option<usize> = None;

    for (i, p) in trace.points.iter().enumerate() {
        let before = kept.len();
        compressor.push(*p, &mut kept);
        peak_working_set = peak_working_set.max(compressor.significant_point_count());

        // Newly finalised key points go straight to flash, like the device.
        for key in &kept[before..] {
            match flash.append(to_wgs84(*key)) {
                Ok(()) => {}
                Err(StorageError::Full) => {
                    flash_full_at.get_or_insert(i);
                }
                Err(e) => panic!("unexpected storage error: {e}"),
            }
        }
    }
    compressor.finish(&mut kept);
    if let Some(last) = kept.last() {
        let _ = flash.append(to_wgs84(*last));
    }

    let rate = kept.len() as f64 / trace.len() as f64;
    println!(
        "compressed to {} key points (rate {:.2}%)",
        kept.len(),
        rate * 100.0
    );
    println!(
        "peak working set: {} significant points ({} B of the {} B RAM)",
        peak_working_set,
        peak_working_set * 16,
        spec.ram_bytes
    );
    assert!(peak_working_set <= 32, "FBQS working-set claim violated");
    match flash_full_at {
        Some(i) => println!("flash budget filled at fix {i} — offload required"),
        None => println!(
            "flash holds {} records; {} free",
            flash.record_count(),
            flash.remaining_records()
        ),
    }
    println!(
        "estimated operational time at this rate: {} days",
        estimate_operational_days(rate).unwrap_or(0)
    );

    // --- At the base station ------------------------------------------------
    let offloaded = flash.read_all().expect("clean flash image");
    println!(
        "\noffloaded {} records ({} B)",
        offloaded.len(),
        offloaded.len() * GPS_RECORD_BYTES
    );

    // Project back into the metric frame and ingest into the store.
    let mut projector = bqs::geo::proj::TraceProjector::new();
    let keys: Vec<TimedPoint> = offloaded
        .iter()
        .map(|fix| projector.project(*fix).expect("valid fix"))
        .collect();

    let store = TrajectoryStore::new(StoreConfig {
        merge_tolerance: 60.0, // repeated commutes land within tens of metres
        ..StoreConfig::default()
    });
    // Split at night boundaries (the day-time gap) and insert per night so
    // repeated roost→site commutes can merge.
    let combined = bqs::sim::Trace::new("keys", keys.clone());
    let reports: Vec<_> = combined
        .split_at_gaps(4.0 * 3_600.0)
        .iter()
        .map(|night| store.insert_compressed(&night.points, tolerance))
        .collect();

    let stored: usize = reports.iter().map(|r| r.stored).sum();
    let merged: usize = reports.iter().map(|r| r.merged).sum();
    println!(
        "store ingest: {stored} new segments, {merged} merged into repeated paths \
         ({} distinct, total weight {})",
        store.segment_count(),
        store.total_weight()
    );

    // A second collar in the same colony follows the group along the same
    // flyways a few metres apart: its offload should mostly merge instead
    // of growing the store.
    let second_collar: Vec<TimedPoint> = keys
        .iter()
        .map(|k| TimedPoint::new(k.pos.x + 4.0, k.pos.y - 3.0, k.t + 30.0))
        .collect();
    let report = store.insert_compressed(&second_collar, tolerance);
    println!(
        "second collar, same flyways: {} merged, {} new (store still {} distinct segments)",
        report.merged,
        report.stored,
        store.segment_count()
    );

    // Months later: age the history at 3× the tolerance.
    let before = store.estimated_bytes();
    let report = store.age(3.0 * tolerance);
    println!(
        "ageing at {} m: {} → {} key points, {} B reclaimed (store now {} B, was {} B)",
        3.0 * tolerance,
        report.keys_before,
        report.keys_after,
        report.bytes_reclaimed,
        store.estimated_bytes(),
        before
    );
}
