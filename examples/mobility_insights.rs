//! Mobility insights from compressed data only — the paper's §VII vision:
//! waypoint discovery, next-destination prediction, trip-duration
//! estimation, and an event-driven offload feasibility check.
//!
//! Everything here runs on **key points**, i.e. after compression: the
//! point of error-bounded compression is that the interesting structure
//! (where the animal goes, when, for how long) survives at 1–5 % of the
//! storage.
//!
//! ```text
//! cargo run --release --example mobility_insights
//! ```

use bqs::core::stream::compress_all;
use bqs::core::{BqsConfig, FastBqsCompressor};
use bqs::device::{simulate_offload, CamazotzSpec};
use bqs::sim::{BatModel, BatModelConfig};
use bqs::store::waypoints::{discover, WaypointConfig};

fn main() {
    // A month of tracking with strong site fidelity.
    let trace = BatModel::new(BatModelConfig {
        nights: 30,
        ..Default::default()
    })
    .generate(2026);
    println!("raw trace: {} fixes over 30 nights", trace.len());

    // Compress on-device.
    let tolerance = 10.0;
    let mut fbqs = FastBqsCompressor::new(BqsConfig::new(tolerance).unwrap());
    let keys = compress_all(&mut fbqs, trace.points.iter().copied());
    let rate = keys.len() as f64 / trace.len() as f64;
    println!(
        "compressed: {} key points (rate {:.2}%)",
        keys.len(),
        rate * 100.0
    );

    // Discover the animal's waypoints from the key points alone.
    let model = discover(
        &keys,
        &WaypointConfig {
            dwell_radius: 150.0,
            min_dwell_s: 900.0,
            cluster_cell: 300.0,
        },
    );
    println!("\ndiscovered {} waypoints:", model.waypoints.len());
    for w in &model.waypoints {
        println!(
            "  #{:<2} at ({:>7.0}, {:>7.0})  visits {:>3}  total dwell {:>5.1} h",
            w.id,
            w.center.x,
            w.center.y,
            w.visits,
            w.total_dwell_s / 3_600.0
        );
    }

    // The roost is the most-visited waypoint; where does the animal go next?
    if let Some(roost) = model.waypoints.iter().max_by_key(|w| w.visits) {
        println!("\nmost-visited waypoint (the roost): #{}", roost.id);
        if let Some(next) = model.predict_next(roost.id) {
            println!(
                "prediction from the roost: waypoint #{} ({} observed trips), \
                 mean trip duration {:.0} min (range {:.0}–{:.0})",
                next.to,
                next.count,
                next.mean_duration_s / 60.0,
                next.duration_range_s.0 / 60.0,
                next.duration_range_s.1 / 60.0
            );
        }
    }

    // Finally: does this compression rate survive a realistic offload
    // schedule? Base station at the roost, but the animal only comes into
    // radio range some nights.
    let spec = CamazotzSpec::paper();
    for (label, period) in [("nightly", 1u32), ("weekly", 7), ("monthly", 30)] {
        let report = simulate_offload(&spec, rate, 120, |d| d % period == period - 1);
        println!(
            "offload {label:>8}: {} contacts over {} days → {} ({} records lost, peak {} B)",
            report.contacts,
            report.days,
            if report.lossless() {
                "lossless"
            } else {
                "LOSSY"
            },
            report.records_lost,
            report.peak_bytes
        );
    }
}
