//! Quickstart: compress a GPS stream with the Fast BQS in a dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bqs::prelude::*;

fn main() {
    // A tracker samples once a minute while the animal commutes between a
    // roost and a foraging site, with a couple of metres of GPS noise.
    let raw: Vec<TimedPoint> = (0..600)
        .map(|i| {
            let t = i as f64 * 60.0;
            let progress = i as f64 / 600.0;
            let x = progress * 8_000.0;
            let y = (progress * std::f64::consts::PI).sin() * 900.0 // gentle arc
                + ((i * 2_654_435_761_usize % 97) as f64 / 97.0 - 0.5) * 3.0; // noise
            TimedPoint::new(x, y, t)
        })
        .collect();

    // 10 m error tolerance — the paper's default for field data.
    let config = BqsConfig::new(10.0).expect("tolerance must be positive");
    let mut compressor = FastBqsCompressor::new(config);

    // Push points one at a time, exactly as a device would; kept key points
    // appear in `kept` as soon as they are final.
    let mut kept = Vec::new();
    for p in &raw {
        compressor.push(*p, &mut kept);
    }
    compressor.finish(&mut kept);

    println!("original points : {}", raw.len());
    println!("kept key points : {}", kept.len());
    println!(
        "compression rate: {:.2}% (lower is better)",
        100.0 * kept.len() as f64 / raw.len() as f64
    );

    // The guarantee: every original point is within 10 m of the chord of
    // the kept pair bracketing it. Verify it end to end.
    let worst = bqs::eval::verify_deviation_bound(
        &raw,
        &kept,
        bqs::core::metrics::DeviationMetric::PointToLine,
    )
    .expect("kept points are a valid subsequence");
    println!("worst deviation : {worst:.2} m (≤ 10 m guaranteed)");
    assert!(worst <= 10.0 + 1e-9);

    // Reconstruct the position at an arbitrary timestamp from key points.
    let reconstructor = bqs::core::reconstruct::Reconstructor::uniform(kept).expect("non-empty");
    let mid = reconstructor.at(18_000.0);
    println!(
        "reconstructed position at t=18000 s: ({:.0} m, {:.0} m)",
        mid.pos.x, mid.pos.y
    );
}
