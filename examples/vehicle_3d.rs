//! Domain example: vehicle telemetry in 2-D and drone/aviary tracking with
//! the 3-D BQS (paper §V-G).
//!
//! Part 1 compresses an urban drive with every algorithm in the workspace
//! and prints the head-to-head. Part 2 tracks a climbing drone with the
//! 3-D BQS under the altitude metric, then re-runs the same flight under
//! the **time-sensitive** embedding (z = scaled timestamp), the paper's
//! second 3-D use case.
//!
//! ```text
//! cargo run --release --example vehicle_3d
//! ```

use bqs::core::bqs3d::{compress_all_3d, Bqs3dCompressor, Bqs3dConfig, TimedPoint3};
use bqs::eval::Algorithm;
use bqs::sim::{VehicleModel, VehicleModelConfig};

fn main() {
    // --- Part 1: the urban drive, all algorithms --------------------------
    let trace = VehicleModel::new(VehicleModelConfig {
        trips: 12,
        ..Default::default()
    })
    .generate(99);
    println!("urban drive: {} fixes", trace.len());
    println!(
        "{:<10} {:>8} {:>9} {:>10}",
        "algorithm", "kept", "rate", "time(ms)"
    );
    for algo in [
        Algorithm::Bqs,
        Algorithm::Fbqs,
        Algorithm::Bdp { buffer: 32 },
        Algorithm::Bgd { buffer: 32 },
        Algorithm::Dp,
        Algorithm::DeadReckoning,
        Algorithm::SquishE,
        Algorithm::Mbr { max_run: 32 },
        Algorithm::StTrace { capacity: 128 },
    ] {
        let run = algo.run(&trace.points, 15.0);
        println!(
            "{:<10} {:>8} {:>8.2}% {:>10.1}",
            algo.label(),
            run.kept_count,
            run.compression_rate() * 100.0,
            run.elapsed.as_secs_f64() * 1_000.0
        );
    }

    // --- Part 2: 3-D tracking ---------------------------------------------
    // A survey drone spirals up over a site: x/y circle + steady climb.
    let flight: Vec<TimedPoint3> = (0..2_000)
        .map(|i| {
            let t = i as f64;
            let a = t * 0.02;
            TimedPoint3::new(
                500.0 * a.cos(),
                500.0 * a.sin(),
                0.5 * t, // climb 0.5 m/s
                t,
            )
        })
        .collect();

    let tolerance = 8.0;
    let mut c3 = Bqs3dCompressor::new(Bqs3dConfig::new(tolerance).unwrap().fast());
    let kept = compress_all_3d(&mut c3, flight.iter().copied());
    println!(
        "\n3-D BQS (altitude metric): {} → {} points ({:.2}%), {} segments",
        flight.len(),
        kept.len(),
        100.0 * kept.len() as f64 / flight.len() as f64,
        c3.segments()
    );

    // Time-sensitive variant: 1 second of error "costs" 2 metres, so the
    // compressed trajectory also answers "where was it *when*".
    let seconds_to_metres = 2.0;
    let embedded: Vec<TimedPoint3> = flight
        .iter()
        .map(|p| TimedPoint3::time_sensitive(p.pos.x, p.pos.y, p.t, seconds_to_metres))
        .collect();
    let mut ct = Bqs3dCompressor::new(Bqs3dConfig::new(tolerance).unwrap().fast());
    let kept_t = compress_all_3d(&mut ct, embedded.iter().copied());
    println!(
        "3-D BQS (time-sensitive, {seconds_to_metres} m/s): {} → {} points ({:.2}%)",
        embedded.len(),
        kept_t.len(),
        100.0 * kept_t.len() as f64 / embedded.len() as f64,
    );
    println!(
        "(time-sensitivity keeps {} extra points to pin down *when* the drone was where)",
        kept_t.len().saturating_sub(kept.len())
    );
}
