//! Regenerates every table and figure of the paper's evaluation (§VI).
//!
//! ```text
//! cargo run --release --example paper_experiments            # everything, quick scale
//! cargo run --release --example paper_experiments -- --full  # paper-scale datasets
//! cargo run --release --example paper_experiments -- fig7    # one experiment
//! ```
//!
//! Experiments: `fig3`, `fig6`, `fig7`, `fig8a`, `fig8b`, `table1`,
//! `table2`, `table3`, `ablation`, or `all` (default). `fig8a` additionally
//! writes `fig8a_synthetic.csv` next to the working directory for external
//! plotting.

use bqs::eval::experiments;
use bqs::eval::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let wanted = |name: &str| which.is_empty() || which.contains(&"all") || which.contains(&name);

    println!(
        "BQS paper reproduction — scale: {}\n",
        if scale == Scale::Full {
            "FULL (paper-size datasets)"
        } else {
            "quick"
        }
    );

    if wanted("fig3") {
        let result = experiments::fig3::run(scale);
        println!("{}", result.to_table());
    }
    if wanted("fig6") {
        let result = experiments::fig6::run(scale);
        println!("{}", result.bat.to_table());
        println!("{}", result.vehicle.to_table());
    }
    if wanted("fig7") {
        let result = experiments::fig7::run(scale);
        println!("{}", result.bat.to_table());
        println!("{}", result.vehicle.to_table());
    }
    if wanted("fig8a") {
        let result = experiments::fig8::run_8a(scale);
        println!(
            "Fig. 8a — synthetic trace: {} points, extent {:.0} m × {:.0} m, {:.1} km travelled",
            result.trace.len(),
            result.extent.0,
            result.extent.1,
            result.travel_distance / 1_000.0
        );
        let path = "fig8a_synthetic.csv";
        if std::fs::write(path, result.trace.to_csv()).is_ok() {
            println!("  (points written to {path})\n");
        }
    }
    if wanted("fig8b") {
        let result = experiments::fig8::run_8b(scale);
        println!("{}", result.to_table());
    }
    if wanted("table1") {
        let result = experiments::table1::run(scale);
        println!("{}", result.to_table());
    }
    if wanted("table2") {
        let result = experiments::table2::run(scale);
        println!("{}", result.to_table());
    }
    if wanted("table3") {
        let result = experiments::table3::run(scale);
        println!("{}", result.to_table());
    }
    if wanted("ablation") {
        let result = experiments::ablation::run(scale);
        println!("{}", result.to_table());
    }
    if wanted("extended") {
        let result = experiments::extended::run(scale);
        println!("{}", result.to_table());
    }
}
