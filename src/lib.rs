//! # bqs — Bounded Quadrant System trajectory compression
//!
//! An open-source reproduction of *"Bounded Quadrant System: Error-bounded
//! Trajectory Compression on the Go"* (Liu, Zhao, Sommer, Shang, Kusy,
//! Jurdak — ICDE 2015): error-bounded **online** trajectory compression
//! designed for trackers with kilobytes of RAM.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`geo`] | `bqs-geo` | geometry substrate (points, distances, UTM, hulls) |
//! | [`obs`] | `bqs-obs` | lock-free observability primitives (counters, gauges, histograms) |
//! | [`core`] | `bqs-core` | BQS, Fast BQS, 3-D BQS, reconstruction, [`core::stream::Sink`] emission layer, [`core::fleet::FleetEngine`] multi-session engine |
//! | [`baselines`] | `bqs-baselines` | DP, BDP, BGD, Dead Reckoning, SQUISH |
//! | [`sim`] | `bqs-sim` | synthetic bat / vehicle / random-walk traces |
//! | [`device`] | `bqs-device` | Camazotz tracker model, operational time |
//! | [`store`] | `bqs-store` | trajectory store with merging and ageing |
//! | [`tlog`] | `bqs-tlog` | durable trajectory log: codec, segmented store, queries |
//! | [`net`] | `bqs-net` | framed TCP ingest/query server, client and load generator |
//! | [`eval`] | `bqs-eval` | harness regenerating every paper table/figure |
//!
//! ## Quickstart
//!
//! ```
//! use bqs::prelude::*;
//!
//! // A 10 m error tolerance, the paper's default for both field datasets.
//! let config = BqsConfig::new(10.0).unwrap();
//! let mut compressor = FastBqsCompressor::new(config);
//!
//! let mut kept = Vec::new();
//! for i in 0..600 {
//!     let t = i as f64 * 60.0; // one fix per minute
//!     let x = i as f64 * 9.0;
//!     let y = (i as f64 / 40.0).sin() * 30.0;
//!     compressor.push(TimedPoint::new(x, y, t), &mut kept);
//! }
//! compressor.finish(&mut kept);
//!
//! assert!(kept.len() < 60); // >90 % of the points are gone
//! ```

pub use bqs_baselines as baselines;
pub use bqs_core as core;
pub use bqs_device as device;
pub use bqs_eval as eval;
pub use bqs_geo as geo;
pub use bqs_net as net;
pub use bqs_obs as obs;
pub use bqs_sim as sim;
pub use bqs_store as store;
pub use bqs_tlog as tlog;

/// The most common imports in one place.
pub mod prelude {
    pub use bqs_baselines::{
        BufferedDpCompressor, BufferedGreedyCompressor, DeadReckoningCompressor, DpCompressor,
    };
    pub use bqs_core::prelude::*;
    pub use bqs_core::stream::{compress_all, compress_all_with_stats};
    pub use bqs_geo::{LocationPoint, Point2, TimedPoint};
}
